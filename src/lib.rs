//! Facade crate re-exporting the whole fdqos workspace.
pub use fd_arima as arima;
pub use fd_consensus as consensus;
pub use fd_core as core;
pub use fd_experiments as experiments;
pub use fd_fabric as fabric;
pub use fd_net as net;
pub use fd_runtime as runtime;
pub use fd_serve as serve;
pub use fd_sim as sim;
pub use fd_stat as stat;
