//! The fabric experiment binary.
//!
//! * `fabric` — full bench: election rows over 3/5/8 regions × the
//!   global-combo sweep × both fan-in disciplines, plus the
//!   crash/partition/heal chaos row, written to `BENCH_fabric.json`;
//! * `fabric --smoke` — the CI gate: 3 regions, one monitor crash,
//!   asserts detection, heal, and a deterministic digest.

use std::time::Instant;

use fd_fabric::experiment::{global_combos, render_json, run_chaos_row, run_fabric_row, run_smoke};
use fd_runtime::fabric::FanIn;

const SEED: u64 = 0xFA_B0_05;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        println!("fabric --smoke: 3 regions, leader-monitor crash at 12 s");
        run_smoke(SEED);
        println!("fabric --smoke: OK");
        return;
    }

    let started = Instant::now();
    let mut rows = Vec::new();
    for &n in &[3usize, 5, 8] {
        for &combo in &global_combos() {
            rows.push(run_fabric_row(n, 64, combo, FanIn::Hierarchical, SEED));
            let r = rows.last().expect("just pushed");
            println!(
                "regions={n} combo={} fan_in={} monitor_td_ms={:?} demote_ms={:?} \
                 spurious={} decision_ms={:?} [{:.0} ms]",
                r.combo,
                r.fan_in,
                r.monitor_td_ms,
                r.demote_latency_ms,
                r.spurious_demotions,
                r.decision_latency_ms,
                r.wall_ms
            );
        }
    }
    // One gossip row per region count at the reference combo: same
    // diagnosis, redundant fan-in.
    for &n in &[3usize, 5, 8] {
        rows.push(run_fabric_row(
            n,
            64,
            global_combos()[0],
            FanIn::Gossip { fanout: 2 },
            SEED,
        ));
        let r = rows.last().expect("just pushed");
        println!(
            "regions={n} combo={} fan_in={} monitor_td_ms={:?} demote_ms={:?} [{:.0} ms]",
            r.combo, r.fan_in, r.monitor_td_ms, r.demote_latency_ms, r.wall_ms
        );
    }

    println!("chaos row: crash monitor 1, partition region 2, heal, serve through relay");
    let chaos = run_chaos_row(SEED);
    println!(
        "  detect_ms={:?} degraded_via_relay={} healed_via_relay={} partition_dropped={}",
        chaos.detect_ms, chaos.degraded_via_relay, chaos.healed_via_relay, chaos.partition_dropped
    );
    assert!(
        chaos.degraded_via_relay && chaos.healed_via_relay,
        "the chaos row must serve the degraded block through the relay and heal it"
    );

    let doc = render_json(&rows, &chaos, SEED);
    std::fs::write("BENCH_fabric.json", &doc).expect("write BENCH_fabric.json");
    println!(
        "wrote BENCH_fabric.json ({} rows + chaos row) in {:.1} s",
        rows.len(),
        started.elapsed().as_secs_f64()
    );
}
