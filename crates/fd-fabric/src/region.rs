//! One regional monitor: a supervised [`ShardedEngine`] over the region's
//! contiguous source block, with its live suspicion state sampled into
//! [`SummaryFrame`]s on the fabric's cadence grid.
//!
//! The engine publishes each shard's state through a recording
//! [`ShardPublisher`]; after the run the publications are folded onto the
//! cadence grid, so summary `k` carries the union of every shard's latest
//! published bitmap at virtual time `k · summary_every` — exactly what a
//! live monitor would have pushed at that instant. A monitor-crash window
//! from the chaos plan suppresses the frames inside it (the process is
//! down, nothing is emitted); a heal resumes emission from the same
//! engine state, i.e. a warm restart.

use std::collections::BTreeMap;
use std::sync::Mutex;

use fd_core::{Combination, SourceBank};
use fd_net::SummaryFrame;
use fd_runtime::fabric::{FabricChaosPlan, FabricTopology};
use fd_runtime::sharded::{ShardPublisher, ShardedConfig, ShardedEngine, SupervisionConfig};
use fd_runtime::supervisor::RestartMode;
use fd_sim::{SimDuration, SimTime};
use fd_stat::QosSummary;

/// The combination index whose bitmap rides in the summary frames (the
/// region's *reference detector*). Index 0 of the configured combos.
pub const REF_COMBO: usize = 0;

/// What one regional monitor produced: its summary trace on the cadence
/// grid, its own measured FD QoS, and its determinism digest.
#[derive(Debug, Clone)]
pub struct RegionRun {
    /// Region index within the topology.
    pub region: u16,
    /// First global source id of the region's block.
    pub start: u32,
    /// Sources in the block.
    pub len: u32,
    /// Summary frames in cadence order (`seq` = grid index, 1-based).
    /// Ticks inside a monitor-crash window are absent.
    pub trace: Vec<SummaryFrame>,
    /// Cadence ticks suppressed because the monitor was down.
    pub suppressed: u64,
    /// The regional FD bank's per-combination QoS roll-up — the measured
    /// `T_D`/`P_A` the fabric rows attribute election time to.
    pub qos: Vec<QosSummary>,
    /// Shard-count-invariant digest of the regional run.
    pub digest: u64,
    /// Region-local `(start, len)` blocks of shards that died under
    /// supervision (their bits are stale from death onward).
    pub dead_blocks: Vec<(usize, usize)>,
}

/// Records every shard publication for post-run folding onto the cadence
/// grid. `publish` runs on the shard worker threads; the mutex is the
/// whole cross-thread protocol (publication is rare relative to events).
#[derive(Default)]
struct Recorder {
    /// `(at_us, shard, suspecting region-local source ids)`.
    pubs: Mutex<Vec<(u64, usize, Vec<u32>)>>,
    dead: Mutex<Vec<(usize, usize)>>,
}

impl ShardPublisher for Recorder {
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime) {
        let mut suspecting = Vec::new();
        for i in 0..bank.sources() as u32 {
            if bank.is_suspecting(i, REF_COMBO) {
                suspecting.push(start as u32 + i);
            }
        }
        self.pubs
            .lock()
            .expect("recorder poisoned")
            .push((now.as_micros(), shard, suspecting));
    }

    fn mark_degraded(&self, _shard: usize, start: usize, len: usize) {
        self.dead
            .lock()
            .expect("recorder poisoned")
            .push((start, len));
    }
}

/// Default source-crash injection for fabric regions: a seeded 10% of the
/// block crashes once mid-run, long enough down that the reference
/// detector's `T_D` gets real samples.
fn default_source_crashes(cycles: u64) -> fd_runtime::sharded::SourceCrashPlan {
    fd_runtime::sharded::SourceCrashPlan {
        frac: 0.1,
        down_cycles: (cycles / 4).max(1),
    }
}

/// Runs region `r` of the topology and samples its summary trace.
///
/// `combos[REF_COMBO]` is the reference detector whose bitmap the frames
/// carry; the whole list is measured so the row can report the regional
/// FD's QoS. Deterministic in `(topology.seed, r)` — shard count does not
/// change the trace.
pub fn run_region(
    topo: &FabricTopology,
    r: usize,
    plan: &FabricChaosPlan,
    combos: &[Combination],
) -> RegionRun {
    let spec = &topo.regions[r];
    let (gstart, len) = topo.block(r);
    let every = topo.summary_every;
    assert!(!every.is_zero(), "summary cadence must be positive");
    let cycles = topo.horizon.as_micros() / every.as_micros();

    let mut config = ShardedConfig::paper_grid(len, cycles, topo.seed ^ (r as u64) << 17);
    config.shards = spec.shards.max(1);
    config.combos = combos.to_vec();
    config.source_crashes = Some(default_source_crashes(cycles));

    let recorder = Recorder::default();
    let engine = ShardedEngine::new(config);
    let sup = SupervisionConfig::with_restart(RestartMode::Warm);
    let report = engine.run_supervised_published(&sup, every, &recorder);

    let mut pubs = recorder.pubs.into_inner().expect("recorder poisoned");
    pubs.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    let dead_blocks = recorder.dead.into_inner().expect("recorder poisoned");

    // Fold the publication stream onto the cadence grid: at tick k the
    // frame carries each shard's latest publication at or before k·every.
    let words_len = len.div_ceil(64);
    let mut latest: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
    let mut next_pub = 0usize;
    let mut trace = Vec::new();
    let mut suppressed = 0u64;
    for k in 1..=cycles {
        let t_us = k * every.as_micros();
        while next_pub < pubs.len() && pubs[next_pub].0 <= t_us {
            let (_, shard, ref suspecting) = pubs[next_pub];
            latest.insert(shard, suspecting.clone());
            next_pub += 1;
        }
        if plan.monitor_down(r as u16, SimDuration::from_micros(t_us)) {
            suppressed += 1;
            continue;
        }
        let mut words = vec![0u64; words_len];
        for suspecting in latest.values() {
            for &s in suspecting {
                words[s as usize / 64] |= 1 << (s % 64);
            }
        }
        let suspects = words.iter().map(|w| w.count_ones()).sum();
        trace.push(SummaryFrame {
            region: r as u16,
            origin: r as u16,
            seq: k,
            virtual_us: t_us,
            start: gstart as u32,
            len: len as u32,
            suspects,
            words,
        });
    }

    RegionRun {
        region: r as u16,
        start: gstart as u32,
        len: len as u32,
        trace,
        suppressed,
        qos: report.qos,
        digest: report.digest,
        dead_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{MarginKind, PredictorKind};
    use fd_runtime::fabric::FabricChaosPlan;

    fn ref_combo() -> Vec<Combination> {
        vec![Combination::new(
            PredictorKind::Last,
            MarginKind::Jac { phi: 2.0 },
        )]
    }

    #[test]
    fn trace_covers_the_grid_and_is_deterministic() {
        let topo = FabricTopology::symmetric(2, 96, 2, SimDuration::from_secs(20), 11);
        let a = run_region(&topo, 1, &FabricChaosPlan::none(), &ref_combo());
        let b = run_region(&topo, 1, &FabricChaosPlan::none(), &ref_combo());
        assert_eq!(a.trace.len(), 20);
        assert_eq!(a.suppressed, 0);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.start, 96);
        // The grid is 1-based and monotone.
        for (i, f) in a.trace.iter().enumerate() {
            assert_eq!(f.seq, i as u64 + 1);
            assert_eq!(f.virtual_us, (i as u64 + 1) * 1_000_000);
        }
        // Injected source crashes give the reference detector real samples.
        assert!(a.qos[REF_COMBO].crashes > 0);
    }

    #[test]
    fn crash_window_suppresses_frames_and_heal_resumes() {
        let topo = FabricTopology::symmetric(1, 64, 1, SimDuration::from_secs(20), 3);
        let plan = FabricChaosPlan::crash_partition_heal(
            0,
            SimDuration::from_secs(5),
            SimDuration::from_secs(6),
            0,
            SimDuration::from_secs(15),
            SimDuration::from_secs(2),
        );
        let run = run_region(&topo, 0, &plan, &ref_combo());
        // Ticks 5..=10 fall in the crash window.
        assert_eq!(run.suppressed, 6);
        assert!(run.trace.iter().all(|f| !(5..=10).contains(&f.seq)));
        // Emission resumes after the heal with the same monotone seqs.
        assert!(run.trace.iter().any(|f| f.seq > 10));
        // A partition does not suppress emission (frames are lost on the
        // WAN instead, which is the global tier's business).
        assert!(run.trace.iter().any(|f| (15..=17).contains(&f.seq)));
    }
}
