//! Leader election over the fabric's monitor-suspicion view.
//!
//! Two consumers of the global tier's diagnosis close the paper's
//! QoS-of-upper-layers loop at the fabric level:
//!
//! * an **Ω oracle**: the leader at any instant is the lowest-numbered
//!   monitor the global tier does not suspect. Its trajectory is a pure
//!   fold over the measured [`MonitorTransition`] stream, so demotion
//!   latency after a leader crash *is* the global detector's `T_D`, and
//!   every demotion of a live leader is a spurious demotion — the
//!   election-flavoured reading of the detector's `P_A`;
//! * a **consensus ratification**: the surviving monitors run the
//!   rotating-coordinator protocol with their coordinator-suspicion
//!   driven by a [`ScheduledTrust`] oracle replaying the *measured*
//!   transitions, so the decision latency under a leader crash inherits
//!   the fabric detector's timing rather than an idealised one.

use std::sync::Arc;

use fd_consensus::{ConsensusLayer, ScheduledTrust};
use fd_core::Combination;
use fd_experiments::{HeartbeaterLayer, SimCrashLayer};
use fd_net::WanProfile;
use fd_runtime::fabric::{FabricChaosPlan, FabricFaultKind};
use fd_runtime::{Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimDuration, SimTime};

use crate::global::MonitorTransition;

/// What the Ω fold and the ratification run measured.
#[derive(Debug, Clone)]
pub struct ElectionOutcome {
    /// Leader changes, time-ordered, starting with the initial leader at
    /// time zero.
    pub trajectory: Vec<(SimTime, u16)>,
    /// Crash → Ω demotes the crashed leader, if a leader crash was
    /// scheduled and the demotion happened.
    pub demote_latency: Option<SimDuration>,
    /// Leader changes away from a monitor that was alive at the time.
    pub spurious_demotions: u64,
    /// Crash → every surviving participant decided, through the
    /// trust-driven consensus ratification (if it was run).
    pub decision_latency: Option<SimDuration>,
    /// All ratification deciders agreed (vacuously true when not run).
    pub agreement: bool,
    /// Participants that decided in the ratification run.
    pub deciders: usize,
}

/// Folds Ω over the measured transitions: leader = lowest unsuspected
/// monitor (falling back to monitor 0 if all are suspected).
pub fn omega_trajectory(n: usize, transitions: &[MonitorTransition]) -> Vec<(SimTime, u16)> {
    let mut suspected = vec![false; n];
    let leader_of =
        |suspected: &[bool]| -> u16 { suspected.iter().position(|s| !s).unwrap_or(0) as u16 };
    let mut trajectory = vec![(SimTime::ZERO, leader_of(&suspected))];
    for tr in transitions {
        if usize::from(tr.region) >= n {
            continue;
        }
        suspected[usize::from(tr.region)] = tr.suspected;
        let leader = leader_of(&suspected);
        if leader != trajectory.last().expect("seeded").1 {
            trajectory.push((tr.at, leader));
        }
    }
    trajectory
}

/// The first scheduled monitor crash in the plan, if any.
fn leader_crash(plan: &FabricChaosPlan) -> Option<(u16, SimTime)> {
    plan.faults
        .iter()
        .filter(|f| matches!(f.kind, FabricFaultKind::MonitorCrash { .. }))
        .map(|f| (f.region, SimTime::ZERO + f.at))
        .next()
}

/// Runs the Ω fold and (when a leader crash is scheduled) the consensus
/// ratification, both against the *measured* transition stream.
///
/// `horizon` bounds the ratification simulation; `profile` is the link
/// model between the monitors (the regional uplink class).
pub fn elect(
    n: usize,
    transitions: &[MonitorTransition],
    plan: &FabricChaosPlan,
    fd_combo: Combination,
    eta: SimDuration,
    profile: &WanProfile,
    horizon: SimDuration,
    seed: u64,
) -> ElectionOutcome {
    let trajectory = omega_trajectory(n, transitions);
    let crash = leader_crash(plan);

    // Spurious demotions: the leader was *demoted* — the change was
    // triggered by suspecting the sitting leader — while it was alive. A
    // change because a lower-ranked monitor regained trust is a
    // promotion, not a demotion of the old leader.
    let mut spurious = 0u64;
    {
        let mut suspected = vec![false; n];
        let leader_of = |suspected: &[bool]| suspected.iter().position(|s| !s).unwrap_or(0) as u16;
        let mut leader = leader_of(&suspected);
        for tr in transitions {
            if usize::from(tr.region) >= n {
                continue;
            }
            suspected[usize::from(tr.region)] = tr.suspected;
            let next = leader_of(&suspected);
            if next != leader
                && tr.suspected
                && tr.region == leader
                && !plan.monitor_down(leader, tr.at - SimTime::ZERO)
            {
                spurious += 1;
            }
            leader = next;
        }
    }

    // Demotion latency: first leader change off the crashed monitor at or
    // after the crash — provided it actually led going in.
    let demote_latency = crash.and_then(|(region, at)| {
        let led_before = trajectory
            .iter()
            .filter(|&&(t, _)| t <= at)
            .last()
            .is_some_and(|&(_, l)| l == region);
        if !led_before {
            return None;
        }
        trajectory
            .iter()
            .find(|&&(t, l)| t >= at && l != region)
            .map(|&(t, _)| t - at)
    });

    // Consensus ratification under the measured trust oracle.
    let (decision_latency, agreement, deciders) = match crash {
        Some((region, at)) if n >= 2 => {
            let outcome = ratify(
                n,
                transitions,
                region,
                at,
                fd_combo,
                eta,
                profile,
                horizon,
                seed,
            );
            let latency = outcome
                .last_decision()
                .and_then(|t| t.checked_duration_since(at));
            (latency, outcome.agreement(), outcome.deciders())
        }
        _ => (None, true, 0),
    };

    ElectionOutcome {
        trajectory,
        demote_latency,
        spurious_demotions: spurious,
        decision_latency,
        agreement,
        deciders,
    }
}

/// One rotating-coordinator run among the monitors: the crashed leader
/// goes down at its fabric crash instant, the protocol starts at that
/// same instant (heartbeats warm the in-layer detectors from time zero),
/// and coordinator suspicion comes from the measured transitions.
#[allow(clippy::too_many_arguments)]
fn ratify(
    n: usize,
    transitions: &[MonitorTransition],
    crash_region: u16,
    crash_at: SimTime,
    fd_combo: Combination,
    eta: SimDuration,
    profile: &WanProfile,
    horizon: SimDuration,
    seed: u64,
) -> fd_consensus::ConsensusOutcome {
    let seeds = SeedTree::new(seed).subtree("fabric-ratify");
    let peers: Vec<ProcessId> = (0..n as u16).map(ProcessId).collect();
    let initial_values: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

    let mut trust = ScheduledTrust::new();
    for tr in transitions {
        trust.push(ProcessId(tr.region), tr.at, tr.suspected);
    }
    let trust: Arc<ScheduledTrust> = Arc::new(trust);

    let mut engine = SimEngine::new();
    for &me in &peers {
        let mut proc = Process::new(me);
        if me == ProcessId(crash_region) {
            proc = proc.with_layer(SimCrashLayer::once_at(crash_at - SimTime::ZERO, None));
        }
        for &other in &peers {
            if other != me {
                proc = proc.with_layer(HeartbeaterLayer::new(other, eta));
            }
        }
        proc = proc.with_layer(
            ConsensusLayer::new(
                me,
                peers.clone(),
                initial_values[usize::from(me.0)],
                fd_combo,
                eta,
            )
            .with_start_delay(crash_at - SimTime::ZERO)
            .with_trust_input(Arc::clone(&trust) as Arc<dyn fd_consensus::TrustInput>),
        );
        engine.add_process(proc);
    }
    for &a in &peers {
        for &b in &peers {
            if a != b {
                let label = format!("link-{}-{}", a.0, b.0);
                engine.set_link(a, b, profile.link(seeds.rng(&label)));
            }
        }
    }
    engine.run_until(SimTime::ZERO + horizon);
    let log = engine.into_event_log();
    fd_consensus::ConsensusOutcome {
        decisions: fd_consensus::decided_values(&log),
        latencies: fd_consensus::decision_latencies(&log),
        rounds: fd_consensus::metrics::max_rounds(&log),
        initial_values,
        messages_sent: 0,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{MarginKind, PredictorKind};
    use fd_runtime::fabric::FabricFault;

    fn tr(at_s: u64, region: u16, suspected: bool) -> MonitorTransition {
        MonitorTransition {
            at: SimTime::from_secs(at_s),
            region,
            suspected,
        }
    }

    #[test]
    fn omega_tracks_the_lowest_unsuspected_monitor() {
        let transitions = vec![tr(5, 0, true), tr(9, 1, true), tr(12, 0, false)];
        let trajectory = omega_trajectory(3, &transitions);
        assert_eq!(
            trajectory,
            vec![
                (SimTime::ZERO, 0),
                (SimTime::from_secs(5), 1),
                (SimTime::from_secs(9), 2),
                (SimTime::from_secs(12), 0),
            ]
        );
    }

    #[test]
    fn crashed_leader_demotion_is_not_spurious_but_live_demotion_is() {
        let plan = FabricChaosPlan {
            faults: vec![FabricFault {
                at: SimDuration::from_secs(4),
                region: 0,
                kind: FabricFaultKind::MonitorCrash {
                    heal_after: Some(SimDuration::from_secs(20)),
                },
            }],
        };
        // Demotion at 6 s: leader 0 is down (real). Demotion at 10 s:
        // leader 1 is alive (spurious). Recovery at 12 s back to 1.
        let transitions = vec![tr(6, 0, true), tr(10, 1, true), tr(12, 1, false)];
        let combo = Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 });
        let out = elect(
            3,
            &transitions,
            &plan,
            combo,
            SimDuration::from_secs(1),
            &WanProfile::italy_japan(),
            SimDuration::from_secs(60),
            7,
        );
        assert_eq!(out.demote_latency, Some(SimDuration::from_secs(2)));
        assert_eq!(out.spurious_demotions, 1, "{:?}", out.trajectory);
        // The ratification decides among the survivors and agrees.
        assert!(out.deciders >= 2, "only {} deciders", out.deciders);
        assert!(out.agreement);
        let decision = out.decision_latency.expect("ratification decided");
        assert!(
            decision < SimDuration::from_secs(20),
            "decided in {decision}"
        );
    }

    #[test]
    fn clean_run_has_no_demote_latency_and_no_ratification() {
        let out = elect(
            3,
            &[],
            &FabricChaosPlan::none(),
            Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }),
            SimDuration::from_secs(1),
            &WanProfile::italy_japan(),
            SimDuration::from_secs(30),
            3,
        );
        assert_eq!(out.demote_latency, None);
        assert_eq!(out.decision_latency, None);
        assert_eq!(out.spurious_demotions, 0);
        assert_eq!(out.trajectory, vec![(SimTime::ZERO, 0)]);
    }
}
