//! The fabric's merged suspicion state: a join-semilattice over
//! [`SummaryFrame`]s.
//!
//! Every regional monitor publishes *state*, not deltas: its latest
//! summary frame carries the whole per-source suspicion bitmap plus a
//! monotone sequence number. The global tier (and, under gossip fan-in,
//! every peer region) folds incoming frames with [`FabricView::absorb`],
//! which keeps the per-region **maximum** under a total order on frames.
//! Max over a total order is exactly commutative, associative and
//! idempotent, so redelivery, reordering and redundant gossip paths can
//! change *when* the view converges but never *what* it converges to —
//! the property the proptests at the bottom pin down.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use fd_net::SummaryFrame;

/// The total order [`FabricView::absorb`] maximises under.
///
/// `(seq, virtual_us)` is the real freshness key — a producer never reuses
/// a sequence number with different content. The remaining fields extend
/// the comparison to a total order over *arbitrary* (even adversarial or
/// corrupted) frames, so the merge stays associative no matter what the
/// network delivers: two distinct frames never compare equal.
pub fn frame_order(a: &SummaryFrame, b: &SummaryFrame) -> Ordering {
    let key = |f: &SummaryFrame| {
        (
            f.seq,
            f.virtual_us,
            f.suspects,
            f.start,
            f.len,
            f.origin,
            f.region,
        )
    };
    key(a).cmp(&key(b)).then_with(|| a.words.cmp(&b.words))
}

/// A receiver's merged view of every region's latest summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricView {
    latest: BTreeMap<u16, SummaryFrame>,
}

impl FabricView {
    /// An empty view (the bottom of the lattice).
    pub fn new() -> FabricView {
        FabricView::default()
    }

    /// Folds one frame in, keeping the per-region maximum under
    /// [`frame_order`]. Returns `true` if the frame advanced the view —
    /// `false` means it was a duplicate or stale copy (redundant gossip
    /// path, WAN reordering) and the view is unchanged.
    pub fn absorb(&mut self, frame: SummaryFrame) -> bool {
        match self.latest.get(&frame.region) {
            Some(held) if frame_order(&frame, held) != Ordering::Greater => false,
            _ => {
                self.latest.insert(frame.region, frame);
                true
            }
        }
    }

    /// Joins another whole view in (frame-wise [`absorb`](Self::absorb)).
    pub fn merge(&mut self, other: &FabricView) {
        for frame in other.latest.values() {
            self.absorb(frame.clone());
        }
    }

    /// The latest frame absorbed for `region`, if any.
    pub fn region(&self, region: u16) -> Option<&SummaryFrame> {
        self.latest.get(&region)
    }

    /// Number of regions the view has heard from.
    pub fn regions(&self) -> usize {
        self.latest.len()
    }

    /// Iterates the held frames in region order.
    pub fn frames(&self) -> impl Iterator<Item = &SummaryFrame> {
        self.latest.values()
    }

    /// Total suspected sources across all held frames.
    pub fn total_suspects(&self) -> u64 {
        self.latest.values().map(|f| u64::from(f.suspects)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(region: u16, seq: u64, words: Vec<u64>) -> SummaryFrame {
        let suspects = words.iter().map(|w| w.count_ones()).sum();
        SummaryFrame {
            region,
            origin: region,
            seq,
            virtual_us: seq * 1_000_000,
            start: u32::from(region) * 64,
            len: 64,
            suspects,
            words,
        }
    }

    #[test]
    fn absorb_keeps_the_freshest_frame_per_region() {
        let mut view = FabricView::new();
        assert!(view.absorb(frame(0, 1, vec![0b11])));
        assert!(view.absorb(frame(1, 5, vec![0])));
        // A stale copy of region 0 changes nothing.
        assert!(!view.absorb(frame(0, 1, vec![0b11])));
        // A fresher one replaces it.
        assert!(view.absorb(frame(0, 2, vec![0b1])));
        assert_eq!(view.region(0).unwrap().seq, 2);
        assert_eq!(view.regions(), 2);
        assert_eq!(view.total_suspects(), 1);
    }

    #[test]
    fn gossip_duplicates_are_idempotent() {
        let f = frame(3, 9, vec![0xFF]);
        let mut a = FabricView::new();
        a.absorb(f.clone());
        let snapshot = a.clone();
        for _ in 0..4 {
            assert!(!a.absorb(f.clone()));
        }
        assert_eq!(a, snapshot);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary frames over a handful of regions, with collisions in
    /// every field — the adversarial inputs the total order must absorb.
    fn arb_frame() -> impl Strategy<Value = SummaryFrame> {
        (
            0u16..4,
            0u16..4,
            0u64..6,
            0u64..4,
            0u32..3,
            proptest::collection::vec(any::<u64>(), 0..3),
        )
            .prop_map(
                |(region, origin, seq, virtual_us, suspects, words)| SummaryFrame {
                    region,
                    origin,
                    seq,
                    virtual_us,
                    start: u32::from(region) * 64,
                    len: 64,
                    suspects,
                    words,
                },
            )
    }

    fn view_of(frames: &[SummaryFrame]) -> FabricView {
        let mut v = FabricView::new();
        for f in frames {
            v.absorb(f.clone());
        }
        v
    }

    proptest! {
        // Mirrors fd-stat's `summary_merge_is_exactly_commutative_and_
        // associative`: the state is compared bit for bit, not through
        // an epsilon or a canonicalisation pass.
        #[test]
        fn merge_is_commutative_and_associative(
            a in proptest::collection::vec(arb_frame(), 0..8),
            b in proptest::collection::vec(arb_frame(), 0..8),
            c in proptest::collection::vec(arb_frame(), 0..8),
        ) {
            let (va, vb, vc) = (view_of(&a), view_of(&b), view_of(&c));

            let mut ab = va.clone();
            ab.merge(&vb);
            let mut ba = vb.clone();
            ba.merge(&va);
            prop_assert_eq!(&ab, &ba, "merge must be commutative");

            let mut ab_c = ab;
            ab_c.merge(&vc);
            let mut bc = vb.clone();
            bc.merge(&vc);
            let mut a_bc = va.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c, a_bc, "merge must be associative");
        }

        #[test]
        fn merge_is_idempotent(
            a in proptest::collection::vec(arb_frame(), 0..10),
        ) {
            let va = view_of(&a);
            let mut twice = va.clone();
            twice.merge(&va);
            prop_assert_eq!(twice, va, "merging a view into itself must be a no-op");
        }

        #[test]
        fn absorb_order_cannot_change_the_converged_view(
            frames in proptest::collection::vec(arb_frame(), 0..10),
        ) {
            let forward = view_of(&frames);
            let mut reversed: Vec<_> = frames.clone();
            reversed.reverse();
            prop_assert_eq!(forward, view_of(&reversed));
        }
    }
}
