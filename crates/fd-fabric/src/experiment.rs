//! The fabric experiment: election QoS as a function of detector QoS,
//! plus the crash/partition/heal chaos row served end-to-end.
//!
//! The `fabric` binary produces `BENCH_fabric.json`:
//!
//! * **election rows** — for several region counts × global detector
//!   combinations, the fabric runs with a scheduled leader-monitor crash
//!   and heal; each row reports the regional reference FD's measured
//!   `T_D`/`P_A` over its sources, the global tier's monitor-level
//!   `T_D`/`P_A`, Ω demotion latency, spurious-demotion count, and the
//!   trust-driven consensus ratification latency — the fabric-level
//!   reading of the paper's "FD QoS drives upper-layer QoS" relation;
//! * **the chaos row** — crash one monitor, partition another region,
//!   heal both, and serve the whole fabric through a real origin server
//!   *and a relay*: the crashed monitor's block must be answered with
//!   `FLAG_SEGMENT_DEGRADED` through the relay while it is down, and
//!   come back clean after the heal.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fd_core::{Combination, MarginKind, PredictorKind};
use fd_runtime::fabric::{FabricChaosPlan, FabricTopology, FanIn};
use fd_runtime::StreamDigest;
use fd_serve::wire::FLAG_SEGMENT_DEGRADED;
use fd_serve::{Relay, RelayConfig, Response, ServeClient, ServeConfig, ServeServer, SuspectView};
use fd_sim::{SimDuration, SimTime};

use crate::election::elect;
use crate::global::{run_global, GlobalOutcome};
use crate::region::{run_region, RegionRun, REF_COMBO};

/// The paper-recommended reference detector the regions run.
pub fn reference_combo() -> Combination {
    Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 })
}

/// The global detector combinations the election rows sweep: the
/// reference margin and a conservative one, same predictor — the axis
/// the demotion latency moves along.
pub fn global_combos() -> Vec<Combination> {
    vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }),
        Combination::new(PredictorKind::Last, MarginKind::Ci { gamma: 3.31 }),
    ]
}

/// One election row of `BENCH_fabric.json`.
#[derive(Debug, Clone)]
pub struct FabricRow {
    /// Regions in the fabric.
    pub regions: usize,
    /// Sources per region.
    pub sources_per_region: usize,
    /// Global (monitor-level) detector combination label.
    pub combo: String,
    /// Fan-in discipline (`"hierarchical"` or `"gossip"`).
    pub fan_in: String,
    /// Regional reference FD over region 0's sources: mean `T_D`, ms.
    pub regional_td_ms: Option<f64>,
    /// Regional reference FD: query accuracy `P_A`.
    pub regional_pa: Option<f64>,
    /// Global tier over the monitors: mean monitor-crash `T_D`, ms.
    pub monitor_td_ms: Option<f64>,
    /// Global tier: monitor-level query accuracy `P_A`.
    pub monitor_pa: Option<f64>,
    /// Monitor crashes injected / detected by the global tier.
    pub monitor_crashes: u64,
    /// Detected monitor crashes.
    pub monitor_detections: u64,
    /// Ω demotion latency after the leader-monitor crash, ms.
    pub demote_latency_ms: Option<f64>,
    /// Demotions of a live leader across the run.
    pub spurious_demotions: u64,
    /// Spurious demotions per virtual hour.
    pub spurious_per_hour: f64,
    /// Trust-driven consensus ratification latency after the crash, ms.
    pub decision_latency_ms: Option<f64>,
    /// Ratification deciders (survivors that decided).
    pub deciders: usize,
    /// All deciders agreed.
    pub agreement: bool,
    /// Summary frames emitted / lost on the WAN.
    pub frames_emitted: u64,
    /// Frames lost to link loss.
    pub frames_lost: u64,
    /// Fabric determinism digest.
    pub digest: u64,
    /// Wall time of the row, milliseconds.
    pub wall_ms: f64,
}

/// Order-independent digest of a whole fabric run: regional digests plus
/// the global tier's transition stream and WAN accounting.
pub fn fabric_digest(runs: &[RegionRun], global: &GlobalOutcome) -> u64 {
    let mut d = StreamDigest::new();
    for run in runs {
        d.fold_bytes(&run.digest.to_le_bytes());
        d.fold_bytes(&u64::from(run.region).to_le_bytes());
        d.fold_bytes(&run.suppressed.to_le_bytes());
    }
    for tr in &global.transitions {
        let mut buf = [0u8; 11];
        buf[..8].copy_from_slice(&tr.at.as_micros().to_le_bytes());
        buf[8..10].copy_from_slice(&tr.region.to_le_bytes());
        buf[10] = u8::from(tr.suspected);
        d.fold_bytes(&buf);
    }
    d.fold_bytes(&global.frames_emitted.to_le_bytes());
    d.fold_bytes(&global.frames_lost.to_le_bytes());
    d.fold_bytes(&global.partition_dropped.to_le_bytes());
    d.value()
}

/// The leader-crash chaos schedule the election rows use: the leader
/// monitor (region 0) crashes at `crash_at` and heals `down_for` later.
fn leader_crash_plan(crash_at: SimDuration, down_for: SimDuration) -> FabricChaosPlan {
    let mut plan = FabricChaosPlan::none();
    plan.faults.push(fd_runtime::fabric::FabricFault {
        at: crash_at,
        region: 0,
        kind: fd_runtime::fabric::FabricFaultKind::MonitorCrash {
            heal_after: Some(down_for),
        },
    });
    plan
}

/// Runs the whole fabric once: regions, global tier, election.
fn run_fabric(
    topo: &FabricTopology,
    plan: &FabricChaosPlan,
    global_combo: Combination,
) -> (
    Vec<RegionRun>,
    GlobalOutcome,
    crate::election::ElectionOutcome,
) {
    let combos = vec![reference_combo()];
    let runs: Vec<RegionRun> = (0..topo.regions.len())
        .map(|r| run_region(topo, r, plan, &combos))
        .collect();
    let global = run_global(topo, &runs, plan, global_combo);
    // The election consumes only in-horizon transitions: past the horizon
    // every monitor stops emitting, so the detectors' trailing suspicions
    // are measurement-window artifacts, not demotions anyone would act on.
    let in_horizon: Vec<_> = global
        .transitions
        .iter()
        .filter(|tr| tr.at <= SimTime::ZERO + topo.horizon)
        .cloned()
        .collect();
    let election = elect(
        topo.regions.len(),
        &in_horizon,
        plan,
        global_combo,
        topo.summary_every,
        &topo.regions[0].profile,
        topo.horizon + topo.summary_every * 8,
        topo.seed,
    );
    (runs, global, election)
}

/// Runs one election row: `n` regions, a leader-monitor crash mid-run,
/// and the election QoS attributed to the measured detector QoS.
pub fn run_fabric_row(
    n: usize,
    sources_per_region: usize,
    global_combo: Combination,
    fan_in: FanIn,
    seed: u64,
) -> FabricRow {
    let started = Instant::now();
    let horizon = SimDuration::from_secs(75);
    let mut topo = FabricTopology::symmetric(n, sources_per_region, 2, horizon, seed);
    topo.fan_in = fan_in;
    let mut plan = leader_crash_plan(SimDuration::from_secs(30), SimDuration::from_secs(20));
    // A short pre-crash partition of the leader region: the monitor is
    // alive, so the global tier's suspicion of it is a *mistake* and the
    // resulting demotion is *spurious* — the row measures both against
    // the detector's P_A instead of reporting structural zeros.
    plan.faults.push(fd_runtime::fabric::FabricFault {
        at: SimDuration::from_secs(10),
        region: 0,
        kind: fd_runtime::fabric::FabricFaultKind::Partition {
            duration: SimDuration::from_secs(3),
        },
    });
    plan.sort();

    let (runs, global, election) = run_fabric(&topo, &plan, global_combo);
    let regional = &runs[0].qos[REF_COMBO];
    let hours = topo.horizon.as_secs_f64() / 3_600.0;

    FabricRow {
        regions: n,
        sources_per_region,
        combo: global_combo.label(),
        fan_in: match fan_in {
            FanIn::Hierarchical => "hierarchical".into(),
            FanIn::Gossip { fanout } => format!("gossip-{fanout}"),
        },
        regional_td_ms: regional.mean_td_ms(),
        regional_pa: regional.query_accuracy(),
        monitor_td_ms: global.monitor_qos.mean_td_ms(),
        monitor_pa: global.monitor_qos.query_accuracy(),
        monitor_crashes: global.monitor_qos.crashes,
        monitor_detections: global.monitor_qos.detections,
        demote_latency_ms: election.demote_latency.map(|d| d.as_millis_f64()),
        spurious_demotions: election.spurious_demotions,
        spurious_per_hour: election.spurious_demotions as f64 / hours,
        decision_latency_ms: election.decision_latency.map(|d| d.as_millis_f64()),
        deciders: election.deciders,
        agreement: election.agreement,
        frames_emitted: global.frames_emitted,
        frames_lost: global.frames_lost,
        digest: fabric_digest(&runs, &global),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The chaos row: crash/partition/heal served end-to-end through a relay.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Regions in the fabric.
    pub regions: usize,
    /// The crashed monitor.
    pub crash_region: u16,
    /// Crash instant, seconds.
    pub crash_at_s: u64,
    /// Global-tier diagnosis latency (crash → suspicion), ms.
    pub detect_ms: Option<f64>,
    /// Heal observed (suspicion dropped after the monitor came back).
    pub heal_observed: bool,
    /// The crashed block was served with `FLAG_SEGMENT_DEGRADED`
    /// **through the relay** while the monitor was down.
    pub degraded_via_relay: bool,
    /// The block came back clean through the relay after the heal.
    pub healed_via_relay: bool,
    /// Emissions dropped by the region partition.
    pub partition_dropped: u64,
    /// Frames lost to WAN loss.
    pub frames_lost: u64,
    /// Monitor-level mistakes (spurious suspicions, e.g. the partition).
    pub monitor_mistakes: u64,
    /// Fabric determinism digest.
    pub digest: u64,
    /// Wall time of the row, milliseconds.
    pub wall_ms: f64,
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() > until {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Runs the canonical crash/partition/heal scenario and serves the
/// diagnosed fabric through an origin server and a relay, replaying the
/// virtual timeline into a live [`SuspectView`] in two acts: up to the
/// moment the global tier diagnoses the crash (the relay must then serve
/// the block degraded), and through the heal (the relay must clear it).
pub fn run_chaos_row(seed: u64) -> ChaosRow {
    let started = Instant::now();
    const N: usize = 3;
    const SOURCES: usize = 64;
    let crash_at = SimDuration::from_secs(15);
    let down_for = SimDuration::from_secs(20);
    let topo = FabricTopology::symmetric(N, SOURCES, 2, SimDuration::from_secs(60), seed);
    let plan = FabricChaosPlan::crash_partition_heal(
        1,
        crash_at,
        down_for,
        2,
        SimDuration::from_secs(40),
        SimDuration::from_secs(8),
    );
    let (runs, global, _) = run_fabric(&topo, &plan, reference_combo());
    let digest = fabric_digest(&runs, &global);

    let crash = SimTime::ZERO + crash_at;
    let detected = global.first_suspected_after(1, crash);
    let heal_observed = detected.is_some_and(|d| {
        global
            .first_trusted_after(1, d + SimDuration::from_micros(1))
            .is_some()
    });

    // -- Serve the diagnosed fabric through origin + relay ---------------
    let blocks: Vec<(usize, usize)> = (0..N).map(|r| topo.block(r)).collect();
    let view = SuspectView::new(1, &blocks);
    let mut writers: Vec<_> = (0..N).map(|r| view.writer(r)).collect();
    let origin =
        ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind origin");
    let relay = Relay::start(
        origin.local_addr(),
        RelayConfig {
            push_timeout: Duration::from_millis(25),
            serve: ServeConfig {
                push_interval: Duration::from_millis(5),
                ..ServeConfig::default()
            },
            ..RelayConfig::default()
        },
    )
    .expect("start relay");

    // The virtual timeline as view operations: publications on arrival,
    // degradation marks on suspicion edges. Capped at the horizon: past
    // it every monitor stops emitting, so the detectors' trailing
    // suspicions are measurement-window artifacts with no publication
    // left to clear them.
    let horizon_us = topo.horizon.as_micros();
    enum Op {
        Publish(usize, Vec<u64>),
        MarkDegraded(usize),
    }
    let mut ops: Vec<(u64, u8, Op)> = Vec::new();
    for a in global.arrivals.iter().filter(|a| a.fresh) {
        let r = usize::from(a.frame.region);
        ops.push((a.at.as_micros(), 0, Op::Publish(r, a.frame.words.clone())));
    }
    for tr in global.transitions.iter().filter(|t| t.suspected) {
        ops.push((
            tr.at.as_micros(),
            1,
            Op::MarkDegraded(usize::from(tr.region)),
        ));
    }
    ops.retain(|(us, _, _)| *us <= horizon_us);
    ops.sort_by_key(|(us, class, _)| (*us, *class));

    let apply_until = |ops: &mut std::vec::IntoIter<(u64, u8, Op)>,
                       writers: &mut Vec<fd_serve::SegmentWriter>,
                       cutoff_us: u64| {
        // Peekable-free drain: ops is consumed in order, the caller holds
        // the iterator across calls.
        let remaining: Vec<_> = ops.collect();
        let mut rest = Vec::new();
        for (us, class, op) in remaining {
            if us > cutoff_us {
                rest.push((us, class, op));
                continue;
            }
            match op {
                Op::Publish(r, words) => {
                    writers[r].publish_words(&words, SimTime::from_micros(us));
                }
                Op::MarkDegraded(r) => {
                    view.mark_degraded(r);
                }
            }
        }
        rest.into_iter()
    };

    let mut it = ops.into_iter();
    let (mut degraded_via_relay, mut healed_via_relay) = (false, false);
    if let Some(td) = detected {
        // Act one: the world up to (and including) the diagnosis.
        it = apply_until(&mut it, &mut writers, td.as_micros());
        let probe_source = (blocks[1].0 + 1) as u32;
        degraded_via_relay = wait_for(Duration::from_secs(10), || relay.view().segment_degraded(1))
            && {
                let mut client =
                    ServeClient::connect(relay.local_addr(), Duration::from_millis(250))
                        .expect("connect relay client");
                wait_for(Duration::from_secs(5), || {
                    matches!(
                        client.point(probe_source, 0),
                        Ok(Response::PointResp { flags, .. }) if flags & FLAG_SEGMENT_DEGRADED != 0
                    )
                })
            };

        // Act two: the heal — publications resume and clear the mark.
        let _ = apply_until(&mut it, &mut writers, u64::MAX);
        healed_via_relay = wait_for(Duration::from_secs(10), || {
            !relay.view().segment_degraded(1)
        }) && {
            let mut client = ServeClient::connect(relay.local_addr(), Duration::from_millis(250))
                .expect("connect relay client");
            wait_for(Duration::from_secs(5), || {
                matches!(
                    client.point(probe_source, 0),
                    Ok(Response::PointResp { flags, .. }) if flags & FLAG_SEGMENT_DEGRADED == 0
                )
            })
        };
    }
    // Keep the relay's upstream accounting observable (and the borrow
    // checker honest about the servers outliving the probes).
    let _deltas = relay.stats().deltas_applied.load(Ordering::Relaxed);

    ChaosRow {
        regions: N,
        crash_region: 1,
        crash_at_s: crash_at.as_micros() / 1_000_000,
        detect_ms: detected.map(|d| (d - crash).as_millis_f64()),
        heal_observed,
        degraded_via_relay,
        healed_via_relay,
        partition_dropped: global.partition_dropped,
        frames_lost: global.frames_lost,
        monitor_mistakes: global.monitor_qos.mistakes + global.monitor_qos.open_mistakes,
        digest,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The CI smoke gate: a 3-region fabric with one monitor crash must
/// diagnose the crash, observe the heal, and replay bit-identically.
///
/// # Panics
///
/// Panics (failing the CI job) if any gate is violated.
pub fn run_smoke(seed: u64) {
    let topo = FabricTopology::symmetric(3, 64, 2, SimDuration::from_secs(40), seed);
    let plan = leader_crash_plan(SimDuration::from_secs(12), SimDuration::from_secs(14));
    let (runs, global, election) = run_fabric(&topo, &plan, reference_combo());

    let crash = SimTime::from_secs(12);
    let detected = global
        .first_suspected_after(0, crash)
        .expect("global tier never diagnosed the monitor crash");
    let detect_latency = detected - crash;
    assert!(
        detect_latency < SimDuration::from_secs(15),
        "diagnosis took {detect_latency}"
    );
    let trusted = global
        .first_trusted_after(0, detected)
        .expect("heal never observed: the monitor stayed suspected");
    assert!(trusted >= SimTime::from_secs(26), "trusted at {trusted}?");
    assert_eq!(global.monitor_qos.crashes, 1);
    assert_eq!(global.monitor_qos.detections, 1);
    println!("  diagnosis: crash at 12 s detected in {detect_latency}, heal observed at {trusted}");

    let demote = election
        .demote_latency
        .expect("leader crash did not demote the leader");
    assert!(election.agreement, "ratification deciders disagreed");
    assert!(election.deciders >= 2, "ratification never decided");
    println!(
        "  election: demoted in {demote}, {} spurious demotion(s), ratified by {} in {:?} ms",
        election.spurious_demotions,
        election.deciders,
        election.decision_latency.map(|d| d.as_millis_f64()),
    );

    let digest = fabric_digest(&runs, &global);
    let (runs2, global2, _) = run_fabric(&topo, &plan, reference_combo());
    let digest2 = fabric_digest(&runs2, &global2);
    assert_eq!(digest, digest2, "fabric replay diverged");
    println!("  digest: {digest:#018x} stable across replay");
}

/// Renders `BENCH_fabric.json` (hand-rolled: the workspace carries no
/// JSON dependency).
pub fn render_json(rows: &[FabricRow], chaos: &ChaosRow, seed: u64) -> String {
    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "null".into(),
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fabric\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"reference_combo\": \"{}\",\n",
        reference_combo().label()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regions\": {}, \"sources_per_region\": {}, \"combo\": \"{}\", \
             \"fan_in\": \"{}\", \"regional_td_ms\": {}, \"regional_pa\": {}, \
             \"monitor_td_ms\": {}, \"monitor_pa\": {}, \"monitor_crashes\": {}, \
             \"monitor_detections\": {}, \"demote_latency_ms\": {}, \
             \"spurious_demotions\": {}, \"spurious_per_hour\": {:.3}, \
             \"decision_latency_ms\": {}, \"deciders\": {}, \"agreement\": {}, \
             \"frames_emitted\": {}, \"frames_lost\": {}, \"digest\": {}, \
             \"wall_ms\": {:.3}}}{}\n",
            r.regions,
            r.sources_per_region,
            r.combo,
            r.fan_in,
            fmt_opt(r.regional_td_ms),
            fmt_opt(r.regional_pa),
            fmt_opt(r.monitor_td_ms),
            fmt_opt(r.monitor_pa),
            r.monitor_crashes,
            r.monitor_detections,
            fmt_opt(r.demote_latency_ms),
            r.spurious_demotions,
            r.spurious_per_hour,
            fmt_opt(r.decision_latency_ms),
            r.deciders,
            r.agreement,
            r.frames_emitted,
            r.frames_lost,
            r.digest,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"chaos_row\": {{\"regions\": {}, \"crash_region\": {}, \"crash_at_s\": {}, \
         \"detect_ms\": {}, \"heal_observed\": {}, \"degraded_via_relay\": {}, \
         \"healed_via_relay\": {}, \"partition_dropped\": {}, \"frames_lost\": {}, \
         \"monitor_mistakes\": {}, \"digest\": {}, \"wall_ms\": {:.3}}}\n",
        chaos.regions,
        chaos.crash_region,
        chaos.crash_at_s,
        fmt_opt(chaos.detect_ms),
        chaos.heal_observed,
        chaos.degraded_via_relay,
        chaos.healed_via_relay,
        chaos.partition_dropped,
        chaos.frames_lost,
        chaos.monitor_mistakes,
        chaos.digest,
        chaos.wall_ms,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_row_measures_election_and_detector_qos() {
        let row = run_fabric_row(3, 64, reference_combo(), FanIn::Hierarchical, 17);
        assert_eq!(row.monitor_crashes, 1);
        assert_eq!(row.monitor_detections, 1);
        let demote = row.demote_latency_ms.expect("leader demoted");
        assert!(demote > 0.0 && demote < 15_000.0, "demote {demote} ms");
        assert!(row.agreement);
        assert!(row.deciders >= 2);
        assert!(row.regional_td_ms.is_some(), "regional T_D unmeasured");
        assert!(row.frames_emitted > 0);
    }

    #[test]
    fn chaos_row_serves_the_degraded_block_through_the_relay() {
        let row = run_chaos_row(23);
        assert!(row.detect_ms.is_some(), "crash undiagnosed");
        assert!(row.heal_observed, "heal unobserved");
        assert!(
            row.degraded_via_relay,
            "degraded flag never crossed the relay"
        );
        assert!(row.healed_via_relay, "heal never crossed the relay");
        assert!(row.partition_dropped > 0);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![run_fabric_row(
            3,
            64,
            reference_combo(),
            FanIn::Hierarchical,
            29,
        )];
        let chaos = run_chaos_row(29);
        let doc = render_json(&rows, &chaos, 29);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"demote_latency_ms\""));
        assert!(doc.contains("\"chaos_row\""));
        assert!(doc.contains("\"degraded_via_relay\": true"));
    }
}
