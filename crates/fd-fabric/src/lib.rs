//! # fd-fabric — the federated multi-monitor WAN tier
//!
//! The paper measures one monitor watching many sources over one WAN
//! path. This crate federates that design: **N regional monitors** (each
//! a supervised [`fd_runtime::sharded::ShardedEngine`] over a contiguous
//! block of the global source space) exchange compact suspect summaries
//! over `fd-net`'s calibrated WAN links, and a **global tier** runs a
//! failure-detector bank *over the monitors themselves* — a summary
//! frame's arrival is the monitor's heartbeat, so a crashed or
//! partitioned monitor is diagnosed with exactly the same QoS machinery
//! (`T_D`, `T_M`, `T_MR`, `P_A`) the paper applies to sources.
//!
//! The layers, bottom to top:
//!
//! * [`region`] — one regional monitor: sharded engine, warm-restart
//!   supervision, and its suspicion state sampled into
//!   [`fd_net::SummaryFrame`]s on the fabric cadence grid;
//! * [`summary`] — the [`FabricView`] join-semilattice every receiver
//!   folds frames into: per-region max under a total order, so gossip
//!   redundancy and WAN reordering are provably harmless;
//! * [`global`] — WAN delivery (hierarchical push or gossip fan-in) and
//!   the monitor-level detector bank plus QoS accounting;
//! * [`election`] — the Ω/leader-election consumer and the trust-driven
//!   consensus ratification that turn the global tier's diagnosis into
//!   election-time QoS;
//! * [`experiment`] — the `BENCH_fabric.json` rows and the
//!   crash/partition/heal chaos scenario served end-to-end (origin *and*
//!   relay) with `FLAG_SEGMENT_DEGRADED`.

pub mod election;
pub mod experiment;
pub mod global;
pub mod region;
pub mod summary;

pub use election::{elect, omega_trajectory, ElectionOutcome};
pub use experiment::{
    fabric_digest, reference_combo, run_chaos_row, run_fabric_row, run_smoke, ChaosRow, FabricRow,
};
pub use global::{run_global, Arrival, GlobalOutcome, MonitorTransition};
pub use region::{run_region, RegionRun, REF_COMBO};
pub use summary::{frame_order, FabricView};
