//! The global tier: a detector bank over the *monitors themselves*.
//!
//! Each region's summary trace crosses its calibrated WAN uplink (losing
//! and delaying frames exactly like heartbeats), a partitioned region's
//! emissions are dropped wholesale, and every arrival does double duty:
//! its payload joins the [`FabricView`] CRDT, and its *arrival* is a
//! monitor-level heartbeat feeding one [`FailureDetector`] per region —
//! the same predictor + margin machinery the regions run over their
//! sources, one level up. A crashed or partitioned monitor is therefore
//! diagnosed with the same QoS vocabulary: the global tier's `T_D` is the
//! monitor-crash detection time, its mistakes are spurious suspicions of
//! live monitors (a partition looks exactly like a crash until it heals).

use fd_core::{Combination, FailureDetector};
use fd_net::{LinkModel, SummaryFrame};
use fd_runtime::fabric::{FabricChaosPlan, FabricFaultKind, FabricTopology, FanIn};
use fd_sim::{SeedTree, SimDuration, SimTime};
use fd_stat::{EventSink, QosAccumulator, QosSummary};

use crate::region::RegionRun;
use crate::summary::FabricView;

/// One suspicion edge of the global tier's detector bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorTransition {
    /// When the edge fired.
    pub at: SimTime,
    /// The monitor (region) it concerns.
    pub region: u16,
    /// `true` = started suspecting, `false` = stopped.
    pub suspected: bool,
}

/// One delivered summary frame, as seen by the global tier.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Arrival instant (emission + WAN delay).
    pub at: SimTime,
    /// The frame.
    pub frame: SummaryFrame,
    /// Whether it advanced the [`FabricView`] (`false` = duplicate or
    /// stale copy, absorbed idempotently).
    pub fresh: bool,
}

/// What the global tier concluded about the fabric's monitors.
#[derive(Debug, Clone)]
pub struct GlobalOutcome {
    /// Monitor-level QoS roll-up (detector = `combo`, heartbeat = summary
    /// arrival): `T_D` here is monitor-crash detection time, mistakes are
    /// spurious suspicions of live monitors.
    pub monitor_qos: QosSummary,
    /// Every suspicion edge, time-ordered — the Ω/election input.
    pub transitions: Vec<MonitorTransition>,
    /// Every delivered frame, time-ordered.
    pub arrivals: Vec<Arrival>,
    /// Frames the regions emitted.
    pub frames_emitted: u64,
    /// Copies lost to WAN loss (any leg of any path).
    pub frames_lost: u64,
    /// Emissions dropped because the region was partitioned.
    pub partition_dropped: u64,
    /// Delivered copies that did not advance the view (gossip redundancy
    /// or reordering, absorbed idempotently).
    pub duplicates: u64,
    /// The converged view at the end of the run.
    pub view: FabricView,
    /// Instant accounting stops (`horizon` + drain grace).
    pub run_end: SimTime,
}

impl GlobalOutcome {
    /// First instant at or after `t0` the tier started suspecting
    /// `region`, if any — the monitor-crash diagnosis latency probe.
    pub fn first_suspected_after(&self, region: u16, t0: SimTime) -> Option<SimTime> {
        self.transitions
            .iter()
            .find(|tr| tr.region == region && tr.suspected && tr.at >= t0)
            .map(|tr| tr.at)
    }

    /// First instant at or after `t0` the tier stopped suspecting
    /// `region` — the heal-observed probe.
    pub fn first_trusted_after(&self, region: u16, t0: SimTime) -> Option<SimTime> {
        self.transitions
            .iter()
            .find(|tr| tr.region == region && !tr.suspected && tr.at >= t0)
            .map(|tr| tr.at)
    }
}

/// One deliverable copy of an emitted frame, pre-WAN.
struct Emission {
    emit_us: u64,
    region: u16,
    frame: SummaryFrame,
}

/// The time-ordered event stream the diagnosis loop walks. The class
/// breaks ties at one instant: crashes open before frames land, checks
/// run after arrivals (an arrival at the deadline instant wins), restores
/// classify last.
enum Ev {
    Crash(u16),
    Arrive(Arrival),
    Check,
    Restore(u16),
}

fn class(ev: &Ev) -> u8 {
    match ev {
        Ev::Crash(_) => 0,
        Ev::Arrive(_) => 1,
        Ev::Check => 2,
        Ev::Restore(_) => 3,
    }
}

/// Runs the global tier over the regions' traces: WAN delivery under the
/// chaos plan, CRDT fan-in, and the monitor-of-monitors detector bank.
/// Deterministic in `(topology, traces, plan, combo)`.
pub fn run_global(
    topo: &FabricTopology,
    runs: &[RegionRun],
    plan: &FabricChaosPlan,
    combo: Combination,
) -> GlobalOutcome {
    let n = topo.regions.len();
    assert_eq!(runs.len(), n, "one RegionRun per region");
    let eta = topo.summary_every;
    let seeds = SeedTree::new(topo.seed).subtree("fabric-wan");
    let run_end = SimTime::ZERO + topo.horizon + eta * 4;

    // -- WAN delivery: every emission crosses its path(s) ----------------
    let mut uplinks: Vec<LinkModel> = (0..n)
        .map(|r| {
            topo.regions[r]
                .profile
                .link(seeds.rng(&format!("uplink-{r}")))
        })
        .collect();
    let mut emissions: Vec<Emission> = Vec::new();
    for run in runs {
        for frame in &run.trace {
            emissions.push(Emission {
                emit_us: frame.virtual_us,
                region: run.region,
                frame: frame.clone(),
            });
        }
    }
    emissions.sort_by_key(|e| (e.emit_us, e.region));

    let mut frames_emitted = 0u64;
    let mut frames_lost = 0u64;
    let mut partition_dropped = 0u64;
    let mut deliveries: Vec<(u64, SummaryFrame)> = Vec::new();
    // Gossip relay paths get dedicated two-leg links so the draw order
    // stays deterministic whatever the delays do.
    let mut relay_links: std::collections::BTreeMap<(u16, usize), (LinkModel, LinkModel)> =
        std::collections::BTreeMap::new();
    let mut gossip_rngs: Vec<fd_sim::DetRng> =
        (0..n).map(|r| seeds.rng(&format!("gossip-{r}"))).collect();

    for e in &emissions {
        frames_emitted += 1;
        let off = SimDuration::from_micros(e.emit_us);
        if plan.partitioned(e.region, off) {
            partition_dropped += 1;
            continue;
        }
        let t_emit = SimTime::from_micros(e.emit_us);
        // Direct uplink copy.
        let tx = uplinks[usize::from(e.region)].transmit(t_emit);
        match tx.delay() {
            Some(d) => deliveries.push(((t_emit + d).as_micros(), e.frame.clone())),
            None => frames_lost += 1,
        }
        // Redundant gossip copies: relay through a seeded peer, one WAN
        // leg to the peer and one up. A peer that is itself partitioned
        // when the copy reaches it drops the relay.
        if let FanIn::Gossip { fanout } = topo.fan_in {
            for _ in 1..fanout.max(1) {
                if n < 2 {
                    break;
                }
                let draw = gossip_rngs[usize::from(e.region)].uniform(0.0, (n - 1) as f64);
                let mut peer = draw as usize;
                if peer >= usize::from(e.region) {
                    peer += 1; // skip self
                }
                let peer = peer.min(n - 1) as u16;
                let (leg1, leg2) = relay_links
                    .entry((e.region, usize::from(peer)))
                    .or_insert_with(|| {
                        let label = format!("relay-{}-{}", e.region, peer);
                        (
                            topo.regions[usize::from(e.region)]
                                .profile
                                .link(seeds.rng(&format!("{label}-a"))),
                            topo.regions[usize::from(peer)]
                                .profile
                                .link(seeds.rng(&format!("{label}-b"))),
                        )
                    });
                let Some(d1) = leg1.transmit(t_emit).delay() else {
                    frames_lost += 1;
                    continue;
                };
                let t_peer = t_emit + d1;
                if plan.partitioned(peer, t_peer - SimTime::ZERO) {
                    partition_dropped += 1;
                    continue;
                }
                let Some(d2) = leg2.transmit(t_peer).delay() else {
                    frames_lost += 1;
                    continue;
                };
                let mut relayed = e.frame.clone();
                relayed.origin = peer;
                deliveries.push(((t_peer + d2).as_micros(), relayed));
            }
        }
    }
    deliveries.sort_by(|a, b| {
        (a.0, a.1.region, a.1.seq, a.1.origin).cmp(&(b.0, b.1.region, b.1.seq, b.1.origin))
    });

    // -- The diagnosis loop: detectors + CRDT + QoS accumulator ----------
    let mut events: Vec<(u64, Ev)> = Vec::new();
    for fault in &plan.faults {
        if let FabricFaultKind::MonitorCrash { heal_after } = fault.kind {
            let crash_us = fault.at.as_micros();
            events.push((crash_us, Ev::Crash(fault.region)));
            // An unhealed monitor is classified at run end (the paper's
            // accumulator needs a restore to close the crash window).
            let restore_us = match heal_after {
                Some(d) => crash_us + d.as_micros(),
                None => run_end.as_micros() - 1,
            };
            events.push((
                restore_us.min(run_end.as_micros() - 1),
                Ev::Restore(fault.region),
            ));
        }
    }
    for (at_us, frame) in deliveries {
        events.push((
            at_us,
            Ev::Arrive(Arrival {
                at: SimTime::from_micros(at_us),
                frame,
                fresh: false,
            }),
        ));
    }
    // Fine enough that detection latency differences between margin
    // families survive the grid (η/4 quantized every combo to the same
    // tick in early runs).
    let check_step = (eta.as_micros() / 16).max(1);
    let mut t = check_step;
    while t <= run_end.as_micros() {
        events.push((t, Ev::Check));
        t += check_step;
    }
    events.sort_by_key(|(us, ev)| (*us, class(ev)));

    let mut fds: Vec<FailureDetector> = (0..n).map(|_| combo.build(eta)).collect();
    let mut last_seq: Vec<u64> = vec![0; n];
    let mut acc = QosAccumulator::summary(n, 1);
    let mut view = FabricView::new();
    let mut transitions = Vec::new();
    let mut arrivals = Vec::new();
    let mut duplicates = 0u64;

    for (us, ev) in events {
        let now = SimTime::from_micros(us);
        match ev {
            Ev::Crash(r) => acc.crash(now, u32::from(r)),
            Ev::Restore(r) => acc.restore(now, u32::from(r)),
            Ev::Check => {
                for (r, fd) in fds.iter_mut().enumerate() {
                    if let Some(tr) = fd.check(now) {
                        let suspected = tr == fd_core::FdTransition::StartSuspect;
                        if suspected {
                            acc.start_suspect(now, r as u32, 0);
                        } else {
                            acc.end_suspect(now, r as u32, 0);
                        }
                        transitions.push(MonitorTransition {
                            at: now,
                            region: r as u16,
                            suspected,
                        });
                    }
                }
            }
            Ev::Arrive(mut arrival) => {
                let r = usize::from(arrival.frame.region);
                let seq = arrival.frame.seq;
                arrival.fresh = view.absorb(arrival.frame.clone());
                if !arrival.fresh {
                    duplicates += 1;
                }
                if r < n && seq > last_seq[r] {
                    last_seq[r] = seq;
                    if let Some(tr) = fds[r].on_heartbeat(seq, now) {
                        let suspected = tr == fd_core::FdTransition::StartSuspect;
                        if suspected {
                            acc.start_suspect(now, r as u32, 0);
                        } else {
                            acc.end_suspect(now, r as u32, 0);
                        }
                        transitions.push(MonitorTransition {
                            at: now,
                            region: r as u16,
                            suspected,
                        });
                    }
                }
                arrivals.push(arrival);
            }
        }
    }

    let mut summaries = acc.finish_summaries(run_end);
    let monitor_qos = summaries.pop().expect("one combo accumulated");
    GlobalOutcome {
        monitor_qos,
        transitions,
        arrivals,
        frames_emitted,
        frames_lost,
        partition_dropped,
        duplicates,
        view,
        run_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::run_region;
    use fd_core::{MarginKind, PredictorKind};

    fn ref_combo() -> Combination {
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 })
    }

    fn run_fabric(
        n: usize,
        horizon_s: u64,
        seed: u64,
        plan: &FabricChaosPlan,
    ) -> (FabricTopology, Vec<RegionRun>, GlobalOutcome) {
        let topo = FabricTopology::symmetric(n, 64, 1, SimDuration::from_secs(horizon_s), seed);
        let combos = vec![ref_combo()];
        let runs: Vec<RegionRun> = (0..n)
            .map(|r| run_region(&topo, r, plan, &combos))
            .collect();
        let global = run_global(&topo, &runs, plan, ref_combo());
        (topo, runs, global)
    }

    #[test]
    fn clean_fabric_converges_and_stays_mostly_trusted() {
        let (_, _, g) = run_fabric(3, 30, 5, &FabricChaosPlan::none());
        assert_eq!(g.view.regions(), 3);
        assert!(g.frames_emitted >= 85, "emitted {}", g.frames_emitted);
        assert_eq!(g.partition_dropped, 0);
        assert_eq!(g.monitor_qos.crashes, 0);
        // Every suspicion of a live monitor is a (completed or open) mistake.
        let spurious = g.transitions.iter().filter(|t| t.suspected).count() as u64;
        assert_eq!(
            g.monitor_qos.mistakes + g.monitor_qos.open_mistakes,
            spurious
        );
    }

    #[test]
    fn monitor_crash_is_detected_and_heal_observed() {
        let plan = FabricChaosPlan::crash_partition_heal(
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            2,
            SimDuration::from_secs(35),
            SimDuration::from_secs(5),
        );
        let (_, runs, g) = run_fabric(3, 50, 9, &plan);
        assert!(runs[1].suppressed >= 9, "crash window suppressed frames");
        let crash = SimTime::from_secs(10);
        let detected = g
            .first_suspected_after(1, crash)
            .expect("global tier never suspected the crashed monitor");
        assert!(detected < SimTime::from_secs(20), "detected at {detected}");
        let trusted = g
            .first_trusted_after(1, detected)
            .expect("heal never observed");
        assert!(trusted > SimTime::from_secs(20), "trusted at {trusted}");
        assert_eq!(g.monitor_qos.crashes, 1);
        assert_eq!(g.monitor_qos.detections, 1);
        // The partitioned region is alive: any suspicion of it is a mistake.
        assert!(g.partition_dropped > 0);
    }

    #[test]
    fn gossip_fan_in_is_idempotent_and_converges_to_the_same_view() {
        let plan = FabricChaosPlan::none();
        let mut topo = FabricTopology::symmetric(3, 64, 1, SimDuration::from_secs(25), 13);
        let combos = vec![ref_combo()];
        let runs: Vec<RegionRun> = (0..3)
            .map(|r| run_region(&topo, r, &plan, &combos))
            .collect();
        let hier = run_global(&topo, &runs, &plan, ref_combo());
        topo.fan_in = FanIn::Gossip { fanout: 3 };
        let gossip = run_global(&topo, &runs, &plan, ref_combo());
        // Redundant paths deliver duplicates; the CRDT absorbs them and
        // both disciplines converge to the same suspicion content. Only
        // `origin` (the forwarding peer) may differ between the two.
        assert!(gossip.duplicates > 0, "gossip produced no redundancy");
        let content = |v: &crate::summary::FabricView| -> Vec<_> {
            v.frames()
                .map(|f| (f.region, f.seq, f.virtual_us, f.suspects, f.words.clone()))
                .collect()
        };
        assert_eq!(content(&gossip.view), content(&hier.view));
    }

    #[test]
    fn global_run_is_deterministic() {
        let plan = FabricChaosPlan::crash_partition_heal(
            0,
            SimDuration::from_secs(8),
            SimDuration::from_secs(6),
            1,
            SimDuration::from_secs(20),
            SimDuration::from_secs(4),
        );
        let (_, _, a) = run_fabric(3, 30, 21, &plan);
        let (_, _, b) = run_fabric(3, 30, 21, &plan);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.frames_lost, b.frames_lost);
        assert_eq!(a.monitor_qos, b.monitor_qos);
    }
}
