//! ARIMA order selection by held-out one-step prediction error.
//!
//! The paper identified `(p, d, q) = (2, 1, 1)` by searching
//! `[0,0,0]–[10,10,10]` with the RPS toolkit for the orders that maximise
//! accuracy (minimum `msqerr`). [`select_best_model`] reproduces that
//! procedure: each candidate is fitted on a training prefix and scored by the
//! mean squared one-step error on the held-out suffix.

use serde::{Deserialize, Serialize};

use crate::model::{ArimaModel, ArimaSpec};

/// How candidate orders are scored.
///
/// Information criteria are computed on one-step *level* forecast errors
/// over a common evaluation span, so candidates with different `d` remain
/// comparable (a likelihood on the differenced series would not be).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionCriterion {
    /// Held-out mean squared one-step error (the paper's criterion).
    HoldoutMsqErr,
    /// Akaike: `n·ln(mse) + 2k`, `k = p + q + 1`.
    Aic,
    /// Bayesian/Schwarz: `n·ln(mse) + k·ln(n)` — penalises order harder.
    Bic,
}

/// Score of one candidate order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionResult {
    /// The candidate order.
    pub spec: ArimaSpec,
    /// Held-out mean squared one-step error.
    pub msqerr: f64,
    /// The score under the chosen criterion (equals `msqerr` for
    /// [`SelectionCriterion::HoldoutMsqErr`]).
    pub score: f64,
}

/// Outcome of a grid search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionReport {
    /// The winning order.
    pub best: SelectionResult,
    /// Every candidate evaluated, sorted by ascending `msqerr`.
    pub ranked: Vec<SelectionResult>,
    /// Candidates that failed to fit (too-short series or singular system).
    pub failed: usize,
}

/// Searches `(p, d, q) ∈ [0..=p_max] × [0..=d_max] × [0..=q_max]` for the
/// order with the smallest held-out one-step `msqerr`.
///
/// The series is split 60/40: candidates are fitted on the first part and
/// scored on one-step forecasts over the full series, with the error taken
/// only over the evaluation suffix.
///
/// Returns `None` if the series is too short for any candidate, or no
/// candidate fits.
///
/// # Panics
///
/// Panics if the series is empty.
pub fn select_best_model(
    series: &[f64],
    p_max: usize,
    d_max: usize,
    q_max: usize,
) -> Option<SelectionReport> {
    select_best_model_by(
        series,
        p_max,
        d_max,
        q_max,
        SelectionCriterion::HoldoutMsqErr,
    )
}

/// As [`select_best_model`], but with an explicit scoring criterion.
///
/// Every candidate is fitted on the first 60% of the series and its one-step
/// forecasts over the remaining 40% produce the held-out `msqerr`; the
/// criterion then maps `(msqerr, k, n)` to the ranking score.
///
/// # Panics
///
/// Panics if the series is empty.
pub fn select_best_model_by(
    series: &[f64],
    p_max: usize,
    d_max: usize,
    q_max: usize,
    criterion: SelectionCriterion,
) -> Option<SelectionReport> {
    assert!(
        !series.is_empty(),
        "cannot select a model for an empty series"
    );
    let split = (series.len() * 3) / 5;
    let train = &series[..split];
    let mut ranked = Vec::new();
    let mut failed = 0usize;

    for p in 0..=p_max {
        for d in 0..=d_max {
            for q in 0..=q_max {
                let spec = ArimaSpec::new(p, d, q);
                let model = match ArimaModel::fit(train, spec) {
                    Ok(m) => m,
                    Err(_) => {
                        failed += 1;
                        continue;
                    }
                };
                let forecasts = model.one_step_forecasts(series);
                let mut sse = 0.0;
                let mut n = 0usize;
                for t in split..series.len() {
                    let e = series[t] - forecasts[t];
                    sse += e * e;
                    n += 1;
                }
                if n == 0 {
                    failed += 1;
                    continue;
                }
                let msqerr = sse / n as f64;
                let k = (p + q + 1) as f64;
                let nf = n as f64;
                let score = match criterion {
                    SelectionCriterion::HoldoutMsqErr => msqerr,
                    // ln of a zero mse (perfect fit) is handled by flooring.
                    SelectionCriterion::Aic => nf * msqerr.max(1e-300).ln() + 2.0 * k,
                    SelectionCriterion::Bic => nf * msqerr.max(1e-300).ln() + k * nf.ln(),
                };
                if msqerr.is_finite() && score.is_finite() {
                    ranked.push(SelectionResult {
                        spec,
                        msqerr,
                        score,
                    });
                } else {
                    failed += 1;
                }
            }
        }
    }

    ranked.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite score"));
    let best = ranked.first()?.clone();
    Some(SelectionReport {
        best,
        ranked,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::DetRng;

    fn ar2_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::seed_from(seed);
        let mut xs = vec![0.0, 0.0];
        for t in 2..n + 200 {
            let next = 0.6 * xs[t - 1] - 0.25 * xs[t - 2] + rng.standard_normal();
            xs.push(next);
        }
        xs.split_off(200)
    }

    #[test]
    fn selects_history_exploiting_model_on_ar_process() {
        let xs = ar2_series(4_000, 41);
        let report = select_best_model(&xs, 3, 1, 2).unwrap();
        // The winner must use the AR structure: strictly better than the
        // white-noise mean model and the pure random-walk model.
        let best = report.best.msqerr;
        let mean_model = report
            .ranked
            .iter()
            .find(|r| r.spec == ArimaSpec::new(0, 0, 0))
            .unwrap();
        assert!(
            best < mean_model.msqerr,
            "best {best} vs mean {}",
            mean_model.msqerr
        );
        assert!(report.best.spec.p >= 1, "best spec = {}", report.best.spec);
    }

    #[test]
    fn ranked_is_sorted() {
        let xs = ar2_series(2_000, 42);
        let report = select_best_model(&xs, 2, 1, 1).unwrap();
        for pair in report.ranked.windows(2) {
            assert!(pair[0].msqerr <= pair[1].msqerr);
        }
        assert_eq!(report.best, report.ranked[0]);
    }

    #[test]
    fn short_series_fails_gracefully() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        // All candidates need more data than this.
        let report = select_best_model(&xs, 2, 1, 2);
        if let Some(r) = report {
            // If any tiny model fit, the report must still be well-formed.
            assert!(r.best.msqerr.is_finite());
        }
    }

    #[test]
    fn information_criteria_penalise_order() {
        // On pure white noise every extra coefficient is noise-fitting: BIC
        // must prefer a strictly smaller model than raw holdout error does
        // at least as often as not — concretely, BIC's winner never has more
        // parameters than the holdout winner here.
        let mut rng = DetRng::seed_from(44);
        let xs: Vec<f64> = (0..3_000).map(|_| rng.standard_normal()).collect();
        let holdout =
            select_best_model_by(&xs, 3, 0, 2, SelectionCriterion::HoldoutMsqErr).unwrap();
        let bic = select_best_model_by(&xs, 3, 0, 2, SelectionCriterion::Bic).unwrap();
        let order = |s: &SelectionResult| s.spec.p + s.spec.q;
        assert!(
            order(&bic.best) <= order(&holdout.best),
            "bic={} holdout={}",
            bic.best.spec,
            holdout.best.spec
        );
        // White noise: BIC should land on (0,0,0) or very close.
        assert!(order(&bic.best) <= 1, "bic picked {}", bic.best.spec);
    }

    #[test]
    fn criteria_agree_on_strong_structure() {
        // A strong AR(2) signal: all three criteria keep AR structure.
        let xs = ar2_series(4_000, 45);
        for criterion in [
            SelectionCriterion::HoldoutMsqErr,
            SelectionCriterion::Aic,
            SelectionCriterion::Bic,
        ] {
            let report = select_best_model_by(&xs, 3, 0, 1, criterion).unwrap();
            assert!(
                report.best.spec.p >= 1,
                "{criterion:?} picked {}",
                report.best.spec
            );
        }
    }

    #[test]
    fn holdout_score_equals_msqerr() {
        let xs = ar2_series(1_500, 46);
        let report = select_best_model(&xs, 1, 0, 1).unwrap();
        for r in &report.ranked {
            assert_eq!(r.score, r.msqerr);
        }
    }

    #[test]
    fn random_walk_prefers_differencing() {
        let mut rng = DetRng::seed_from(43);
        let mut xs = vec![0.0];
        for _ in 0..4_000 {
            let next = xs.last().unwrap() + rng.standard_normal();
            xs.push(next);
        }
        let report = select_best_model(&xs, 1, 1, 1).unwrap();
        // On a random walk, AR(1) with φ̂ ≈ 1 is observationally equivalent
        // to the d=1 model, so either may win — but the winner must be
        // essentially as good as the explicit random-walk model…
        let rw = report
            .ranked
            .iter()
            .find(|r| r.spec == ArimaSpec::new(0, 1, 0))
            .unwrap();
        assert!(report.best.msqerr <= rw.msqerr + 1e-9);
        assert!(
            rw.msqerr < 1.1 * report.best.msqerr,
            "rw barely worse at most"
        );
        // …and the d=0 mean model must be catastrophically worse.
        let mean_model = report
            .ranked
            .iter()
            .find(|r| r.spec == ArimaSpec::new(0, 0, 0))
            .unwrap();
        assert!(mean_model.msqerr > 5.0 * report.best.msqerr);
    }
}
