//! Autocovariance and autoregressive fitting.
//!
//! The Hannan–Rissanen ARMA estimator first fits a long pure-AR model to
//! recover innovation estimates; Yule–Walker via Levinson–Durbin does that in
//! `O(n·m + m²)`.

/// Sample autocovariance at lags `0..=max_lag` (biased estimator, divides by
/// `n`, which keeps the autocovariance sequence positive semi-definite).
///
/// # Panics
///
/// Panics if the series is empty.
pub fn autocovariance(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n > 0, "autocovariance of empty series");
    let mean = series.iter().sum::<f64>() / n as f64;
    (0..=max_lag.min(n - 1))
        .map(|lag| {
            series
                .iter()
                .zip(&series[lag..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Levinson–Durbin recursion: solves the Yule–Walker equations for an AR(m)
/// model given the autocovariances `γ_0..γ_m`.
///
/// Returns `(phi, sigma2)`: the AR coefficients and the innovation variance.
/// Returns `None` if the recursion breaks down (degenerate series).
///
/// # Panics
///
/// Panics if fewer than `order + 1` autocovariances are supplied.
pub fn levinson_durbin(autocov: &[f64], order: usize) -> Option<(Vec<f64>, f64)> {
    assert!(
        autocov.len() > order,
        "need {} autocovariances, got {}",
        order + 1,
        autocov.len()
    );
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut sigma2 = autocov[0];
    if sigma2 <= 0.0 {
        return None;
    }
    for k in 1..=order {
        let mut acc = autocov[k];
        for j in 1..k {
            acc -= phi[j - 1] * autocov[k - j];
        }
        let reflection = acc / sigma2;
        if !reflection.is_finite() {
            return None;
        }
        prev[..k - 1].copy_from_slice(&phi[..k - 1]);
        phi[k - 1] = reflection;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
        }
        sigma2 *= 1.0 - reflection * reflection;
        if sigma2 <= 0.0 {
            // Perfectly predictable series; coefficients so far are exact.
            sigma2 = 0.0;
            break;
        }
    }
    Some((phi, sigma2))
}

/// Fits an AR(`order`) model to `series` by Yule–Walker.
///
/// Returns `(intercept, phi, sigma2)` where the model is
/// `x_t = intercept + Σ φ_i x_{t−i} + ε_t`.
///
/// Returns `None` for degenerate series (constant, or shorter than the
/// order + 1).
pub fn fit_ar_yule_walker(series: &[f64], order: usize) -> Option<(f64, Vec<f64>, f64)> {
    if series.len() <= order || order == 0 {
        if order == 0 && !series.is_empty() {
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / series.len() as f64;
            return Some((mean, Vec::new(), var));
        }
        return None;
    }
    let autocov = autocovariance(series, order);
    if autocov[0] < 1e-12 {
        // (Nearly) constant series: the mean predicts perfectly.
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        return Some((mean, vec![0.0; order], 0.0));
    }
    let (phi, sigma2) = levinson_durbin(&autocov, order)?;
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let intercept = mean * (1.0 - phi.iter().sum::<f64>());
    Some((intercept, phi, sigma2))
}

/// Computes the innovation (residual) sequence of an AR model over `series`:
/// `ε_t = x_t − c − Σ φ_i x_{t−i}` for `t ≥ order`. The first `order`
/// residuals are set to zero (standard Hannan–Rissanen initialisation).
pub fn ar_residuals(series: &[f64], intercept: f64, phi: &[f64]) -> Vec<f64> {
    let order = phi.len();
    let mut res = vec![0.0; series.len()];
    for t in order..series.len() {
        let mut pred = intercept;
        for (i, &p) in phi.iter().enumerate() {
            pred += p * series[t - 1 - i];
        }
        res[t] = series[t] - pred;
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::DetRng;

    /// Simulates an AR(p) process with standard-normal innovations.
    fn simulate_ar(phi: &[f64], intercept: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::seed_from(seed);
        let mut xs = vec![0.0; n + 200];
        for t in phi.len()..xs.len() {
            let mut x = intercept + rng.standard_normal();
            for (i, &p) in phi.iter().enumerate() {
                x += p * xs[t - 1 - i];
            }
            xs[t] = x;
        }
        xs.split_off(200) // discard burn-in
    }

    #[test]
    fn autocov_lag0_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let g = autocovariance(&xs, 2);
        let mean = 2.5;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 4.0;
        assert!((g[0] - var).abs() < 1e-12);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn autocov_of_white_noise_decays() {
        let mut rng = DetRng::seed_from(3);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.standard_normal()).collect();
        let g = autocovariance(&xs, 3);
        assert!((g[0] - 1.0).abs() < 0.05);
        assert!(g[1].abs() < 0.03);
        assert!(g[2].abs() < 0.03);
    }

    #[test]
    fn levinson_recovers_ar1() {
        let xs = simulate_ar(&[0.7], 0.0, 50_000, 11);
        let (_, phi, sigma2) = fit_ar_yule_walker(&xs, 1).unwrap();
        assert!((phi[0] - 0.7).abs() < 0.02, "phi={phi:?}");
        assert!((sigma2 - 1.0).abs() < 0.05, "sigma2={sigma2}");
    }

    #[test]
    fn levinson_recovers_ar2() {
        let xs = simulate_ar(&[0.5, -0.3], 0.0, 50_000, 12);
        let (_, phi, _) = fit_ar_yule_walker(&xs, 2).unwrap();
        assert!((phi[0] - 0.5).abs() < 0.02, "phi={phi:?}");
        assert!((phi[1] + 0.3).abs() < 0.02, "phi={phi:?}");
    }

    #[test]
    fn intercept_recovers_process_mean() {
        // x_t = c + 0.5 x_{t-1} + ε, mean = c / (1 - 0.5) = 10.
        let xs = simulate_ar(&[0.5], 5.0, 50_000, 13);
        let (c, phi, _) = fit_ar_yule_walker(&xs, 1).unwrap();
        let implied_mean = c / (1.0 - phi[0]);
        assert!((implied_mean - 10.0).abs() < 0.3, "mean={implied_mean}");
    }

    #[test]
    fn order_zero_returns_mean_model() {
        let (c, phi, sigma2) = fit_ar_yule_walker(&[2.0, 4.0, 6.0], 0).unwrap();
        assert_eq!(c, 4.0);
        assert!(phi.is_empty());
        assert!(sigma2 > 0.0);
    }

    #[test]
    fn constant_series_is_handled() {
        let xs = vec![5.0; 100];
        let (c, phi, sigma2) = fit_ar_yule_walker(&xs, 3).unwrap();
        assert_eq!(c, 5.0);
        assert!(phi.iter().all(|&p| p == 0.0));
        assert_eq!(sigma2, 0.0);
    }

    #[test]
    fn too_short_series_returns_none() {
        assert!(fit_ar_yule_walker(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn residuals_of_exact_ar_are_zero() {
        // x_t = 2 + 0.5 x_{t-1}, no noise.
        let mut xs = vec![4.0];
        for _ in 0..50 {
            let next = 2.0 + 0.5 * xs.last().unwrap();
            xs.push(next);
        }
        let res = ar_residuals(&xs, 2.0, &[0.5]);
        assert!(res.iter().skip(1).all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn residual_variance_matches_innovations() {
        let xs = simulate_ar(&[0.6], 0.0, 30_000, 14);
        let (c, phi, _) = fit_ar_yule_walker(&xs, 1).unwrap();
        let res = ar_residuals(&xs, c, &phi);
        let var = res[1..].iter().map(|r| r * r).sum::<f64>() / (res.len() - 1) as f64;
        assert!((var - 1.0).abs() < 0.05, "residual var = {var}");
    }
}
