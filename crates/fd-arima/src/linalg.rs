//! Small dense linear algebra for the estimation routines.
//!
//! The systems solved here are tiny (order `p + q + 1 ≤ ~25`), so plain
//! Gaussian elimination with partial pivoting and a ridge-regularised
//! normal-equation least squares are entirely adequate.

// Index-based loops mirror the textbook elimination formulas; iterator
// rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

/// Solves `A·x = b` in place by Gaussian elimination with partial pivoting.
///
/// Returns `None` if the matrix is (numerically) singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b`'s length does not match.
pub fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert_eq!(b.len(), n, "dimension mismatch");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix is not square");
    }

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("NaN in linear system")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Ordinary least squares `min ‖X·β − y‖²` via ridge-regularised normal
/// equations (`XᵀX + λI`), robust to collinear regressors.
///
/// `rows` are the regressor rows of `X`; every row must have the same length.
/// Returns `None` when there are no rows or the system cannot be solved.
///
/// # Panics
///
/// Panics if row lengths are inconsistent or `y` does not match `rows`.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64], ridge: f64) -> Option<Vec<f64>> {
    let m = rows.len();
    if m == 0 {
        return None;
    }
    assert_eq!(y.len(), m, "y length mismatch");
    let k = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), k, "inconsistent row length");
    }
    if k == 0 {
        return Some(Vec::new());
    }

    // Normal equations: (XᵀX + λI) β = Xᵀ y.
    let mut xtx = vec![vec![0.0; k]; k];
    let mut xty = vec![0.0; k];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..k {
            xty[i] += row[i] * yi;
            for j in i..k {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += ridge;
    }
    solve_linear(&mut xtx, &mut xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut b = vec![3.0, -4.0];
        assert_eq!(solve_linear(&mut a, &mut b).unwrap(), vec![3.0, -4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let mut a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let mut b = vec![5.0, 1.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot would be zero without row swap.
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear(&mut a, &mut b).is_none());
    }

    #[test]
    fn three_by_three() {
        let mut a = vec![
            vec![3.0, 2.0, -1.0],
            vec![2.0, -2.0, 4.0],
            vec![-1.0, 0.5, -1.0],
        ];
        let mut b = vec![1.0, -2.0, 0.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] + 2.0).abs() < 1e-9);
        assert!((x[2] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 2 + 3x, exactly.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let beta = least_squares(&rows, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 1 + 0.5x with alternating ±0.1 noise: OLS averages it out.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| 1.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let beta = least_squares(&rows, &y, 0.0).unwrap();
        assert!((beta[0] - 1.0).abs() < 0.05, "intercept={}", beta[0]);
        assert!((beta[1] - 0.5).abs() < 0.001, "slope={}", beta[1]);
    }

    #[test]
    fn ridge_handles_collinearity() {
        // Second regressor is an exact copy of the first: the unregularised
        // normal equations are singular; ridge resolves it.
        let rows: Vec<Vec<f64>> = (1..20).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (1..20).map(|i| 2.0 * i as f64).collect();
        assert!(least_squares(&rows, &y, 0.0).is_none());
        let beta = least_squares(&rows, &y, 1e-6).unwrap();
        // Ridge splits the weight across the duplicated columns.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3, "{beta:?}");
    }

    #[test]
    fn empty_inputs() {
        assert!(least_squares(&[], &[], 0.0).is_none());
        let beta = least_squares(&[vec![], vec![]], &[1.0, 2.0], 0.0).unwrap();
        assert!(beta.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For random well-conditioned diagonally-dominant systems, the
        /// residual of the returned solution is tiny.
        #[test]
        fn solution_satisfies_system(
            seedvals in proptest::collection::vec(-5.0f64..5.0, 9),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            let mut a: Vec<Vec<f64>> = (0..3)
                .map(|i| (0..3).map(|j| seedvals[i * 3 + j]).collect())
                .collect();
            // Make diagonally dominant to guarantee solvability.
            for i in 0..3 {
                let row_sum: f64 = a[i].iter().map(|v| v.abs()).sum();
                a[i][i] = row_sum + 1.0;
            }
            let a_copy = a.clone();
            let mut b_copy = b.clone();
            let x = solve_linear(&mut a, &mut b_copy).expect("dominant system solvable");
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a_copy[i][j] * x[j]).sum();
                prop_assert!((lhs - b[i]).abs() < 1e-6, "row {i}: {lhs} vs {}", b[i]);
            }
        }
    }
}
