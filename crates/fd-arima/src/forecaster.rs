//! Streaming ARIMA forecasting with periodic refit.
//!
//! The paper re-estimates the ARIMA(2,1,1) coefficients every
//! `N_Arima = 1000` observations "so the model can adapt to the variable
//! condition of the network". [`OnlineArima`] reproduces exactly that usage:
//! observe a delay, predict the next one, refit every `refit_every`
//! observations on a sliding window.

use crate::model::{ArimaModel, ArimaSpec, ArimaState};

/// Default sliding-window multiplier: the fit window holds up to
/// `WINDOW_FACTOR × refit_every` recent observations.
const WINDOW_FACTOR: usize = 8;

/// A streaming one-step ARIMA forecaster with periodic refitting.
///
/// Until the first successful fit, [`OnlineArima::predict_next`] falls back
/// to the last observed value (the `LAST` predictor), which is also the
/// paper's natural cold-start behaviour.
#[derive(Debug, Clone)]
pub struct OnlineArima {
    refit_every: u32,
    max_window: u32,
    window: Vec<f64>,
    /// Boxed: a fitted model is ~90 B of coefficients, but most forecasters
    /// in a million-source monitor never reach their first fit — the
    /// indirection keeps the unfitted forecaster small.
    model: Option<Box<ArimaModel>>,
    state: ArimaState,
    observed: u64,
    refits: u32,
    failed_fits: u32,
}

impl OnlineArima {
    /// Creates a forecaster for `spec`, refitting every `refit_every`
    /// observations.
    ///
    /// # Panics
    ///
    /// Panics if `refit_every` is zero or does not fit in `u32`.
    pub fn new(spec: ArimaSpec, refit_every: usize) -> Self {
        assert!(refit_every > 0, "refit_every must be positive");
        let refit_every = u32::try_from(refit_every).expect("refit_every fits u32");
        let max_window = (WINDOW_FACTOR * refit_every as usize).max(spec.min_series_len());
        Self {
            refit_every,
            max_window: u32::try_from(max_window).expect("fit window fits u32"),
            window: Vec::new(),
            model: None,
            state: ArimaState::new(spec),
            observed: 0,
            refits: 0,
            failed_fits: 0,
        }
    }

    /// The model order (held by the streaming state; not duplicated here).
    pub fn spec(&self) -> ArimaSpec {
        self.state.spec()
    }

    /// Observations consumed so far.
    pub fn observed(&self) -> usize {
        self.observed as usize
    }

    /// Successful refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits as usize
    }

    /// Fit attempts that failed (model kept from before).
    pub fn failed_fits(&self) -> usize {
        self.failed_fits as usize
    }

    /// The current fitted model, if any.
    pub fn model(&self) -> Option<&ArimaModel> {
        self.model.as_deref()
    }

    /// Consumes one observation.
    pub fn observe(&mut self, value: f64) {
        let max_window = self.max_window as usize;
        if self.window.len() == max_window {
            self.window.remove(0);
        } else if self.window.len() == self.window.capacity() {
            // Grow in measured steps instead of `push`'s doubling: a cold
            // forecaster (a handful of observations) keeps a right-sized
            // buffer instead of rounding up to the next power of two. The
            // small +2 steps after the initial ramp matter at monitor scale:
            // a short run parks most windows at 10 slots (one 80-byte
            // allocation per source) rather than overshooting to 12.
            let cap = self.window.capacity();
            let grow = if cap < 8 {
                4
            } else if cap < 16 {
                2
            } else {
                cap / 2
            }
            .min(max_window - cap);
            self.window.reserve_exact(grow);
        }
        self.window.push(value);
        self.observed += 1;

        // (Re)fit on schedule, and as soon as the window first becomes
        // large enough. "Large enough" is more than the bare algebraic
        // minimum: coefficient estimates from a few dozen points are
        // unstable enough to be worse than the LAST fallback.
        let refit_every = self.refit_every as u64;
        let spec = self.state.spec();
        let first_fit_at = spec
            .min_series_len()
            .max((self.refit_every as usize).min(300));
        let due = self.observed.is_multiple_of(refit_every)
            || (self.model.is_none() && self.window.len() == first_fit_at);
        if due && self.window.len() >= first_fit_at {
            match ArimaModel::fit(&self.window, spec) {
                Ok(m) => {
                    self.model = Some(Box::new(m));
                    self.refits += 1;
                }
                Err(_) => self.failed_fits += 1,
            }
        }

        self.state.observe(value, self.model.as_deref());
    }

    /// The one-step forecast of the next observation.
    ///
    /// Falls back to the last observation before the first fit, and to 0.0
    /// if nothing has been observed at all.
    pub fn predict_next(&self) -> f64 {
        self.state
            .predict_next(self.model.as_deref())
            .unwrap_or(0.0)
    }

    /// Captures the complete streaming state as plain data.
    ///
    /// Restoring via [`OnlineArima::from_snapshot`] is bit-exact: the
    /// restored forecaster consumes further observations and produces
    /// forecasts identical to the original, including refit schedules.
    pub fn snapshot(&self) -> ArimaSnapshot {
        let (diff_recent, recent_z, recent_innov, pending_diff_forecast, last_level) =
            self.state.raw_parts();
        ArimaSnapshot {
            spec: self.state.spec(),
            refit_every: self.refit_every as usize,
            window: self.window.clone(),
            model: self.model.as_deref().map(|m| {
                (
                    m.intercept(),
                    m.phi().to_vec(),
                    m.psi().to_vec(),
                    m.sigma2(),
                )
            }),
            diff_recent,
            recent_z,
            recent_innov,
            pending_diff_forecast,
            last_level,
            observed: self.observed as usize,
            refits: self.refits as usize,
            failed_fits: self.failed_fits as usize,
        }
    }

    /// Rebuilds a forecaster from a snapshot.
    ///
    /// Returns `None` if the snapshot is internally inconsistent (zero
    /// refit interval, oversized fit window, coefficient/order mismatch, or
    /// histories longer than the spec allows).
    pub fn from_snapshot(s: ArimaSnapshot) -> Option<OnlineArima> {
        let refit_every = u32::try_from(s.refit_every).ok()?;
        if refit_every == 0 {
            return None;
        }
        let max_window = (WINDOW_FACTOR * s.refit_every).max(s.spec.min_series_len());
        if s.window.len() > max_window {
            return None;
        }
        let model = match s.model {
            Some((intercept, phi, psi, sigma2)) => Some(Box::new(ArimaModel::from_parts(
                s.spec, intercept, phi, psi, sigma2,
            )?)),
            None => None,
        };
        let state = ArimaState::from_raw_parts(
            s.spec,
            s.diff_recent,
            s.recent_z,
            s.recent_innov,
            s.pending_diff_forecast,
            s.last_level,
        )?;
        Some(OnlineArima {
            refit_every,
            max_window: u32::try_from(max_window).ok()?,
            window: s.window,
            model,
            state,
            observed: s.observed as u64,
            refits: s.refits as u32,
            failed_fits: s.failed_fits as u32,
        })
    }
}

/// A plain-data image of an [`OnlineArima`]'s complete streaming state,
/// produced by [`OnlineArima::snapshot`].
///
/// Every field is public so callers (the detector-bank checkpoint codec)
/// can serialize it in whatever format they need.
#[derive(Debug, Clone, PartialEq)]
pub struct ArimaSnapshot {
    /// The model order.
    pub spec: ArimaSpec,
    /// Refit interval in observations.
    pub refit_every: usize,
    /// The sliding fit window, oldest first.
    pub window: Vec<f64>,
    /// `(intercept, phi, psi, sigma2)` of the fitted model, if any.
    pub model: Option<(f64, Vec<f64>, Vec<f64>, f64)>,
    /// Levels retained by the streaming differencer (at most `spec.d`).
    pub diff_recent: Vec<f64>,
    /// Recent differenced values, most recent last.
    pub recent_z: Vec<f64>,
    /// Recent innovations, most recent last.
    pub recent_innov: Vec<f64>,
    /// The forecast pending from the last observation, if any.
    pub pending_diff_forecast: Option<f64>,
    /// The last observed level, if any.
    pub last_level: Option<f64>,
    /// Observations consumed so far.
    pub observed: usize,
    /// Successful refits so far.
    pub refits: usize,
    /// Failed fit attempts so far.
    pub failed_fits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::DetRng;

    #[test]
    fn cold_start_predicts_last() {
        let mut f = OnlineArima::new(ArimaSpec::new(2, 1, 1), 1000);
        assert_eq!(f.predict_next(), 0.0);
        f.observe(42.0);
        assert_eq!(f.predict_next(), 42.0);
        f.observe(50.0);
        assert_eq!(f.predict_next(), 50.0);
    }

    #[test]
    fn refits_happen_on_schedule() {
        let mut f = OnlineArima::new(ArimaSpec::new(1, 0, 0), 100);
        let mut rng = DetRng::seed_from(31);
        for _ in 0..500 {
            f.observe(10.0 + rng.standard_normal());
        }
        // First fit as soon as min_series_len is reached, then every 100.
        assert!(f.refits() >= 4, "refits={}", f.refits());
        assert!(f.model().is_some());
        assert_eq!(f.observed(), 500);
    }

    #[test]
    fn tracks_ar1_process_better_than_naive() {
        let mut rng = DetRng::seed_from(32);
        let mut xs = vec![0.0];
        for _ in 0..6_000 {
            let next = 0.8 * xs.last().unwrap() + rng.standard_normal();
            xs.push(next);
        }
        let mut f = OnlineArima::new(ArimaSpec::new(1, 0, 0), 500);
        let mut model_err = 0.0;
        let mut naive_err = 0.0;
        let mut n = 0u32;
        for (t, &x) in xs.iter().enumerate() {
            if t > 1_000 {
                let pred = f.predict_next();
                model_err += (x - pred) * (x - pred);
                naive_err += (x - xs[t - 1]) * (x - xs[t - 1]);
                n += 1;
            }
            f.observe(x);
        }
        assert!(n > 0);
        // Optimal/naive msqerr ratio for AR(1) φ = 0.8 is 1/(2(1−φ)) ≈ 0.9.
        assert!(
            model_err < 0.95 * naive_err,
            "model={model_err}, naive={naive_err}"
        );
    }

    #[test]
    fn adapts_after_level_shift() {
        // Constant 100, then constant 200: after refit the forecasts follow.
        let mut f = OnlineArima::new(ArimaSpec::new(0, 1, 1), 200);
        let mut rng = DetRng::seed_from(33);
        for _ in 0..600 {
            f.observe(100.0 + 0.1 * rng.standard_normal());
        }
        for _ in 0..600 {
            f.observe(200.0 + 0.1 * rng.standard_normal());
        }
        let pred = f.predict_next();
        assert!((pred - 200.0).abs() < 5.0, "pred={pred}");
    }

    #[test]
    fn window_is_bounded() {
        let mut f = OnlineArima::new(ArimaSpec::new(1, 0, 0), 50);
        for i in 0..10_000 {
            f.observe(i as f64 % 17.0);
        }
        assert!(f.window.len() <= f.max_window as usize);
        assert_eq!(f.observed(), 10_000);
    }

    #[test]
    fn predictions_stay_finite_on_constant_series() {
        // A constant series makes most estimators degenerate; the forecaster
        // must keep producing finite, sensible predictions regardless.
        let mut f = OnlineArima::new(ArimaSpec::new(2, 1, 1), 100);
        for _ in 0..1_000 {
            f.observe(250.0);
        }
        let p = f.predict_next();
        assert!(p.is_finite());
        assert!((p - 250.0).abs() < 1.0, "pred={p}");
    }

    #[test]
    #[should_panic(expected = "refit_every must be positive")]
    fn zero_refit_rejected() {
        let _ = OnlineArima::new(ArimaSpec::new(1, 0, 0), 0);
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact() {
        let mut rng = DetRng::seed_from(47);
        let mut f = OnlineArima::new(ArimaSpec::new(2, 1, 1), 300);
        for _ in 0..900 {
            f.observe(120.0 + 15.0 * rng.standard_normal());
        }
        assert!(f.model().is_some(), "fit should have happened");
        let mut restored = OnlineArima::from_snapshot(f.snapshot()).unwrap();
        // Identical inputs after restore must give bit-identical forecasts,
        // including through the next scheduled refit.
        for _ in 0..700 {
            let x = 120.0 + 15.0 * rng.standard_normal();
            f.observe(x);
            restored.observe(x);
            assert_eq!(
                f.predict_next().to_bits(),
                restored.predict_next().to_bits()
            );
        }
        assert_eq!(f.refits(), restored.refits());
        assert_eq!(f.observed(), restored.observed());
    }

    #[test]
    fn snapshot_rejects_inconsistent_state() {
        let f = OnlineArima::new(ArimaSpec::new(1, 0, 0), 100);
        let mut s = f.snapshot();
        s.refit_every = 0;
        assert!(OnlineArima::from_snapshot(s).is_none());
        let mut s = f.snapshot();
        s.model = Some((0.0, vec![0.5, 0.1], Vec::new(), 1.0)); // phi order mismatch
        assert!(OnlineArima::from_snapshot(s).is_none());
        let mut s = f.snapshot();
        s.recent_z = vec![0.0; 50]; // longer than p.max(1)
        assert!(OnlineArima::from_snapshot(s).is_none());
    }
}
