//! ARIMA model fitting (Hannan–Rissanen) and one-step forecasting.
//!
//! The model is parameterised in regression form on the `d`-differenced
//! series `z_t`:
//!
//! ```text
//! z_t = c + Σ_{i=1..p} φ_i · z_{t−i} + Σ_{j=1..q} ψ_j · a_{t−j} + a_t
//! ```
//!
//! where `a_t` are the innovations. (`ψ_j = −θ_j` in the Box–Jenkins
//! `Θ_q(B)` sign convention used by the paper.)
//!
//! Fitting uses the Hannan–Rissanen two-stage procedure: a long AR fit via
//! Levinson–Durbin produces innovation estimates, then ordinary least squares
//! regresses `z_t` on lagged values and lagged innovations. This is the
//! standard fast, dependency-free ARMA estimator and is accurate for the
//! short-memory, low-order models used here.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ar::{ar_residuals, fit_ar_yule_walker};
use crate::diff::{diff_step, difference};
use crate::linalg::least_squares;

/// The order triple `(p, d, q)` of an ARIMA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaSpec {
    /// Creates an order specification.
    pub const fn new(p: usize, d: usize, q: usize) -> Self {
        Self { p, d, q }
    }

    /// The minimum series length [`ArimaModel::fit`] accepts for this spec.
    pub fn min_series_len(&self) -> usize {
        // After differencing we need the long-AR warm-up plus enough
        // regression rows to overdetermine p + q + 1 parameters.
        self.d + self.long_ar_order() + 4 * (self.p + self.q + 1) + 8
    }

    /// Order of the stage-1 long AR model. Generous, because a
    /// near-noninvertible MA root (the common case for smoothed network
    /// delays, where the optimal EWMA gain is small) needs a long AR to
    /// approximate.
    pub(crate) fn long_ar_order(&self) -> usize {
        (2 * (self.p + self.q) + 16).max(20)
    }
}

impl fmt::Display for ArimaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Errors from [`ArimaModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArimaError {
    /// The series is shorter than [`ArimaSpec::min_series_len`].
    TooShort {
        /// Observations required.
        needed: usize,
        /// Observations supplied.
        got: usize,
    },
    /// The estimation system was singular and could not be regularised.
    Singular,
}

impl fmt::Display for ArimaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArimaError::TooShort { needed, got } => {
                write!(f, "series too short: need {needed} observations, got {got}")
            }
            ArimaError::Singular => write!(f, "estimation system is singular"),
        }
    }
}

impl std::error::Error for ArimaError {}

/// A fitted ARIMA model.
///
/// ```
/// use fd_arima::{ArimaModel, ArimaSpec};
/// // A noisy trend: d = 1 captures it.
/// let series: Vec<f64> = (0..300)
///     .map(|i| i as f64 * 0.5 + if i % 2 == 0 { 0.3 } else { -0.3 })
///     .collect();
/// let model = ArimaModel::fit(&series, ArimaSpec::new(0, 1, 1)).unwrap();
/// let forecasts = model.one_step_forecasts(&series);
/// let err = (series[250] - forecasts[250]).abs();
/// assert!(err < 1.5, "one-step error {err}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArimaModel {
    spec: ArimaSpec,
    intercept: f64,
    phi: Vec<f64>,
    psi: Vec<f64>,
    sigma2: f64,
}

impl ArimaModel {
    /// Fits the model to a level series by Hannan–Rissanen.
    ///
    /// # Errors
    ///
    /// * [`ArimaError::TooShort`] if the series has fewer than
    ///   [`ArimaSpec::min_series_len`] observations;
    /// * [`ArimaError::Singular`] if the regression cannot be solved even
    ///   with ridge regularisation (e.g. an exactly constant series with
    ///   `q > 0`).
    pub fn fit(series: &[f64], spec: ArimaSpec) -> Result<ArimaModel, ArimaError> {
        let needed = spec.min_series_len();
        if series.len() < needed {
            return Err(ArimaError::TooShort {
                needed,
                got: series.len(),
            });
        }
        let z = difference(series, spec.d);

        if spec.p == 0 && spec.q == 0 {
            let mean = z.iter().sum::<f64>() / z.len() as f64;
            let sigma2 = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64;
            return Ok(ArimaModel {
                spec,
                intercept: mean,
                phi: Vec::new(),
                psi: Vec::new(),
                sigma2,
            });
        }

        // Stage 1: long AR for innovation estimates.
        let m = spec.long_ar_order().min(z.len() / 4);
        let (c_ar, phi_ar, _) = fit_ar_yule_walker(&z, m).ok_or(ArimaError::Singular)?;
        let innovations = ar_residuals(&z, c_ar, &phi_ar);

        // Stage 2: OLS of z_t on [1, z_{t-1..t-p}, a_{t-1..t-q}].
        // Stage 3 (one refinement pass): recompute the innovations from the
        // stage-2 ARMA recursion and re-solve — this removes most of the
        // stage-2 bias when the MA root is close to the unit circle.
        let start = m.max(spec.p).max(spec.q);
        let mut innov = innovations;
        let mut fitted: Option<(Vec<f64>, f64)> = None; // (beta, sigma2)
        for _pass in 0..2 {
            let mut rows = Vec::with_capacity(z.len() - start);
            let mut targets = Vec::with_capacity(z.len() - start);
            for t in start..z.len() {
                let mut row = Vec::with_capacity(1 + spec.p + spec.q);
                row.push(1.0);
                for i in 1..=spec.p {
                    row.push(z[t - i]);
                }
                for j in 1..=spec.q {
                    row.push(innov[t - j]);
                }
                rows.push(row);
                targets.push(z[t]);
            }
            let beta = least_squares(&rows, &targets, 1e-8).ok_or(ArimaError::Singular)?;
            if beta.iter().any(|b| !b.is_finite()) {
                return Err(ArimaError::Singular);
            }
            let mut sse = 0.0;
            for (row, &target) in rows.iter().zip(&targets) {
                let pred: f64 = row.iter().zip(&beta).map(|(x, b)| x * b).sum();
                sse += (target - pred) * (target - pred);
            }
            let sigma2 = sse / rows.len() as f64;

            // Recompute innovations with the new coefficients for the next
            // pass (and as a stability check: a divergent recursion means a
            // non-invertible fit — keep the previous pass in that case).
            let mut next = vec![0.0; z.len()];
            let mut diverged = false;
            for t in spec.p.max(spec.q)..z.len() {
                let mut pred = beta[0];
                for i in 1..=spec.p {
                    pred += beta[i] * z[t - i];
                }
                for j in 1..=spec.q {
                    pred += beta[spec.p + j] * next[t - j];
                }
                next[t] = z[t] - pred;
                if !next[t].is_finite() || next[t].abs() > 1e9 {
                    diverged = true;
                    break;
                }
            }
            if diverged {
                // Non-invertible fit: its innovation recursion explodes, so
                // it cannot be used for streaming forecasts. Keep the
                // previous stable pass if any; otherwise start the CSS
                // polish from a neutral white-noise model.
                break;
            }
            fitted = Some((beta, sigma2));
            innov = next;
        }

        let beta = match fitted {
            Some((beta, _)) => beta,
            None => {
                let mut neutral = vec![0.0; 1 + spec.p + spec.q];
                neutral[0] = z.iter().sum::<f64>() / z.len() as f64;
                neutral
            }
        };

        // Stage 4: conditional-sum-of-squares refinement. Hannan–Rissanen is
        // biased when an MA root sits near the unit circle — exactly the
        // regime of differenced, noise-dominated delay series — so polish
        // the coefficients by coordinate descent on the one-step SSE.
        // Multi-start: besides the HR estimate, seed from a few canonical
        // exponential-smoothing gains, which are the classic local optima
        // for differenced level series; keep the best refined candidate.
        let z_mean = z.iter().sum::<f64>() / z.len() as f64;
        let mut starts = vec![beta];
        if spec.q >= 1 {
            for psi1 in [-0.6, -0.875, -0.95] {
                let mut seed = vec![0.0; 1 + spec.p + spec.q];
                seed[0] = z_mean;
                seed[1 + spec.p] = psi1;
                starts.push(seed);
            }
        }
        let beta = starts
            .into_iter()
            .map(|s| css_refine(&z, spec, s))
            .min_by(|a, b| {
                let sa = recursion_sse(&z, spec, a).unwrap_or(f64::INFINITY);
                let sb = recursion_sse(&z, spec, b).unwrap_or(f64::INFINITY);
                sa.partial_cmp(&sb).expect("finite or INF SSE")
            })
            .expect("at least one start");
        let sigma2 = recursion_sse(&z, spec, &beta)
            .map(|sse| sse / (z.len() - spec.p.max(spec.q)) as f64)
            .unwrap_or(f64::INFINITY);
        if !sigma2.is_finite() || !ma_invertible(&beta[1 + spec.p..]) {
            return Err(ArimaError::Singular);
        }

        let intercept = beta[0];
        let phi = beta[1..=spec.p].to_vec();
        let psi = beta[1 + spec.p..].to_vec();

        Ok(ArimaModel {
            spec,
            intercept,
            phi,
            psi,
            sigma2,
        })
    }

    /// Rebuilds a fitted model from coefficients captured via the getters.
    ///
    /// Returns `None` if the coefficient vectors do not match the spec's
    /// orders (`phi.len() != p` or `psi.len() != q`). No invertibility or
    /// stationarity check is re-run: the parts are trusted to come from a
    /// previously fitted model, so restore is bit-exact.
    pub fn from_parts(
        spec: ArimaSpec,
        intercept: f64,
        phi: Vec<f64>,
        psi: Vec<f64>,
        sigma2: f64,
    ) -> Option<ArimaModel> {
        (phi.len() == spec.p && psi.len() == spec.q).then_some(ArimaModel {
            spec,
            intercept,
            phi,
            psi,
            sigma2,
        })
    }

    /// The order specification of this model.
    pub fn spec(&self) -> ArimaSpec {
        self.spec
    }

    /// The intercept `c`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The AR coefficients `φ_1..φ_p`.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// The MA coefficients `ψ_1..ψ_q` (regression sign convention).
    pub fn psi(&self) -> &[f64] {
        &self.psi
    }

    /// The estimated innovation variance.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// One-step forecast on the *differenced* scale given recent differenced
    /// values and recent innovations, both most-recent-last.
    ///
    /// Returns `None` if the histories are shorter than `p`/`q`.
    pub fn forecast_diff(&self, recent_z: &[f64], recent_innov: &[f64]) -> Option<f64> {
        if recent_z.len() < self.spec.p || recent_innov.len() < self.spec.q {
            return None;
        }
        let mut acc = self.intercept;
        for (i, &p) in self.phi.iter().enumerate() {
            acc += p * recent_z[recent_z.len() - 1 - i];
        }
        for (j, &m) in self.psi.iter().enumerate() {
            acc += m * recent_innov[recent_innov.len() - 1 - j];
        }
        acc.is_finite().then_some(acc)
    }

    /// Runs the model over a level series producing one-step-ahead forecasts
    /// on the level scale.
    ///
    /// `out[t]` is the forecast of `series[t]` made from information up to
    /// `t − 1`. During warm-up (before differencing/lag histories fill) the
    /// forecast falls back to the previous level (`out[0] = series[0]`).
    pub fn one_step_forecasts(&self, series: &[f64]) -> Vec<f64> {
        let mut state = ArimaState::new(self.spec);
        let mut out = Vec::with_capacity(series.len());
        for &x in series {
            out.push(state.predict_next(Some(self)).unwrap_or(x));
            state.observe(x, Some(self));
        }
        out
    }
}

/// `true` if the MA polynomial `1 + ψ₁B + … + ψ_qB^q` is (numerically)
/// invertible: the impulse response of its inverse must not grow. A short
/// in-sample recursion cannot detect marginally explosive roots, so this is
/// checked over a long horizon regardless of the fit window's length.
fn ma_invertible(psi: &[f64]) -> bool {
    let q = psi.len();
    if q == 0 {
        return true;
    }
    // h_t = −Σ_j ψ_j·h_{t−j}, h_0 = 1: the inverse filter's impulse response.
    let mut hist = vec![0.0; q];
    hist[q - 1] = 1.0; // h_0, most recent last
    for _ in 1..2_000 {
        let mut h = 0.0;
        for j in 1..=q {
            h -= psi[j - 1] * hist[q - j];
        }
        if !h.is_finite() || h.abs() > 50.0 {
            return false;
        }
        hist.rotate_left(1);
        hist[q - 1] = h;
    }
    true
}

/// One-step conditional sum of squares of an ARMA parameter vector
/// `beta = [c, φ…, ψ…]` over the differenced series, or `None` if the
/// innovation recursion diverges (non-invertible parameters).
fn recursion_sse(z: &[f64], spec: ArimaSpec, beta: &[f64]) -> Option<f64> {
    let start = spec.p.max(spec.q);
    let mut innov = vec![0.0; z.len()];
    let mut sse = 0.0;
    for t in start..z.len() {
        let mut pred = beta[0];
        for i in 1..=spec.p {
            pred += beta[i] * z[t - i];
        }
        for j in 1..=spec.q {
            pred += beta[spec.p + j] * innov[t - j];
        }
        let e = z[t] - pred;
        if !e.is_finite() || e.abs() > 1e9 {
            return None;
        }
        innov[t] = e;
        sse += e * e;
    }
    sse.is_finite().then_some(sse)
}

/// Coordinate-descent CSS polish of an ARMA parameter vector, starting from
/// the Hannan–Rissanen estimate. Keeps whatever it cannot improve.
fn css_refine(z: &[f64], spec: ArimaSpec, start_beta: Vec<f64>) -> Vec<f64> {
    let mut best = start_beta;
    let Some(mut best_sse) = recursion_sse(z, spec, &best) else {
        return best;
    };
    let mut steps: Vec<f64> = best.iter().map(|b| b.abs() * 0.1 + 0.02).collect();
    for _sweep in 0..25 {
        let mut improved = false;
        for i in 0..best.len() {
            for dir in [1.0, -1.0] {
                let mut cand = best.clone();
                cand[i] += dir * steps[i];
                if !ma_invertible(&cand[1 + spec.p..]) {
                    continue;
                }
                if let Some(sse) = recursion_sse(z, spec, &cand) {
                    if sse < best_sse {
                        best_sse = sse;
                        best = cand;
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            for s in &mut steps {
                *s *= 0.5;
            }
            if steps.iter().all(|&s| s < 1e-5) {
                break;
            }
        }
    }
    best
}

/// Lag histories of a streaming forecast recursion. The paper's orders are
/// tiny (`p, q ≤ 4`, `d ≤ 2`), so the common case stores every history
/// inline — a monitor tracking a million sources pays zero heap allocations
/// per forecaster. Exotic orders spill to heap deques with identical
/// semantics.
///
/// All histories are most recent **last**; `z`/`innov` are FIFO rings
/// trimmed to `p.max(1)` / `q.max(1)` lags, `diff` holds the last `d`
/// levels for the streaming differencer.
#[derive(Debug, Clone)]
enum LagStore {
    Inline {
        z: [f64; 4],
        innov: [f64; 4],
        diff: [f64; 2],
        z_len: u8,
        innov_len: u8,
        diff_len: u8,
    },
    Heap(Box<HeapLags>),
}

/// Heap spill for exotic orders. Boxed so the enum is sized by the inline
/// arm (the only one a paper-grid monitor ever instantiates) instead of the
/// three-deque spill nobody allocates.
#[derive(Debug, Clone)]
struct HeapLags {
    z: VecDeque<f64>,
    innov: VecDeque<f64>,
    diff: Vec<f64>,
}

impl LagStore {
    const INLINE_LAGS: usize = 4;
    const INLINE_DIFF: usize = 2;

    fn new(spec: ArimaSpec) -> Self {
        if spec.p.max(1) <= Self::INLINE_LAGS
            && spec.q.max(1) <= Self::INLINE_LAGS
            && spec.d <= Self::INLINE_DIFF
        {
            LagStore::Inline {
                z: [0.0; 4],
                innov: [0.0; 4],
                diff: [0.0; 2],
                z_len: 0,
                innov_len: 0,
                diff_len: 0,
            }
        } else {
            LagStore::Heap(Box::new(HeapLags {
                z: VecDeque::with_capacity(spec.p + 1),
                innov: VecDeque::with_capacity(spec.q + 1),
                diff: Vec::with_capacity(spec.d),
            }))
        }
    }

    /// Streaming difference: push a level, get the `d`-differenced value
    /// once `d` previous levels exist. Same arithmetic as
    /// [`Differencer::push`] (shared via `diff_step`).
    fn push_level(&mut self, d: usize, level: f64) -> Option<f64> {
        if d == 0 {
            return Some(level);
        }
        match self {
            LagStore::Inline { diff, diff_len, .. } => {
                let len = *diff_len as usize;
                if len < d {
                    diff[len] = level;
                    *diff_len += 1;
                    return None;
                }
                let z = diff_step(d, &diff[..d], level);
                diff.copy_within(1..d, 0);
                diff[d - 1] = level;
                Some(z)
            }
            LagStore::Heap(h) => {
                if h.diff.len() < d {
                    h.diff.push(level);
                    return None;
                }
                let z = diff_step(d, &h.diff, level);
                h.diff.remove(0);
                h.diff.push(level);
                Some(z)
            }
        }
    }

    /// Appends to a FIFO history capped at `cap` lags (drops the oldest).
    /// Trimming before the push leaves the same contents as the
    /// push-then-trim a `VecDeque` would do.
    fn push_capped(buf: &mut [f64; 4], len: &mut u8, cap: usize, value: f64) {
        let n = *len as usize;
        if n == cap {
            buf.copy_within(1..n, 0);
            buf[n - 1] = value;
        } else {
            buf[n] = value;
            *len += 1;
        }
    }

    fn push_z(&mut self, cap: usize, value: f64) {
        match self {
            LagStore::Inline { z, z_len, .. } => Self::push_capped(z, z_len, cap, value),
            LagStore::Heap(h) => {
                h.z.push_back(value);
                if h.z.len() > cap {
                    h.z.pop_front();
                }
            }
        }
    }

    fn push_innov(&mut self, cap: usize, value: f64) {
        match self {
            LagStore::Inline {
                innov, innov_len, ..
            } => Self::push_capped(innov, innov_len, cap, value),
            LagStore::Heap(h) => {
                h.innov.push_back(value);
                if h.innov.len() > cap {
                    h.innov.pop_front();
                }
            }
        }
    }

    fn clear_innov(&mut self) {
        match self {
            LagStore::Inline { innov_len, .. } => *innov_len = 0,
            LagStore::Heap(h) => h.innov.clear(),
        }
    }

    fn diff_recent(&self) -> &[f64] {
        match self {
            LagStore::Inline { diff, diff_len, .. } => &diff[..*diff_len as usize],
            LagStore::Heap(h) => &h.diff,
        }
    }

    /// Runs `f` over the contiguous `(recent_z, recent_innov)` views.
    fn with_slices<R>(&self, f: impl FnOnce(&[f64], &[f64]) -> R) -> R {
        match self {
            LagStore::Inline {
                z,
                innov,
                z_len,
                innov_len,
                ..
            } => f(&z[..*z_len as usize], &innov[..*innov_len as usize]),
            LagStore::Heap(h) => {
                // VecDeque slices: make contiguous views without realloc
                // churn on the hot path.
                let (za, zb) = h.z.as_slices();
                let (ia, ib) = h.innov.as_slices();
                let zvec: Vec<f64>;
                let zs: &[f64] = if zb.is_empty() {
                    za
                } else {
                    zvec = h.z.iter().copied().collect();
                    &zvec
                };
                let ivec: Vec<f64>;
                let is: &[f64] = if ib.is_empty() {
                    ia
                } else {
                    ivec = h.innov.iter().copied().collect();
                    &ivec
                };
                f(zs, is)
            }
        }
    }
}

/// Streaming forecast state: tracks the differenced history, innovations and
/// the pending one-step forecast. Shared by [`ArimaModel::one_step_forecasts`]
/// and [`crate::OnlineArima`].
///
/// A monitor tracking a million sources holds one of these per forecaster,
/// so the layout is deliberately compact: the orders live in three bytes
/// (rather than a 24-byte [`ArimaSpec`]) and the two optional `f64`s are
/// flag + value pairs instead of 16-byte `Option<f64>`s. The public API is
/// unchanged — [`ArimaState::spec`] reconstructs the spec on demand.
#[derive(Debug, Clone)]
pub struct ArimaState {
    p: u8,
    d: u8,
    q: u8,
    has_pending: bool,
    has_last: bool,
    lags: LagStore,
    /// Valid only when `has_pending`.
    pending_diff_forecast: f64,
    /// Valid only when `has_last`.
    last_level: f64,
}

fn order_u8(n: usize, what: &str) -> u8 {
    u8::try_from(n).unwrap_or_else(|_| panic!("ARIMA {what} order {n} exceeds 255"))
}

impl ArimaState {
    /// Creates empty state for the given spec.
    ///
    /// # Panics
    ///
    /// Panics if any order exceeds 255 (far beyond any fittable model).
    pub fn new(spec: ArimaSpec) -> Self {
        Self {
            p: order_u8(spec.p, "AR"),
            d: order_u8(spec.d, "differencing"),
            q: order_u8(spec.q, "MA"),
            has_pending: false,
            has_last: false,
            lags: LagStore::new(spec),
            pending_diff_forecast: 0.0,
            last_level: 0.0,
        }
    }

    /// The order specification this state was created for.
    pub fn spec(&self) -> ArimaSpec {
        ArimaSpec::new(
            usize::from(self.p),
            usize::from(self.d),
            usize::from(self.q),
        )
    }

    /// Consumes a new level observation, updating the innovation history
    /// against the forecast previously made by `model`.
    pub fn observe(&mut self, level: f64, model: Option<&ArimaModel>) {
        if let Some(z) = self.lags.push_level(usize::from(self.d), level) {
            let mut innovation = if self.has_pending {
                z - self.pending_diff_forecast
            } else {
                0.0
            };
            // Safety valve: an insane innovation indicates a corrupted model
            // or state; reset the recursion rather than propagate it.
            if !innovation.is_finite() || innovation.abs() > 1e9 {
                self.lags.clear_innov();
                innovation = 0.0;
            }
            self.lags.push_innov(usize::from(self.q).max(1), innovation);
            self.lags.push_z(usize::from(self.p).max(1), z);
        }
        self.last_level = level;
        self.has_last = true;
        let pending = model.and_then(|m| self.lags.with_slices(|zs, is| m.forecast_diff(zs, is)));
        self.has_pending = pending.is_some();
        self.pending_diff_forecast = pending.unwrap_or(0.0);
    }

    /// The one-step level forecast from the current state, or `None` during
    /// warm-up. The caller supplies `model` purely to decide the fallback;
    /// the forecast itself was computed at the last `observe`.
    pub fn predict_next(&self, _model: Option<&ArimaModel>) -> Option<f64> {
        let last = self.has_last.then_some(self.last_level);
        if self.has_pending {
            self.integrate(self.pending_diff_forecast).or(last)
        } else {
            last
        }
    }

    /// Maps a differenced-scale forecast back to the level scale, or `None`
    /// until `d` levels have been observed. Same arithmetic as
    /// [`Differencer::integrate`].
    fn integrate(&self, diff_forecast: f64) -> Option<f64> {
        let d = usize::from(self.d);
        let recent = self.lags.diff_recent();
        if recent.len() < d {
            return None;
        }
        Some(crate::diff::integrate_one_step(diff_forecast, recent, d))
    }

    /// The last observed level, if any.
    pub fn last_level(&self) -> Option<f64> {
        self.has_last.then_some(self.last_level)
    }

    /// The complete streaming state as plain data:
    /// `(diff_recent, recent_z, recent_innov, pending_diff_forecast,
    /// last_level)`, each history most recent last.
    ///
    /// Together with [`ArimaState::from_raw_parts`] this supports bit-exact
    /// checkpoint/restore of a live forecast recursion.
    pub fn raw_parts(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>, Option<f64>, Option<f64>) {
        let (zs, is) = self.lags.with_slices(|zs, is| (zs.to_vec(), is.to_vec()));
        (
            self.lags.diff_recent().to_vec(),
            zs,
            is,
            self.has_pending.then_some(self.pending_diff_forecast),
            self.has_last.then_some(self.last_level),
        )
    }

    /// Rebuilds streaming state from [`ArimaState::raw_parts`] output.
    ///
    /// Returns `None` if any history is longer than the spec allows — such
    /// state is unreachable by [`ArimaState::observe`].
    pub fn from_raw_parts(
        spec: ArimaSpec,
        diff_recent: Vec<f64>,
        recent_z: Vec<f64>,
        recent_innov: Vec<f64>,
        pending_diff_forecast: Option<f64>,
        last_level: Option<f64>,
    ) -> Option<ArimaState> {
        if recent_z.len() > spec.p.max(1)
            || recent_innov.len() > spec.q.max(1)
            || diff_recent.len() > spec.d
        {
            return None;
        }
        let mut lags = LagStore::new(spec);
        match &mut lags {
            LagStore::Inline {
                z,
                innov,
                diff,
                z_len,
                innov_len,
                diff_len,
            } => {
                z[..recent_z.len()].copy_from_slice(&recent_z);
                *z_len = recent_z.len() as u8;
                innov[..recent_innov.len()].copy_from_slice(&recent_innov);
                *innov_len = recent_innov.len() as u8;
                diff[..diff_recent.len()].copy_from_slice(&diff_recent);
                *diff_len = diff_recent.len() as u8;
            }
            LagStore::Heap(h) => {
                h.z.extend(recent_z);
                h.innov.extend(recent_innov);
                h.diff.extend(diff_recent);
            }
        }
        Some(ArimaState {
            p: order_u8(spec.p, "AR"),
            d: order_u8(spec.d, "differencing"),
            q: order_u8(spec.q, "MA"),
            has_pending: pending_diff_forecast.is_some(),
            has_last: last_level.is_some(),
            lags,
            pending_diff_forecast: pending_diff_forecast.unwrap_or(0.0),
            last_level: last_level.unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::DetRng;

    fn simulate_arma11(phi: f64, psi: f64, c: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::seed_from(seed);
        let mut xs = vec![0.0; n + 200];
        let mut prev_a = 0.0;
        for t in 1..xs.len() {
            let a = rng.standard_normal();
            xs[t] = c + phi * xs[t - 1] + psi * prev_a + a;
            prev_a = a;
        }
        xs.split_off(200)
    }

    #[test]
    fn spec_display_and_min_len() {
        let spec = ArimaSpec::new(2, 1, 1);
        assert_eq!(spec.to_string(), "ARIMA(2,1,1)");
        assert!(spec.min_series_len() > 20);
    }

    #[test]
    fn fit_rejects_short_series() {
        let spec = ArimaSpec::new(2, 1, 1);
        let err = ArimaModel::fit(&[1.0, 2.0, 3.0], spec).unwrap_err();
        assert!(matches!(err, ArimaError::TooShort { .. }));
        assert!(err.to_string().contains("too short"));
    }

    #[test]
    fn mean_model_p0d0q0() {
        let xs: Vec<f64> = (0..100)
            .map(|i| 5.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 0, 0)).unwrap();
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        assert!((m.sigma2() - 1.0).abs() < 1e-9);
        let f = m.one_step_forecasts(&xs);
        // After warm-up the forecast is the mean.
        assert!((f[50] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_ar1_coefficient() {
        let xs = simulate_arma11(0.6, 0.0, 0.0, 30_000, 21);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        assert!((m.phi()[0] - 0.6).abs() < 0.03, "phi={:?}", m.phi());
        assert!((m.sigma2() - 1.0).abs() < 0.05, "sigma2={}", m.sigma2());
    }

    #[test]
    fn fit_recovers_arma11_coefficients() {
        let xs = simulate_arma11(0.7, 0.4, 0.0, 60_000, 22);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 1)).unwrap();
        assert!((m.phi()[0] - 0.7).abs() < 0.05, "phi={:?}", m.phi());
        assert!((m.psi()[0] - 0.4).abs() < 0.07, "psi={:?}", m.psi());
    }

    #[test]
    fn fit_with_differencing_recovers_trend_model() {
        // Random walk with drift: x_t = x_{t-1} + 0.5 + noise.
        let mut rng = DetRng::seed_from(23);
        let mut xs = vec![0.0];
        for _ in 0..20_000 {
            let next = xs.last().unwrap() + 0.5 + 0.1 * rng.standard_normal();
            xs.push(next);
        }
        let m = ArimaModel::fit(&xs, ArimaSpec::new(0, 1, 0)).unwrap();
        assert!(
            (m.intercept() - 0.5).abs() < 0.01,
            "drift={}",
            m.intercept()
        );
        // One-step forecasts should track the walk closely.
        let f = m.one_step_forecasts(&xs);
        let errs: f64 = xs
            .iter()
            .zip(&f)
            .skip(100)
            .map(|(x, p)| (x - p) * (x - p))
            .sum::<f64>()
            / (xs.len() - 100) as f64;
        assert!(errs < 0.02, "msqerr={errs}");
    }

    #[test]
    fn one_step_forecasts_beat_naive_on_ar_process() {
        let xs = simulate_arma11(0.8, 0.0, 0.0, 20_000, 24);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(1, 0, 0)).unwrap();
        let f = m.one_step_forecasts(&xs);
        let skip = 50;
        let model_err: f64 = xs[skip..]
            .iter()
            .zip(&f[skip..])
            .map(|(x, p)| (x - p) * (x - p))
            .sum();
        let naive_err: f64 = xs[skip..]
            .iter()
            .zip(&xs[skip - 1..])
            .map(|(x, prev)| (x - prev) * (x - prev))
            .sum();
        // For AR(1) with φ = 0.8 and unit innovations the optimal one-step
        // msqerr is 1.0 while LAST achieves 2·var·(1−φ) ≈ 1.11: the model
        // must sit near the optimum, clearly below naive.
        assert!(
            model_err < 0.95 * naive_err,
            "model={model_err}, naive={naive_err}"
        );
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_err: f64 = xs[skip..].iter().map(|x| (x - mean) * (x - mean)).sum();
        // ...and far below the MEAN predictor (whose msqerr is the variance,
        // ≈ 1/(1−φ²) ≈ 2.78).
        assert!(
            model_err < 0.5 * mean_err,
            "model={model_err}, mean={mean_err}"
        );
    }

    #[test]
    fn forecast_diff_requires_history() {
        let xs = simulate_arma11(0.5, 0.0, 0.0, 5_000, 25);
        let m = ArimaModel::fit(&xs, ArimaSpec::new(2, 0, 1)).unwrap();
        assert!(m.forecast_diff(&[1.0], &[0.1]).is_none()); // p=2 needs 2 z's
        assert!(m.forecast_diff(&[1.0, 2.0], &[]).is_none()); // q=1 needs 1
        assert!(m.forecast_diff(&[1.0, 2.0], &[0.1]).is_some());
    }

    #[test]
    fn state_warmup_falls_back_to_last_level() {
        let spec = ArimaSpec::new(2, 1, 1);
        let mut st = ArimaState::new(spec);
        assert_eq!(st.predict_next(None), None);
        st.observe(100.0, None);
        assert_eq!(st.predict_next(None), Some(100.0));
        st.observe(105.0, None);
        assert_eq!(st.predict_next(None), Some(105.0));
        assert_eq!(st.last_level(), Some(105.0));
    }

    #[test]
    fn forecasts_are_finite_on_spiky_series() {
        // Series with large spikes should not blow up the forecasts.
        let mut rng = DetRng::seed_from(26);
        let xs: Vec<f64> = (0..2_000)
            .map(|i| {
                let base = 200.0 + rng.normal(0.0, 5.0);
                if i % 97 == 0 {
                    base + 140.0
                } else {
                    base
                }
            })
            .collect();
        let m = ArimaModel::fit(&xs, ArimaSpec::new(2, 1, 1)).unwrap();
        for f in m.one_step_forecasts(&xs) {
            assert!(f.is_finite());
        }
    }
}
