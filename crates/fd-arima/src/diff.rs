//! Differencing and integration — the "I" of ARIMA.
//!
//! `∇ Z_t = Z_t − Z_{t−1}`; applying `∇` `d` times turns an integrated
//! series into the (hopefully stationary) series the ARMA core models.
//! Forecasts made on the differenced scale are mapped back with
//! [`integrate_one_step`] / [`Differencer`].

/// Applies the difference operator `d` times.
///
/// The output has `series.len() − d` elements. Returns an empty vector when
/// the series is too short to difference.
///
/// ```
/// use fd_arima::difference;
/// assert_eq!(difference(&[1.0, 4.0, 9.0, 16.0], 1), vec![3.0, 5.0, 7.0]);
/// assert_eq!(difference(&[1.0, 4.0, 9.0, 16.0], 2), vec![2.0, 2.0]);
/// ```
pub fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut out: Vec<f64> = series.to_vec();
    for _ in 0..d {
        if out.len() < 2 {
            return Vec::new();
        }
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    out
}

/// Reconstructs the next *level* forecast from a forecast on the
/// `d`-times-differenced scale, given the last `d` observed levels (most
/// recent last).
///
/// For `d = 0` this is the forecast itself; for `d = 1`,
/// `x̂_{t+1} = x_t + ẑ_{t+1}`; for `d = 2`,
/// `x̂_{t+1} = 2·x_t − x_{t−1} + ẑ_{t+1}`; in general the inverse binomial
/// expansion of `(1 − B)^d`.
///
/// # Panics
///
/// Panics if fewer than `d` recent levels are provided.
pub fn integrate_one_step(diff_forecast: f64, recent_levels: &[f64], d: usize) -> f64 {
    assert!(
        recent_levels.len() >= d,
        "need {d} recent levels, got {}",
        recent_levels.len()
    );
    // x̂_{t+1} = ẑ_{t+1} − Σ_{k=1..d} (-1)^k C(d, k) x_{t+1−k}
    let n = recent_levels.len();
    let mut acc = diff_forecast;
    let mut binom: f64 = 1.0; // C(d, 0)
    for k in 1..=d {
        binom = binom * (d - k + 1) as f64 / k as f64;
        let sign = if k % 2 == 1 { 1.0 } else { -1.0 };
        acc += sign * binom * recent_levels[n - k];
    }
    acc
}

/// One step of the streaming difference operator: the `d`-differenced value
/// of `level` given the last `d` observed levels (most recent last).
///
/// `z = Σ_{k=0..d} (-1)^k C(d,k) x_{t-k}` — the same expansion
/// [`Differencer::push`] applies; extracted so slim inline lag storage
/// (see `ArimaState`) shares the arithmetic bit for bit.
pub(crate) fn diff_step(d: usize, recent: &[f64], level: f64) -> f64 {
    let mut z = level;
    let mut binom: f64 = 1.0;
    let n = recent.len();
    for k in 1..=d {
        binom = binom * (d - k + 1) as f64 / k as f64;
        let sign = if k % 2 == 1 { -1.0 } else { 1.0 };
        z += sign * binom * recent[n - k];
    }
    z
}

/// Streaming differencer: feeds levels in, emits the `d`-times-differenced
/// value once enough history has accumulated, and integrates forecasts back
/// to the level scale.
#[derive(Debug, Clone)]
pub struct Differencer {
    d: usize,
    /// Last `d` levels, most recent last.
    recent: Vec<f64>,
}

impl Differencer {
    /// Creates a streaming differencer of order `d`.
    pub fn new(d: usize) -> Self {
        Self {
            d,
            recent: Vec::with_capacity(d),
        }
    }

    /// The differencing order.
    pub fn order(&self) -> usize {
        self.d
    }

    /// Pushes a new level; returns the `d`-differenced value when available
    /// (i.e. after `d` previous levels have been seen).
    pub fn push(&mut self, level: f64) -> Option<f64> {
        if self.d == 0 {
            return Some(level);
        }
        if self.recent.len() < self.d {
            self.recent.push(level);
            return None;
        }
        let z = diff_step(self.d, &self.recent, level);
        self.recent.remove(0);
        self.recent.push(level);
        Some(z)
    }

    /// Maps a forecast on the differenced scale back to the level scale.
    ///
    /// Returns `None` until `d` levels have been observed.
    pub fn integrate(&self, diff_forecast: f64) -> Option<f64> {
        if self.recent.len() < self.d {
            return None;
        }
        Some(integrate_one_step(diff_forecast, &self.recent, self.d))
    }

    /// `true` once enough levels have been seen to emit differenced values.
    pub fn is_primed(&self) -> bool {
        self.recent.len() >= self.d
    }

    /// The retained recent levels (at most `d`, most recent last).
    pub fn recent(&self) -> &[f64] {
        &self.recent
    }

    /// Rebuilds a streaming differencer from its order and retained levels.
    ///
    /// Returns `None` if more than `d` levels are supplied — that state is
    /// unreachable by [`Differencer::push`] and cannot be restored.
    pub fn from_recent(d: usize, recent: Vec<f64>) -> Option<Self> {
        (recent.len() <= d).then_some(Self { d, recent })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_orders() {
        let xs = [2.0, 4.0, 7.0, 11.0, 16.0];
        assert_eq!(difference(&xs, 0), xs.to_vec());
        assert_eq!(difference(&xs, 1), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(difference(&xs, 2), vec![1.0, 1.0, 1.0]);
        assert_eq!(difference(&xs, 5), Vec::<f64>::new());
    }

    #[test]
    fn integrate_inverts_difference_d1() {
        let xs = [10.0, 12.0, 15.0, 19.0];
        let z = difference(&xs, 1);
        // Forecast z = 5.0 after the series: level forecast = 19 + 5 = 24.
        assert_eq!(integrate_one_step(5.0, &xs, 1), 24.0);
        assert_eq!(z, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn integrate_inverts_difference_d2() {
        let xs = [1.0, 4.0, 9.0, 16.0]; // second difference constant = 2
                                        // ẑ = 2 ⇒ x̂ = 2·16 − 9 + 2 = 25 (the next square).
        assert_eq!(integrate_one_step(2.0, &xs, 2), 25.0);
    }

    #[test]
    fn integrate_d0_is_identity() {
        assert_eq!(integrate_one_step(7.5, &[], 0), 7.5);
    }

    #[test]
    fn streaming_matches_batch() {
        let xs: Vec<f64> = (0..20)
            .map(|i| (i as f64).powi(2) + (i as f64 * 0.7).sin())
            .collect();
        for d in 0..=3usize {
            let batch = difference(&xs, d);
            let mut st = Differencer::new(d);
            let streamed: Vec<f64> = xs.iter().filter_map(|&x| st.push(x)).collect();
            assert_eq!(streamed.len(), batch.len(), "d={d}");
            for (a, b) in streamed.iter().zip(&batch) {
                assert!((a - b).abs() < 1e-9, "d={d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn streaming_integration_round_trips() {
        let xs = [5.0, 8.0, 12.0, 17.0, 23.0];
        let mut st = Differencer::new(1);
        let mut last_z = None;
        for &x in &xs {
            last_z = st.push(x).or(last_z);
        }
        // If the next differenced value were 7, the next level is 23 + 7.
        assert_eq!(st.integrate(7.0), Some(30.0));
        assert!(st.is_primed());
        assert!(last_z.is_some());
    }

    #[test]
    fn unprimed_integration_is_none() {
        let st = Differencer::new(2);
        assert_eq!(st.integrate(1.0), None);
        assert!(!st.is_primed());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Differencing reduces length by exactly d (when possible).
        #[test]
        fn difference_length(xs in proptest::collection::vec(-1e3f64..1e3, 0..50), d in 0usize..4) {
            let out = difference(&xs, d);
            if xs.len() > d {
                prop_assert_eq!(out.len(), xs.len() - d);
            } else if d > 0 {
                prop_assert!(out.len() <= 1 || out.is_empty());
            }
        }

        /// Push-then-integrate reproduces the next observed level exactly
        /// when the "forecast" equals the actually observed difference.
        #[test]
        fn integrate_is_inverse(
            xs in proptest::collection::vec(-1e3f64..1e3, 4..30),
            d in 0usize..3,
        ) {
            let mut st = Differencer::new(d);
            for &x in &xs[..xs.len() - 1] {
                st.push(x);
            }
            if st.is_primed() {
                let mut probe = st.clone();
                let z_next = probe.push(*xs.last().unwrap()).unwrap();
                let reconstructed = st.integrate(z_next).unwrap();
                prop_assert!((reconstructed - xs.last().unwrap()).abs() < 1e-6);
            }
        }
    }
}
