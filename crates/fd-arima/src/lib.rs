//! Time-series substrate: AR/MA/ARIMA estimation, one-step forecasting, and
//! model selection.
//!
//! The paper's most accurate predictor is `ARIMA(2,1,1)`, identified with the
//! RPS toolkit by searching `(p, d, q) ∈ [0,10]³` for the minimum mean-square
//! one-step prediction error, then re-fit every 1000 observations during the
//! experiment. This crate is the Rust stand-in for that toolkit:
//!
//! * [`diff`] — differencing/integration (the "I" in ARIMA);
//! * [`ar`] — autocovariance and Yule–Walker (Levinson–Durbin) AR fitting;
//! * [`linalg`] — the small dense least-squares solver used by the
//!   Hannan–Rissanen second stage;
//! * [`model`] — [`ArimaSpec`], [`ArimaModel`]: fitting (Hannan–Rissanen)
//!   and one-step forecasting;
//! * [`forecaster`] — [`OnlineArima`]: streaming observe/predict with
//!   periodic refit, as the experiments use it;
//! * [`select`] — grid search over `(p, d, q)` minimising held-out one-step
//!   msqerr (regenerates the paper's Table 2 choice).
//!
//! # Example
//!
//! ```
//! use fd_arima::{ArimaSpec, OnlineArima};
//!
//! let mut forecaster = OnlineArima::new(ArimaSpec::new(2, 1, 1), 500);
//! for i in 0..600 {
//!     forecaster.observe(200.0 + (i as f64 * 0.1).sin());
//! }
//! let next = forecaster.predict_next();
//! assert!((next - 200.0).abs() < 5.0);
//! ```

pub mod ar;
pub mod diff;
pub mod forecaster;
pub mod linalg;
pub mod model;
pub mod select;

pub use ar::{autocovariance, fit_ar_yule_walker, levinson_durbin};
pub use diff::{difference, integrate_one_step, Differencer};
pub use forecaster::{ArimaSnapshot, OnlineArima};
pub use model::{ArimaError, ArimaModel, ArimaSpec, ArimaState};
pub use select::{
    select_best_model, select_best_model_by, SelectionCriterion, SelectionReport, SelectionResult,
};
