//! The layer abstraction: Neko's building block.
//!
//! A [`Layer`] intercepts messages travelling **down** (toward the network,
//! `on_send`) and **up** (from the network, `on_deliver`), can schedule
//! timers, and emits NekoStat events. Layers never call each other directly:
//! they enqueue [`Action`]s on their [`Context`], and the [`crate::Process`]
//! runtime routes each action to the adjacent layer (or to the engine). This
//! keeps layers independent, testable and engine-agnostic — the same layer
//! runs under [`crate::SimEngine`] and [`crate::RealEngine`].

use fd_sim::{SimDuration, SimTime};
use fd_stat::{EventKind, ProcessId};

use crate::message::Message;

/// Identifies one timer of one layer (layer-chosen namespace).
pub type TimerId = u64;

/// Timer-ID bits claimed by fd-runtime's *wrapping* layers: bit 63 by
/// [`crate::ChaosLayer`], bit 62 by [`crate::SupervisorLayer`]. A layer that
/// may be wrapped (directly or via fabric-level chaos) must keep every timer
/// ID it sets clear of this mask — both wrappers `debug_assert` the child's
/// IDs on the way through, and child layers can assert their own constants
/// against this mask at compile time so a collision is a build error, not a
/// mis-routed timer at runtime.
pub const RESERVED_TIMER_BITS: u64 = (1 << 63) | (1 << 62);

/// An effect requested by a layer while handling a callback.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Route the message downward (toward the network). From the bottom
    /// layer this hands the message to the engine's network.
    Send(Message),
    /// Route the message upward (toward the application). From the top
    /// layer this is dropped.
    Deliver(Message),
    /// Request a timer callback after `delay`.
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Layer-chosen identifier passed back to `on_timer`.
        id: TimerId,
    },
    /// Record a NekoStat event for this process.
    Emit(EventKind),
}

/// The callback context handed to a layer: the local clock, identity, and
/// the action queue.
#[derive(Debug)]
pub struct Context {
    now: SimTime,
    process: ProcessId,
    actions: Vec<Action>,
}

impl Context {
    /// Creates a context for one callback invocation.
    pub fn new(now: SimTime, process: ProcessId) -> Self {
        Self::with_actions(now, process, Vec::new())
    }

    /// Creates a context that records into a recycled (empty) buffer, so
    /// per-callback hot paths reuse one allocation instead of growing a
    /// fresh `Vec` every invocation. Pair with
    /// [`take_actions`](Self::take_actions), which hands the buffer back.
    pub fn with_actions(now: SimTime, process: ProcessId, actions: Vec<Action>) -> Self {
        debug_assert!(actions.is_empty(), "recycled action buffer not drained");
        Self {
            now,
            process,
            actions,
        }
    }

    /// The current time on this process's clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Sends a message toward the network (through the layers below).
    pub fn send(&mut self, msg: Message) {
        self.actions.push(Action::Send(msg));
    }

    /// Delivers a message toward the application (through the layers above).
    pub fn deliver(&mut self, msg: Message) {
        self.actions.push(Action::Deliver(msg));
    }

    /// Schedules a timer callback on this layer after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, id: TimerId) {
        self.actions.push(Action::SetTimer { delay, id });
    }

    /// Records a NekoStat event.
    pub fn emit(&mut self, kind: EventKind) {
        self.actions.push(Action::Emit(kind));
    }

    /// Drains the accumulated actions (used by the process runtime).
    pub fn take_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }
}

/// One layer of a process stack.
///
/// Default implementations forward messages transparently in both
/// directions, so a layer only overrides the direction(s) it intercepts.
pub trait Layer: Send {
    /// Called once when the engine starts, bottom layer first.
    fn on_start(&mut self, _ctx: &mut Context) {}

    /// A message from an upper layer travelling toward the network.
    fn on_send(&mut self, ctx: &mut Context, msg: Message) {
        ctx.send(msg);
    }

    /// A message from the network (or a lower layer) travelling upward.
    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        ctx.deliver(msg);
    }

    /// A timer set by this layer has fired.
    fn on_timer(&mut self, _ctx: &mut Context, _id: TimerId) {}

    /// The layer's name for diagnostics.
    fn name(&self) -> &str {
        "layer"
    }
}

/// A layer that can consume deliveries **by reference**, for fan-out parents
/// like [`crate::MultiplexerLayer`] that would otherwise clone the message
/// once per child.
///
/// A batched child acts as a top component: it never forwards the message
/// upward (there is nothing above it), so it does not need ownership. Layers
/// that internally multiplex many consumers (e.g. a monitor driving a
/// [`DetectorBank`](https://docs.rs/fd-core)-style engine) implement this in
/// addition to [`Layer`] and are registered via
/// [`crate::MultiplexerLayer::with_batched_child`].
pub trait BatchedLayer: Send {
    /// Called once when the engine starts.
    fn on_start_batched(&mut self, _ctx: &mut Context) {}

    /// A message from the network, by reference — the parent keeps
    /// ownership, the child must not expect to re-deliver it upward.
    fn on_deliver_ref(&mut self, ctx: &mut Context, msg: &Message);

    /// A timer set by this layer has fired.
    fn on_timer_batched(&mut self, _ctx: &mut Context, _id: TimerId) {}

    /// The layer's name for diagnostics.
    fn batched_name(&self) -> &str {
        "batched-layer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    struct Tag;
    impl Layer for Tag {
        fn on_deliver(&mut self, ctx: &mut Context, mut msg: Message) {
            if let MessageKind::Data(ref mut d) = msg.kind {
                d.push(0xAA);
            }
            ctx.deliver(msg);
        }
        fn name(&self) -> &str {
            "tag"
        }
    }

    #[test]
    fn context_collects_actions_in_order() {
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(3));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        assert_eq!(ctx.process(), ProcessId(3));
        ctx.set_timer(SimDuration::from_secs(2), 9);
        ctx.emit(EventKind::Crash);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], Action::SetTimer { id: 9, .. }));
        assert!(matches!(actions[1], Action::Emit(EventKind::Crash)));
        // Drained.
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn default_layer_is_transparent() {
        struct Passive;
        impl Layer for Passive {}
        let mut layer = Passive;
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        let msg = Message::heartbeat(ProcessId(0), ProcessId(1), 1, SimTime::ZERO);
        layer.on_send(&mut ctx, msg.clone());
        layer.on_deliver(&mut ctx, msg.clone());
        let actions = ctx.take_actions();
        assert_eq!(
            actions,
            vec![Action::Send(msg.clone()), Action::Deliver(msg)]
        );
        assert_eq!(layer.name(), "layer");
    }

    #[test]
    fn overriding_layer_transforms_messages() {
        let mut layer = Tag;
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        let msg = Message::data(ProcessId(0), ProcessId(1), 0, SimTime::ZERO, vec![1]);
        layer.on_deliver(&mut ctx, msg);
        match ctx.take_actions().pop().unwrap() {
            Action::Deliver(m) => assert_eq!(m.kind, MessageKind::Data(vec![1, 0xAA])),
            other => panic!("unexpected action {other:?}"),
        }
    }
}
