//! The real-network engine: the same layered processes, executed in threads
//! and exchanging real UDP datagrams.
//!
//! This is Neko's second half: after validating an algorithm in simulation,
//! the identical [`Process`] stacks run over actual sockets. Heartbeats are
//! encoded with the wire format of [`fd_net::wire`]; `Data` messages exist
//! only in simulation and are counted as undeliverable here.
//!
//! Time is the wall clock relative to the engine's start instant, so all
//! processes of one engine share a synchronised clock (the in-process
//! equivalent of the paper's NTP setup; distributed deployments would pair
//! this with [`crate::clock`]).

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fd_net::wire::{Heartbeat, HEARTBEAT_WIRE_SIZE};
use fd_sim::SimTime;
use fd_stat::{EventLog, ProcessId};
use parking_lot::Mutex;

use crate::layer::TimerId;
use crate::message::{Message, MessageKind};
use crate::process::{Effect, Process};

/// Configuration of a real-network run.
#[derive(Debug, Clone)]
pub struct RealEngineConfig {
    /// One UDP bind address per process, indexed by process id.
    pub addrs: Vec<SocketAddr>,
}

impl RealEngineConfig {
    /// Binds every process to a distinct OS-assigned localhost port.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if probing sockets cannot be bound.
    pub fn localhost(n: usize) -> std::io::Result<RealEngineConfig> {
        // Bind throwaway sockets to reserve distinct ports, record them,
        // then drop; a tiny race is acceptable for tests and examples.
        let mut addrs = Vec::with_capacity(n);
        let mut probes = Vec::with_capacity(n);
        for _ in 0..n {
            let sock = UdpSocket::bind("127.0.0.1:0")?;
            addrs.push(sock.local_addr()?);
            probes.push(sock);
        }
        drop(probes);
        Ok(RealEngineConfig { addrs })
    }
}

/// Counters of one real-engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealRunStats {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams received and decoded.
    pub received: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// `Data` messages dropped (unsupported on the wire).
    pub undeliverable: u64,
    /// Socket operations (send, receive, timeout configuration) that failed
    /// with an I/O error. Counted and survived, never fatal: a lossy or
    /// flaky socket degrades QoS, it does not abort the experiment.
    pub socket_errors: u64,
}

/// Runs layered processes over real UDP sockets.
pub struct RealEngine {
    processes: Vec<Process>,
    config: RealEngineConfig,
}

impl std::fmt::Debug for RealEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealEngine")
            .field("processes", &self.processes.len())
            .field("addrs", &self.config.addrs)
            .finish()
    }
}

impl RealEngine {
    /// Creates an engine from processes (consecutive ids from 0) and their
    /// socket configuration.
    ///
    /// # Panics
    ///
    /// Panics if ids are not consecutive or the address list is shorter than
    /// the process list.
    pub fn new(processes: Vec<Process>, config: RealEngineConfig) -> Self {
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(p.id().0 as usize, i, "process ids must be consecutive");
        }
        assert!(
            config.addrs.len() >= processes.len(),
            "need one address per process"
        );
        Self { processes, config }
    }

    /// Runs all processes for `duration` of wall-clock time, then shuts
    /// down.
    ///
    /// Returns the processes (for post-run state extraction), the merged
    /// event log (globally timestamped, time-ordered) and per-process run
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a socket cannot be bound, or if a process
    /// thread panicked (its partial results are discarded; the panic itself
    /// is contained to that thread and surfaced as a typed error rather
    /// than propagated).
    pub fn run_for(
        self,
        duration: Duration,
    ) -> std::io::Result<(Vec<Process>, EventLog, Vec<RealRunStats>)> {
        let epoch = Instant::now();
        let shutdown = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(EventLog::new()));
        let addrs = Arc::new(self.config.addrs.clone());

        let mut handles = Vec::new();
        for process in self.processes {
            let pid = process.id();
            let socket = UdpSocket::bind(addrs[pid.0 as usize])?;
            let shutdown = Arc::clone(&shutdown);
            let log = Arc::clone(&log);
            let addrs = Arc::clone(&addrs);
            handles.push(std::thread::spawn(move || {
                run_process(process, socket, epoch, duration, shutdown, log, addrs)
            }));
        }

        std::thread::sleep(duration);
        shutdown.store(true, Ordering::SeqCst);

        let mut processes = Vec::new();
        let mut stats = Vec::new();
        let mut lost_threads = 0usize;
        for h in handles {
            match h.join() {
                Ok((p, s)) => {
                    processes.push(p);
                    stats.push(s);
                }
                Err(_) => lost_threads += 1,
            }
        }
        processes.sort_by_key(|p| p.id());
        // A panicked thread dropped its log handle during unwinding, so the
        // unwrap normally succeeds; take the contents either way.
        let log = match Arc::try_unwrap(log) {
            Ok(mutex) => mutex.into_inner(),
            Err(arc) => std::mem::take(&mut *arc.lock()),
        };
        if lost_threads > 0 {
            return Err(std::io::Error::other(format!(
                "{lost_threads} process thread(s) panicked during the run"
            )));
        }
        Ok((processes, log, stats))
    }
}

/// Maximum blocking interval so the shutdown flag is observed promptly.
const POLL_CAP: Duration = Duration::from_millis(20);

/// How many receive errors in a row we tolerate before concluding the socket
/// is unrecoverable and stopping the process loop.
const MAX_CONSECUTIVE_RECV_ERRORS: u32 = 100;

#[allow(clippy::too_many_arguments)]
fn run_process(
    mut process: Process,
    socket: UdpSocket,
    epoch: Instant,
    duration: Duration,
    shutdown: Arc<AtomicBool>,
    log: Arc<Mutex<EventLog>>,
    addrs: Arc<Vec<SocketAddr>>,
) -> (Process, RealRunStats) {
    let pid = process.id();
    let mut stats = RealRunStats::default();
    // (deadline, layer, id) min-ordering via sorted Vec; timer counts are
    // tiny (a handful per process).
    let mut timers: Vec<(SimTime, usize, TimerId)> = Vec::new();
    let mut buf = [0u8; HEARTBEAT_WIRE_SIZE + 64];
    let mut consecutive_recv_errors = 0u32;

    let now_fn = |epoch: Instant| SimTime::from_micros(epoch.elapsed().as_micros() as u64);

    let effects = process.start(now_fn(epoch));
    apply(
        pid,
        effects,
        &socket,
        &addrs,
        &log,
        epoch,
        &mut timers,
        &mut stats,
    );

    let end = epoch + duration;
    while !shutdown.load(Ordering::SeqCst) && Instant::now() < end {
        // Fire due timers.
        let now = now_fn(epoch);
        timers.sort_by_key(|t| t.0);
        while let Some(&(deadline, layer, id)) = timers.first() {
            if deadline > now {
                break;
            }
            timers.remove(0);
            let effects = process.timer_fired(now_fn(epoch), layer, id);
            apply(
                pid,
                effects,
                &socket,
                &addrs,
                &log,
                epoch,
                &mut timers,
                &mut stats,
            );
        }

        // Block on the socket until the next timer (capped for shutdown
        // responsiveness).
        let wait = timers
            .first()
            .map(|&(deadline, _, _)| {
                Duration::from_micros(
                    deadline
                        .as_micros()
                        .saturating_sub(now_fn(epoch).as_micros()),
                )
            })
            .unwrap_or(POLL_CAP)
            .clamp(Duration::from_micros(100), POLL_CAP);
        if socket.set_read_timeout(Some(wait)).is_err() {
            // Degrade to a plain sleep; the next iteration retries the socket.
            stats.socket_errors += 1;
            std::thread::sleep(wait);
            continue;
        }

        match socket.recv_from(&mut buf) {
            Ok((len, _src)) => match Heartbeat::decode(&buf[..len]) {
                Ok(hb) => {
                    consecutive_recv_errors = 0;
                    stats.received += 1;
                    let msg = Message::heartbeat(ProcessId(hb.sender), pid, hb.seq, hb.sent_at);
                    let effects = process.deliver_from_network(now_fn(epoch), msg);
                    apply(
                        pid,
                        effects,
                        &socket,
                        &addrs,
                        &log,
                        epoch,
                        &mut timers,
                        &mut stats,
                    );
                }
                Err(_) => stats.decode_errors += 1,
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                consecutive_recv_errors = 0;
            }
            Err(_) => {
                // A transient receive error (e.g. ICMP port-unreachable
                // surfacing as ECONNREFUSED on some platforms) must not kill
                // the monitor; only a persistently broken socket ends the loop.
                stats.socket_errors += 1;
                consecutive_recv_errors += 1;
                if consecutive_recv_errors > MAX_CONSECUTIVE_RECV_ERRORS {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    (process, stats)
}

#[allow(clippy::too_many_arguments)]
fn apply(
    pid: ProcessId,
    effects: Vec<Effect>,
    socket: &UdpSocket,
    addrs: &[SocketAddr],
    log: &Mutex<EventLog>,
    epoch: Instant,
    timers: &mut Vec<(SimTime, usize, TimerId)>,
    stats: &mut RealRunStats,
) {
    for effect in effects {
        match effect {
            Effect::ToNetwork(msg) => match msg.kind {
                MessageKind::Heartbeat => {
                    let hb = Heartbeat::new(msg.from.0, msg.seq, msg.sent_at);
                    if let Some(&addr) = addrs.get(msg.to.0 as usize) {
                        match socket.send_to(&hb.encode(), addr) {
                            Ok(_) => stats.sent += 1,
                            Err(_) => stats.socket_errors += 1,
                        }
                    }
                }
                MessageKind::Data(_) => stats.undeliverable += 1,
            },
            Effect::Timer { layer, delay, id } => {
                let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
                timers.push((now + delay, layer, id));
            }
            Effect::Event(kind) => {
                // Timestamp under the lock so the merged log stays ordered.
                let mut guard = log.lock();
                let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
                guard.record(now, pid, kind);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Context, Layer};
    use fd_sim::SimDuration;
    use fd_stat::EventKind;

    struct Beater {
        to: ProcessId,
        period: SimDuration,
        seq: u64,
    }
    impl Layer for Beater {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context, _id: u64) {
            ctx.emit(EventKind::Sent { seq: self.seq });
            ctx.send(Message::heartbeat(
                ctx.process(),
                self.to,
                self.seq,
                ctx.now(),
            ));
            self.seq += 1;
            ctx.set_timer(self.period, 0);
        }
        fn name(&self) -> &str {
            "beater"
        }
    }

    struct Sink;
    impl Layer for Sink {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            ctx.emit(EventKind::Received { seq: msg.seq });
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    #[test]
    fn heartbeats_flow_over_real_udp() {
        let config = RealEngineConfig::localhost(2).expect("localhost sockets");
        let monitor = Process::new(ProcessId(0)).with_layer(Sink);
        let monitored = Process::new(ProcessId(1)).with_layer(Beater {
            to: ProcessId(0),
            period: SimDuration::from_millis(50),
            seq: 0,
        });
        let engine = RealEngine::new(vec![monitor, monitored], config);
        let (_procs, log, stats) = engine.run_for(Duration::from_millis(600)).expect("run");

        let sent = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Sent { .. }))
            .count();
        let received = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Received { .. }))
            .count();
        assert!(sent >= 8, "sent={sent}");
        // Localhost UDP: the vast majority arrives.
        assert!(received >= sent / 2, "received={received} of {sent}");
        assert!(stats[1].sent >= 8);
        assert!(stats[0].received >= sent as u64 / 2);
        assert_eq!(stats[0].decode_errors, 0);
    }

    #[test]
    fn log_is_time_ordered_across_threads() {
        let config = RealEngineConfig::localhost(2).expect("localhost sockets");
        let monitor = Process::new(ProcessId(0)).with_layer(Sink);
        let monitored = Process::new(ProcessId(1)).with_layer(Beater {
            to: ProcessId(0),
            period: SimDuration::from_millis(20),
            seq: 0,
        });
        let engine = RealEngine::new(vec![monitor, monitored], config);
        let (_p, log, _s) = engine.run_for(Duration::from_millis(300)).expect("run");
        let times: Vec<_> = log.iter().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(!times.is_empty());
    }
}
