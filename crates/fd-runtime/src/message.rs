//! Messages exchanged between processes.

use fd_sim::SimTime;
use fd_stat::ProcessId;

/// What a message carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageKind {
    /// A heartbeat `m_seq` from the monitored process.
    Heartbeat,
    /// Opaque application data (simulation engine only; the real engine's
    /// wire format carries heartbeats).
    Data(Vec<u8>),
}

/// A message travelling through the layer stacks and the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Sequence number (the heartbeat cycle number `i`).
    pub seq: u64,
    /// Send time `σ_i` on the sender's clock.
    pub sent_at: SimTime,
    /// Payload discriminator.
    pub kind: MessageKind,
}

impl Message {
    /// Creates a heartbeat message.
    pub fn heartbeat(from: ProcessId, to: ProcessId, seq: u64, sent_at: SimTime) -> Self {
        Self {
            from,
            to,
            seq,
            sent_at,
            kind: MessageKind::Heartbeat,
        }
    }

    /// Creates a data message.
    pub fn data(
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        sent_at: SimTime,
        payload: Vec<u8>,
    ) -> Self {
        Self {
            from,
            to,
            seq,
            sent_at,
            kind: MessageKind::Data(payload),
        }
    }

    /// `true` if this is a heartbeat.
    pub fn is_heartbeat(&self) -> bool {
        matches!(self.kind, MessageKind::Heartbeat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let hb = Message::heartbeat(ProcessId(1), ProcessId(0), 7, SimTime::from_secs(7));
        assert!(hb.is_heartbeat());
        assert_eq!(hb.seq, 7);
        let d = Message::data(ProcessId(0), ProcessId(1), 0, SimTime::ZERO, vec![1, 2]);
        assert!(!d.is_heartbeat());
        assert_eq!(d.kind, MessageKind::Data(vec![1, 2]));
    }
}
