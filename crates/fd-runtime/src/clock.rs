//! Per-process clock models and NTP-style offset estimation.
//!
//! The paper *assumes* synchronised clocks (`offset_pq = 0`, `ρ_pq = 0`) and
//! enforces the assumption with NTP against two stratum servers. The
//! simulation engine makes the assumption explicit: every process owns a
//! [`ClockModel`] mapping global (true) time to its local clock, and
//! [`estimate_ntp_offset`] implements the classical four-timestamp offset
//! estimator so the assumption can be *established* rather than merely
//! asserted.

use fd_sim::{SimDuration, SimTime};

/// An affine clock: `local(t) = t + offset + drift_ppm·10⁻⁶·t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Constant offset in microseconds (positive = local clock ahead).
    pub offset_us: i64,
    /// Linear drift in parts per million.
    pub drift_ppm: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        Self::synchronized()
    }
}

impl ClockModel {
    /// A perfectly synchronised clock (the paper's operating assumption).
    pub const fn synchronized() -> Self {
        Self {
            offset_us: 0,
            drift_ppm: 0.0,
        }
    }

    /// A clock with a constant offset.
    pub const fn with_offset_us(offset_us: i64) -> Self {
        Self {
            offset_us,
            drift_ppm: 0.0,
        }
    }

    /// A clock with offset and drift.
    pub const fn new(offset_us: i64, drift_ppm: f64) -> Self {
        Self {
            offset_us,
            drift_ppm,
        }
    }

    /// Maps global time to this process's local clock reading.
    ///
    /// Saturates at zero: a local clock cannot show negative time.
    pub fn local_time(&self, global: SimTime) -> SimTime {
        let g = global.as_micros() as i128;
        let drift = (g as f64 * self.drift_ppm * 1e-6) as i128;
        let local = g + self.offset_us as i128 + drift;
        SimTime::from_micros(local.clamp(0, u64::MAX as i128) as u64)
    }

    /// Converts a duration measured on the local clock to true (global)
    /// duration, undoing drift.
    pub fn global_duration(&self, local: SimDuration) -> SimDuration {
        if self.drift_ppm == 0.0 {
            return local;
        }
        let scale = 1.0 / (1.0 + self.drift_ppm * 1e-6);
        SimDuration::from_micros((local.as_micros() as f64 * scale).round() as u64)
    }
}

/// The classical NTP offset estimator from one request/response exchange.
///
/// * `t0` — client clock when the request left;
/// * `t1` — server clock when the request arrived;
/// * `t2` — server clock when the response left;
/// * `t3` — client clock when the response arrived.
///
/// Returns the estimated offset of the *client* clock relative to the server
/// in microseconds (positive = client ahead), which is exact when the path
/// is symmetric: `θ = ((t1 − t0) + (t2 − t3)) / 2` estimates `server −
/// client`, so the client-ahead offset is its negation.
pub fn estimate_ntp_offset(t0: SimTime, t1: SimTime, t2: SimTime, t3: SimTime) -> i64 {
    let t0 = t0.as_micros() as i128;
    let t1 = t1.as_micros() as i128;
    let t2 = t2.as_micros() as i128;
    let t3 = t3.as_micros() as i128;
    let theta = ((t1 - t0) + (t2 - t3)) / 2;
    (-theta) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_clock_is_identity() {
        let c = ClockModel::synchronized();
        let t = SimTime::from_secs(1234);
        assert_eq!(c.local_time(t), t);
        assert_eq!(
            c.global_duration(SimDuration::from_secs(5)),
            SimDuration::from_secs(5)
        );
    }

    #[test]
    fn offset_shifts_local_time() {
        let ahead = ClockModel::with_offset_us(2_000_000);
        assert_eq!(
            ahead.local_time(SimTime::from_secs(10)),
            SimTime::from_secs(12)
        );
        let behind = ClockModel::with_offset_us(-3_000_000);
        assert_eq!(
            behind.local_time(SimTime::from_secs(10)),
            SimTime::from_secs(7)
        );
    }

    #[test]
    fn negative_local_time_saturates_at_zero() {
        let behind = ClockModel::with_offset_us(-5_000_000);
        assert_eq!(behind.local_time(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn drift_accumulates() {
        // 100 ppm over 10000 s = 1 s ahead.
        let c = ClockModel::new(0, 100.0);
        let local = c.local_time(SimTime::from_secs(10_000));
        assert_eq!(local, SimTime::from_secs(10_001));
    }

    #[test]
    fn global_duration_undoes_drift() {
        let c = ClockModel::new(0, 100.0);
        let local = SimDuration::from_secs(10_001);
        let global = c.global_duration(local);
        let err = global.as_micros() as i64 - 10_000_000_000i64;
        assert!(err.abs() <= 2_000, "err={err}us"); // within rounding
    }

    #[test]
    fn ntp_offset_exact_on_symmetric_path() {
        // Client 500 ms ahead of server; one-way delay 100 ms each way.
        // Global: request leaves at 0, arrives 0.1; response leaves 0.1,
        // arrives 0.2.
        let client = ClockModel::with_offset_us(500_000);
        let server = ClockModel::synchronized();
        let t0 = client.local_time(SimTime::from_millis(0));
        let t1 = server.local_time(SimTime::from_millis(100));
        let t2 = server.local_time(SimTime::from_millis(100));
        let t3 = client.local_time(SimTime::from_millis(200));
        assert_eq!(estimate_ntp_offset(t0, t1, t2, t3), 500_000);
    }

    #[test]
    fn ntp_offset_error_bounded_by_asymmetry() {
        // Asymmetric path: 150 ms out, 50 ms back. The classical bound is
        // |error| ≤ (out − back)/2 = 50 ms.
        let client = ClockModel::with_offset_us(-200_000);
        let server = ClockModel::synchronized();
        let t0 = client.local_time(SimTime::from_millis(0));
        let t1 = server.local_time(SimTime::from_millis(150));
        let t2 = server.local_time(SimTime::from_millis(150));
        let t3 = client.local_time(SimTime::from_millis(200));
        let est = estimate_ntp_offset(t0, t1, t2, t3);
        let err = (est - (-200_000)).abs();
        assert!(err <= 50_000, "err={err}us");
    }
}
