//! Order-independent streaming digest over event tuples.
//!
//! The sharded engine proves shard-count invariance by checksumming its
//! event stream. The retained-log fingerprint hashed the *merged, sorted*
//! log — which requires keeping every event. [`StreamDigest`] replaces it
//! with three running words a shard can fold into as it emits: each tuple
//! is hashed independently (FNV-1a) and combined with commutative
//! operations (wrapping sum, XOR, count), so the digest of a run is the
//! same whatever order shards emit in and however the population is
//! partitioned — no retention, no merge, no sort.
//!
//! The combination is weaker than hashing the sorted stream (an adversary
//! could craft colliding multisets), but as a *determinism witness* it has
//! exactly the right property: two runs emit the same digest iff they emit
//! the same multiset of tuples, up to 64-bit collisions — and the tuples
//! embed (time, global source, per-source sequence), which totally orders
//! each source's stream.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Commutative multiset digest: fold tuples in any order on any shard,
/// [`merge`](Self::merge) the partials, read one [`value`](Self::value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamDigest {
    sum: u64,
    xor: u64,
    count: u64,
}

impl StreamDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one tuple, presented as its canonical byte encoding. Callers
    /// must use a self-delimiting (e.g. fixed-width) encoding so distinct
    /// tuples have distinct byte strings.
    pub fn fold_bytes(&mut self, bytes: &[u8]) {
        let h = fnv1a(FNV_OFFSET, bytes);
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
        self.count += 1;
    }

    /// Number of tuples folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Combines another digest's tuples into this one. Exactly commutative
    /// and associative.
    pub fn merge(&mut self, other: &StreamDigest) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
        self.count += other.count;
    }

    /// The digest value: an FNV-1a chain over the three state words.
    pub fn value(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.sum.to_le_bytes());
        h = fnv1a(h, &self.xor.to_le_bytes());
        fnv1a(h, &self.count.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_independent() {
        let tuples: Vec<[u8; 8]> = (0u64..100).map(|i| (i * 7 + 3).to_le_bytes()).collect();
        let mut fwd = StreamDigest::new();
        for t in &tuples {
            fwd.fold_bytes(t);
        }
        let mut rev = StreamDigest::new();
        for t in tuples.iter().rev() {
            rev.fold_bytes(t);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.value(), rev.value());
        assert_eq!(fwd.count(), 100);
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let mut whole = StreamDigest::new();
        let mut left = StreamDigest::new();
        let mut right = StreamDigest::new();
        for i in 0u64..50 {
            whole.fold_bytes(&i.to_le_bytes());
            if i % 2 == 0 {
                left.fold_bytes(&i.to_le_bytes());
            } else {
                right.fold_bytes(&i.to_le_bytes());
            }
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged, whole);
    }

    #[test]
    fn sensitive_to_content_and_multiplicity() {
        let mut a = StreamDigest::new();
        a.fold_bytes(&1u64.to_le_bytes());
        let mut b = StreamDigest::new();
        b.fold_bytes(&2u64.to_le_bytes());
        assert_ne!(a.value(), b.value());
        // Duplicates change the digest (multiset, not set).
        let mut twice = a;
        twice.fold_bytes(&1u64.to_le_bytes());
        assert_ne!(twice.value(), a.value());
        // Empty digest is distinct from any non-empty one.
        assert_ne!(StreamDigest::new().value(), a.value());
    }
}
