//! Neko analog: layered distributed processes that run **unchanged** on a
//! simulated network or on a real UDP network.
//!
//! The paper builds its experiments on the Neko framework, whose defining
//! property is that the *same algorithm code* executes either inside a
//! discrete-event simulation or on a real network, selected by
//! configuration. This crate reproduces that architecture:
//!
//! * a process is a stack of [`Layer`]s ([`layer`], [`process`]); messages
//!   travel *down* through `on_send` to the network and *up* through
//!   `on_deliver` from it; layers schedule timers and emit NekoStat-style
//!   events;
//! * [`SimEngine`] runs a set of processes over [`fd_net`] link models inside
//!   a deterministic [`fd_sim`] event loop;
//! * [`RealEngine`] runs the *same* processes in threads, exchanging real
//!   UDP datagrams (heartbeat wire format from [`fd_net::wire`]);
//! * [`ShardedEngine`] is the many-source scale path: compact per-shard
//!   event loops (timer wheel + [`fd_core::SourceBank`]) across worker
//!   threads, folding QoS metrics online and proving shard-count
//!   invariance with an order-independent [`StreamDigest`];
//! * [`clock`] models per-process clock offset/drift and provides the
//!   NTP-style offset estimator that justifies the paper's synchronised-clock
//!   assumption;
//! * [`chaos`] injects deterministic faults (monitor stalls, clock steps,
//!   duplication, wire corruption, sender-rate jitter) across the stack, and
//!   [`supervisor`] restarts a crashed [`supervisor::Recoverable`] monitor
//!   warm (from checkpoint) or cold, with exponential backoff.
//!
//! The experiment layers themselves (Heartbeater, SimCrash, MultiPlexer,
//! Monitor) live in the `fd-experiments` crate.

pub mod chaos;
pub mod clock;
pub mod digest;
pub mod fabric;
pub mod layer;
pub mod message;
pub mod multiplexer;
pub mod ntp;
pub mod process;
pub mod real_engine;
pub mod sharded;
pub mod sim_engine;
pub mod supervisor;

pub use chaos::{ChaosLayer, ChaosLink, FaultEvent, FaultKind, FaultPlan};
pub use clock::{estimate_ntp_offset, ClockModel};
pub use digest::StreamDigest;
pub use fabric::{
    FabricChaosPlan, FabricFault, FabricFaultKind, FabricTopology, FanIn, RegionSpec,
};
pub use layer::{Action, BatchedLayer, Context, Layer, TimerId, RESERVED_TIMER_BITS};
pub use message::{Message, MessageKind};
pub use multiplexer::MultiplexerLayer;
pub use ntp::{NtpClientLayer, NtpSample, NtpServerLayer};
pub use process::Process;
pub use real_engine::{RealEngine, RealEngineConfig};
pub use sharded::{
    MonitorEvent, PublishCadence, ShardFault, ShardFaultKind, ShardPublisher, ShardStatus,
    ShardedConfig, ShardedEngine, ShardedReport, SourceCrashPlan, SupervisionConfig,
};
pub use sim_engine::SimEngine;
pub use supervisor::{backoff_us, Recoverable, RestartMode, SupervisorLayer, MAX_BACKOFF_US};

pub use fd_stat::ProcessId;
