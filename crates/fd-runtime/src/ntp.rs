//! An NTP-style clock-synchronisation protocol as runtime layers.
//!
//! The paper *assumes* synchronised clocks and enforces the assumption with
//! NTP against two stratum servers. [`crate::clock`] provides the offset
//! estimator formula; this module provides the protocol around it: a
//! [`NtpClientLayer`] polls a [`NtpServerLayer`] with timestamped
//! request/response exchanges and maintains a clock-filtered offset estimate
//! (the sample with the smallest round-trip time wins, the classical NTP
//! filter), so the synchronised-clock precondition of the failure detectors
//! can be *established* inside an experiment rather than decreed.
//!
//! Wire format (simulation `Data` payloads): a tag byte plus the exchange's
//! timestamps in microseconds of the sender's local clock.

use std::collections::VecDeque;

use fd_sim::{SimDuration, SimTime};

use crate::clock::estimate_ntp_offset;
use crate::layer::{Context, Layer, TimerId};
use crate::message::{Message, MessageKind};

/// Payload tag of a synchronisation request.
pub const NTP_REQUEST: u8 = 0x4E;
/// Payload tag of a synchronisation response.
pub const NTP_RESPONSE: u8 = 0x4F;

const TIMER_POLL: TimerId = 0;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at + 8)?.try_into().ok().map(u64::from_be_bytes)
}

/// One accepted synchronisation sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpSample {
    /// Estimated local-clock offset relative to the server (µs, positive =
    /// local ahead).
    pub offset_us: i64,
    /// Round-trip time of the exchange (µs) — the filter weight.
    pub rtt_us: u64,
}

/// The polling side of the synchronisation protocol.
pub struct NtpClientLayer {
    server: fd_stat::ProcessId,
    period: SimDuration,
    window: VecDeque<NtpSample>,
    window_size: usize,
    exchanges: u64,
}

impl std::fmt::Debug for NtpClientLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NtpClientLayer")
            .field("server", &self.server)
            .field("period", &self.period)
            .field("samples", &self.window.len())
            .field("estimate_us", &self.estimated_offset_us())
            .finish()
    }
}

impl NtpClientLayer {
    /// Creates a client polling `server` every `period`, filtering over the
    /// last 8 samples.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(server: fd_stat::ProcessId, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "poll period must be positive");
        Self {
            server,
            period,
            window: VecDeque::with_capacity(8),
            window_size: 8,
            exchanges: 0,
        }
    }

    /// The clock-filtered offset estimate: the offset of the minimum-RTT
    /// sample in the window (`None` before the first completed exchange).
    ///
    /// The error of the winning sample is bounded by half its path
    /// asymmetry, which minimum-RTT filtering keeps small.
    pub fn estimated_offset_us(&self) -> Option<i64> {
        self.window
            .iter()
            .min_by_key(|s| s.rtt_us)
            .map(|s| s.offset_us)
    }

    /// Completed request/response exchanges.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The raw samples currently in the filter window.
    pub fn samples(&self) -> impl Iterator<Item = &NtpSample> {
        self.window.iter()
    }
}

impl Layer for NtpClientLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::ZERO, TIMER_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        if id != TIMER_POLL {
            return;
        }
        let mut payload = Vec::with_capacity(9);
        payload.push(NTP_REQUEST);
        put_u64(&mut payload, ctx.now().as_micros()); // t0
        ctx.send(Message::data(
            ctx.process(),
            self.server,
            0,
            ctx.now(),
            payload,
        ));
        ctx.set_timer(self.period, TIMER_POLL);
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        let MessageKind::Data(ref payload) = msg.kind else {
            ctx.deliver(msg);
            return;
        };
        if payload.first() != Some(&NTP_RESPONSE) {
            ctx.deliver(msg);
            return;
        }
        let (Some(t0), Some(t1), Some(t2)) = (
            get_u64(payload, 1),
            get_u64(payload, 9),
            get_u64(payload, 17),
        ) else {
            return; // malformed: drop
        };
        let t3 = ctx.now();
        let t0 = SimTime::from_micros(t0);
        let offset =
            estimate_ntp_offset(t0, SimTime::from_micros(t1), SimTime::from_micros(t2), t3);
        let rtt = t3
            .checked_duration_since(t0)
            .map_or(u64::MAX, |d| d.as_micros());
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(NtpSample {
            offset_us: offset,
            rtt_us: rtt,
        });
        self.exchanges += 1;
    }

    fn name(&self) -> &str {
        "ntp-client"
    }
}

/// The responding side: timestamps the request's arrival and the response's
/// departure on its local clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct NtpServerLayer {
    answered: u64,
}

impl NtpServerLayer {
    /// Creates the server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests answered.
    pub fn answered(&self) -> u64 {
        self.answered
    }
}

impl Layer for NtpServerLayer {
    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        let MessageKind::Data(ref payload) = msg.kind else {
            ctx.deliver(msg);
            return;
        };
        if payload.first() != Some(&NTP_REQUEST) {
            ctx.deliver(msg);
            return;
        }
        let Some(t0) = get_u64(payload, 1) else {
            return;
        };
        self.answered += 1;
        let now = ctx.now().as_micros();
        let mut reply = Vec::with_capacity(25);
        reply.push(NTP_RESPONSE);
        put_u64(&mut reply, t0); // echo t0
        put_u64(&mut reply, now); // t1 = receipt
        put_u64(&mut reply, now); // t2 = departure (same instant here)
        ctx.send(Message::data(ctx.process(), msg.from, 0, ctx.now(), reply));
    }

    fn name(&self) -> &str {
        "ntp-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockModel;
    use crate::process::Process;
    use crate::sim_engine::SimEngine;
    use fd_net::{LinkModel, NoLoss, ShiftedGammaDelay};
    use fd_sim::DetRng;
    use fd_stat::ProcessId;

    // The trait-object stack hides the layer type, so unit tests drive the
    // layers directly instead of via the engine accessor.
    #[test]
    fn symmetric_exchange_recovers_exact_offset() {
        let mut client = NtpClientLayer::new(ProcessId(1), SimDuration::from_secs(1));
        let mut server = NtpServerLayer::new();
        let client_clock = ClockModel::with_offset_us(320_000);
        let server_clock = ClockModel::synchronized();

        // Request leaves at global 0, arrives at global 100 ms.
        let mut ctx = Context::new(client_clock.local_time(fd_sim::SimTime::ZERO), ProcessId(0));
        client.on_timer(&mut ctx, TIMER_POLL);
        let actions = ctx.take_actions();
        let req = actions
            .iter()
            .find_map(|a| match a {
                crate::layer::Action::Send(m) => Some(m.clone()),
                _ => None,
            })
            .expect("request sent");

        let mut sctx = Context::new(
            server_clock.local_time(fd_sim::SimTime::from_millis(100)),
            ProcessId(1),
        );
        server.on_deliver(&mut sctx, req);
        let resp = sctx
            .take_actions()
            .into_iter()
            .find_map(|a| match a {
                crate::layer::Action::Send(m) => Some(m),
                _ => None,
            })
            .expect("response sent");
        assert_eq!(server.answered(), 1);

        // Response arrives at global 200 ms (symmetric path).
        let mut cctx = Context::new(
            client_clock.local_time(fd_sim::SimTime::from_millis(200)),
            ProcessId(0),
        );
        client.on_deliver(&mut cctx, resp);
        assert_eq!(client.exchanges(), 1);
        assert_eq!(client.estimated_offset_us(), Some(320_000));
    }

    #[test]
    fn end_to_end_estimate_converges_under_jitter() {
        // Full engine run: client 250 ms ahead, gamma jitter both ways.
        let mut engine = SimEngine::new();
        engine.add_process(
            Process::new(ProcessId(0))
                .with_layer(NtpClientLayer::new(ProcessId(1), SimDuration::from_secs(1))),
        );
        engine.add_process(Process::new(ProcessId(1)).with_layer(NtpServerLayer::new()));
        engine.set_clock(ProcessId(0), ClockModel::with_offset_us(250_000));
        for (from, to, seed) in [(0u16, 1u16, 1u64), (1, 0, 2)] {
            engine.set_link(
                ProcessId(from),
                ProcessId(to),
                LinkModel::new(
                    ShiftedGammaDelay::new(40.0, 1.5, 6.0),
                    NoLoss,
                    DetRng::seed_from(seed),
                ),
            );
        }
        engine.run_until(fd_sim::SimTime::from_secs(30));
        // We cannot downcast through the engine, so check through behaviour:
        // drive one more exchange by hand against a fresh client... instead,
        // re-run with the layers outside the engine is already covered above.
        // Here assert the protocol actually flowed: ~30 exchanges of 2
        // messages each on each link.
        let out = engine.link_stats(ProcessId(0), ProcessId(1)).unwrap();
        let back = engine.link_stats(ProcessId(1), ProcessId(0)).unwrap();
        assert!(out.sent >= 29, "requests {}", out.sent);
        assert!(back.sent >= 28, "responses {}", back.sent);
    }

    #[test]
    fn asymmetry_error_is_bounded_by_half_the_difference() {
        let mut client = NtpClientLayer::new(ProcessId(1), SimDuration::from_secs(1));
        let mut server = NtpServerLayer::new();
        let client_clock = ClockModel::with_offset_us(-150_000);
        let server_clock = ClockModel::synchronized();

        // Asymmetric: 150 ms out, 50 ms back.
        let mut ctx = Context::new(client_clock.local_time(fd_sim::SimTime::ZERO), ProcessId(0));
        client.on_timer(&mut ctx, TIMER_POLL);
        let req = ctx
            .take_actions()
            .into_iter()
            .find_map(|a| match a {
                crate::layer::Action::Send(m) => Some(m),
                _ => None,
            })
            .unwrap();
        let mut sctx = Context::new(
            server_clock.local_time(fd_sim::SimTime::from_millis(150)),
            ProcessId(1),
        );
        server.on_deliver(&mut sctx, req);
        let resp = sctx
            .take_actions()
            .into_iter()
            .find_map(|a| match a {
                crate::layer::Action::Send(m) => Some(m),
                _ => None,
            })
            .unwrap();
        let mut cctx = Context::new(
            client_clock.local_time(fd_sim::SimTime::from_millis(200)),
            ProcessId(0),
        );
        client.on_deliver(&mut cctx, resp);
        let est = client.estimated_offset_us().unwrap();
        let err = (est - (-150_000)).abs();
        assert!(err <= 50_000, "err = {err}µs");
    }

    #[test]
    fn min_rtt_filter_prefers_the_cleanest_sample() {
        let mut client = NtpClientLayer::new(ProcessId(1), SimDuration::from_secs(1));
        // Two synthetic samples: a noisy high-RTT one and a clean one.
        client.window.push_back(NtpSample {
            offset_us: 9_999,
            rtt_us: 400_000,
        });
        client.window.push_back(NtpSample {
            offset_us: 100,
            rtt_us: 80_000,
        });
        assert_eq!(client.estimated_offset_us(), Some(100));
    }

    #[test]
    fn malformed_and_foreign_payloads_pass_through_or_drop() {
        let mut client = NtpClientLayer::new(ProcessId(1), SimDuration::from_secs(1));
        let mut ctx = Context::new(fd_sim::SimTime::ZERO, ProcessId(0));
        // Foreign data passes up untouched.
        client.on_deliver(
            &mut ctx,
            Message::data(
                ProcessId(1),
                ProcessId(0),
                0,
                fd_sim::SimTime::ZERO,
                vec![0x42],
            ),
        );
        let passed = ctx
            .take_actions()
            .iter()
            .filter(|a| matches!(a, crate::layer::Action::Deliver(_)))
            .count();
        assert_eq!(passed, 1);
        // Truncated NTP response is dropped without panicking.
        client.on_deliver(
            &mut ctx,
            Message::data(
                ProcessId(1),
                ProcessId(0),
                0,
                fd_sim::SimTime::ZERO,
                vec![NTP_RESPONSE, 1, 2],
            ),
        );
        assert_eq!(client.exchanges(), 0);
    }
}
