//! The simulation engine: runs layered processes over [`fd_net`] link models
//! inside a deterministic discrete-event loop.

use std::collections::HashMap;

use fd_net::LinkModel;
use fd_sim::{QueueBackend, SimTime, Simulator};
use fd_stat::{EventLog, ProcessId};

use crate::clock::ClockModel;
use crate::layer::TimerId;
use crate::message::Message;
use crate::process::{Effect, Process};

/// Events of the engine's discrete-event loop.
#[derive(Debug, Clone)]
enum EngineEvent {
    Delivery {
        to: ProcessId,
        msg: Message,
    },
    Timer {
        process: ProcessId,
        layer: usize,
        id: TimerId,
    },
}

/// A deterministic simulation of a set of processes connected by
/// unidirectional [`LinkModel`]s.
///
/// Processes are added with consecutive ids starting at 0; links are
/// configured per directed pair. Messages to pairs with no configured link
/// are dropped (and counted).
pub struct SimEngine {
    sim: Simulator<EngineEvent>,
    processes: Vec<Process>,
    clocks: Vec<ClockModel>,
    links: HashMap<(u16, u16), LinkModel>,
    log: EventLog,
    started: bool,
    dropped_unrouted: u64,
}

impl std::fmt::Debug for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEngine")
            .field("processes", &self.processes.len())
            .field("links", &self.links.len())
            .field("now", &self.sim.now())
            .field("events_processed", &self.sim.processed())
            .finish()
    }
}

impl Default for SimEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SimEngine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Creates an empty engine with storage pre-sized for the expected
    /// load: `pending_events` in-flight deliveries/timers at any instant
    /// and `log_events` recorded NekoStat events over the whole run.
    /// Callers that know their workload (heartbeat count × detectors)
    /// reserve once instead of reallocating through the hot path.
    pub fn with_capacity(pending_events: usize, log_events: usize) -> Self {
        Self {
            sim: Simulator::with_backend_and_capacity(QueueBackend::Heap, pending_events),
            processes: Vec::new(),
            clocks: Vec::new(),
            links: HashMap::new(),
            log: EventLog::with_capacity(log_events),
            started: false,
            dropped_unrouted: 0,
        }
    }

    /// Adds a process with a synchronised clock.
    ///
    /// # Panics
    ///
    /// Panics if the process's id is not the next consecutive index, or if
    /// the engine has already started.
    pub fn add_process(&mut self, process: Process) {
        assert!(!self.started, "cannot add processes after start");
        assert_eq!(
            process.id().0 as usize,
            self.processes.len(),
            "process ids must be consecutive from 0"
        );
        self.processes.push(process);
        self.clocks.push(ClockModel::synchronized());
    }

    /// Overrides the clock model of a process.
    ///
    /// # Panics
    ///
    /// Panics if the process does not exist.
    pub fn set_clock(&mut self, pid: ProcessId, clock: ClockModel) {
        self.clocks[pid.0 as usize] = clock;
    }

    /// Configures the unidirectional link `from → to`.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, link: LinkModel) {
        self.links.insert((from.0, to.0), link);
    }

    /// The current virtual (global) time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The NekoStat event log accumulated so far.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Consumes the engine, returning the final event log.
    pub fn into_event_log(self) -> EventLog {
        self.log
    }

    /// Messages dropped because no link was configured for their pair.
    pub fn dropped_unrouted(&self) -> u64 {
        self.dropped_unrouted
    }

    /// Mutable access to a process (for post-run extraction of layer state).
    ///
    /// # Panics
    ///
    /// Panics if the process does not exist.
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut Process {
        &mut self.processes[pid.0 as usize]
    }

    /// Observed statistics of a configured link, if present.
    pub fn link_stats(&self, from: ProcessId, to: ProcessId) -> Option<fd_net::LinkStats> {
        self.links.get(&(from.0, to.0)).map(|l| l.stats())
    }

    /// Runs the simulation until virtual time `horizon` (inclusive for
    /// events scheduled exactly at the horizon).
    ///
    /// The first call also starts every process (`on_start`, bottom-up).
    pub fn run_until(&mut self, horizon: SimTime) {
        if !self.started {
            self.started = true;
            for idx in 0..self.processes.len() {
                let pid = self.processes[idx].id();
                let local_now = self.clocks[idx].local_time(self.sim.now());
                let effects = self.processes[idx].start(local_now);
                self.apply_effects(pid, effects);
            }
        }
        while let Some((_, event)) = self.sim.next_event_before(horizon) {
            match event {
                EngineEvent::Delivery { to, msg } => {
                    let idx = to.0 as usize;
                    if idx >= self.processes.len() {
                        continue;
                    }
                    let local_now = self.clocks[idx].local_time(self.sim.now());
                    let effects = self.processes[idx].deliver_from_network(local_now, msg);
                    self.apply_effects(to, effects);
                }
                EngineEvent::Timer { process, layer, id } => {
                    let idx = process.0 as usize;
                    let local_now = self.clocks[idx].local_time(self.sim.now());
                    let effects = self.processes[idx].timer_fired(local_now, layer, id);
                    self.apply_effects(process, effects);
                }
            }
        }
    }

    /// Applies the engine-visible effects of one process callback.
    fn apply_effects(&mut self, pid: ProcessId, effects: Vec<Effect>) {
        let now = self.sim.now();
        for effect in effects {
            match effect {
                Effect::ToNetwork(msg) => {
                    let key = (msg.from.0, msg.to.0);
                    match self.links.get_mut(&key) {
                        Some(link) => {
                            if let Some(delay) = link.transmit(now).delay() {
                                let to = msg.to;
                                self.sim
                                    .schedule_at(now + delay, EngineEvent::Delivery { to, msg });
                            }
                        }
                        None => self.dropped_unrouted += 1,
                    }
                }
                Effect::Timer { layer, delay, id } => {
                    let global_delay = self.clocks[pid.0 as usize].global_duration(delay);
                    self.sim.schedule_at(
                        now + global_delay,
                        EngineEvent::Timer {
                            process: pid,
                            layer,
                            id,
                        },
                    );
                }
                Effect::Event(kind) => self.log.record(now, pid, kind),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Context, Layer};
    use fd_net::{ConstantDelay, NoLoss};
    use fd_sim::{DetRng, SimDuration};
    use fd_stat::EventKind;

    /// Sends one heartbeat per second, forever.
    struct Beater {
        to: ProcessId,
        period: SimDuration,
        seq: u64,
    }
    impl Layer for Beater {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context, _id: u64) {
            ctx.emit(EventKind::Sent { seq: self.seq });
            ctx.send(Message::heartbeat(
                ctx.process(),
                self.to,
                self.seq,
                ctx.now(),
            ));
            self.seq += 1;
            ctx.set_timer(self.period, 0);
        }
        fn name(&self) -> &str {
            "beater"
        }
    }

    /// Records received heartbeats as events.
    struct Sink;
    impl Layer for Sink {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            ctx.emit(EventKind::Received { seq: msg.seq });
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    fn two_process_engine(delay_ms: u64) -> SimEngine {
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(0)).with_layer(Sink));
        engine.add_process(Process::new(ProcessId(1)).with_layer(Beater {
            to: ProcessId(0),
            period: SimDuration::from_secs(1),
            seq: 0,
        }));
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            LinkModel::new(
                ConstantDelay::new(SimDuration::from_millis(delay_ms)),
                NoLoss,
                DetRng::seed_from(1),
            ),
        );
        engine
    }

    #[test]
    fn heartbeats_flow_end_to_end() {
        let mut engine = two_process_engine(200);
        engine.run_until(SimTime::from_secs(10));
        let log = engine.event_log();
        let sent = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Sent { .. }))
            .count();
        let received = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Received { .. }))
            .count();
        // Sends at 0..=10s inclusive horizon boundaries: 11 sends; the last
        // (at 10s) delivers at 10.2s, beyond the horizon.
        assert_eq!(sent, 11);
        assert_eq!(received, 10);
    }

    #[test]
    fn delivery_is_delayed_by_the_link() {
        let mut engine = two_process_engine(250);
        engine.run_until(SimTime::from_secs(2));
        let log = engine.event_log();
        let first_recv = log
            .iter()
            .find(|e| matches!(e.kind, EventKind::Received { seq: 0 }))
            .expect("first heartbeat received");
        assert_eq!(first_recv.at, SimTime::from_millis(250));
        assert_eq!(first_recv.process, ProcessId(0));
    }

    #[test]
    fn unrouted_messages_are_counted_not_delivered() {
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(0)).with_layer(Sink));
        engine.add_process(Process::new(ProcessId(1)).with_layer(Beater {
            to: ProcessId(0),
            period: SimDuration::from_secs(1),
            seq: 0,
        }));
        // No link configured.
        engine.run_until(SimTime::from_secs(5));
        assert!(engine.dropped_unrouted() > 0);
        let received = engine
            .event_log()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Received { .. }))
            .count();
        assert_eq!(received, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut engine = two_process_engine(100);
            engine.run_until(SimTime::from_secs(30));
            engine
                .event_log()
                .iter()
                .map(|e| (e.at, e.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_is_resumable() {
        let mut engine = two_process_engine(100);
        engine.run_until(SimTime::from_secs(3));
        let mid = engine.event_log().len();
        engine.run_until(SimTime::from_secs(6));
        assert!(engine.event_log().len() > mid);
        assert_eq!(engine.now(), SimTime::from_secs(6));
    }

    #[test]
    fn clock_offset_shifts_local_timestamps() {
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(0)).with_layer(Sink));
        engine.add_process(Process::new(ProcessId(1)).with_layer(Beater {
            to: ProcessId(0),
            period: SimDuration::from_secs(1),
            seq: 0,
        }));
        engine.set_clock(ProcessId(1), ClockModel::with_offset_us(5_000_000));
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            LinkModel::new(
                ConstantDelay::new(SimDuration::from_millis(100)),
                NoLoss,
                DetRng::seed_from(2),
            ),
        );
        engine.run_until(SimTime::from_secs(2));
        // Event log timestamps are global regardless of local clocks.
        let first_sent = engine
            .event_log()
            .iter()
            .find(|e| matches!(e.kind, EventKind::Sent { seq: 0 }))
            .unwrap();
        assert_eq!(first_sent.at, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn non_consecutive_process_ids_rejected() {
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(3)));
    }

    #[test]
    fn link_stats_are_queryable() {
        let mut engine = two_process_engine(100);
        engine.run_until(SimTime::from_secs(5));
        let stats = engine.link_stats(ProcessId(1), ProcessId(0)).unwrap();
        assert!(stats.sent >= 5);
        assert_eq!(stats.lost, 0);
        assert!(engine.link_stats(ProcessId(0), ProcessId(1)).is_none());
    }
}
