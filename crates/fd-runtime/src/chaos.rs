//! Fault injection across the layer stack.
//!
//! The paper measures QoS on a live wide-area network, where the monitor is
//! exposed to far more than message loss: operating-system scheduling stalls
//! freeze the monitor and release its timers in a burst, clocks step when
//! NTP re-synchronises, datagrams are duplicated or corrupted in flight, and
//! senders jitter their emission rate under load. This module reproduces
//! those conditions *deterministically*, so that robustness experiments are
//! replayable:
//!
//! * [`FaultPlan`] — a scripted (or seeded-random) schedule of
//!   [`FaultKind`]s with absolute activation offsets;
//! * [`ChaosLayer`] — wraps any [`Layer`] and injects **process-level**
//!   faults: stalls (deliveries and timer fires are held and released in a
//!   burst, like a GC pause) and clock steps (a cumulative offset applied to
//!   the wrapped layer's view of `Context::now`);
//! * [`ChaosLink`] — an in-stack layer injecting **wire-level** faults:
//!   heartbeat duplication, byte-level corruption (through the real
//!   [`fd_net::wire`] encoder/decoder, so corruption is detected — or not —
//!   exactly as it would be on a real UDP socket), and sender-rate jitter.
//!
//! Every injected fault is emitted as an [`EventKind::App`] event with one
//! of the `CHAOS_EVENT_*` codes, so experiments can count injections and
//! correlate QoS degradation from the event log alone (layers are not
//! reachable once an engine run completes).
//!
//! Scheduled *monitor crashes* ([`FaultKind::Crash`]) are part of the plan
//! but are not handled here: [`crate::SupervisorLayer`] consumes them via
//! [`FaultPlan::crash_events`].

use fd_net::wire::Heartbeat;
use fd_sim::{DetRng, SimDuration, SimTime};
use fd_stat::EventKind;

use crate::layer::{Action, Context, Layer, TimerId};
use crate::message::Message;

/// App-event code: a stall began (value = stall duration in µs).
pub const CHAOS_EVENT_STALL: u32 = 0xC4A0_0001;
/// App-event code: the clock stepped (value = `delta_us as u64`, two's
/// complement for negative steps).
pub const CHAOS_EVENT_CLOCK_STEP: u32 = 0xC4A0_0002;
/// App-event code: a heartbeat was duplicated (value = its sequence number).
pub const CHAOS_EVENT_DUPLICATE: u32 = 0xC4A0_0003;
/// App-event code: a corrupted heartbeat failed to decode and was dropped
/// (value = the original sequence number).
pub const CHAOS_EVENT_DECODE_FAILED: u32 = 0xC4A0_0004;
/// App-event code: a corrupted heartbeat still decoded but no longer matched
/// what was sent, and was dropped (value = the original sequence number).
pub const CHAOS_EVENT_CORRUPT_DROPPED: u32 = 0xC4A0_0005;
/// App-event code: an outgoing heartbeat was delayed by sender-rate jitter
/// (value = the extra delay in µs).
pub const CHAOS_EVENT_RATE_JITTER: u32 = 0xC4A0_0006;

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Freeze the wrapped layer for `duration`: deliveries and timer fires
    /// are held and released in a single burst when the stall ends (a
    /// GC-pause / scheduler-preemption model).
    Stall {
        /// How long the layer stays frozen.
        duration: SimDuration,
    },
    /// Step the wrapped layer's clock by `delta_us` (cumulative across
    /// steps; the skewed clock saturates at zero).
    ClockStep {
        /// Signed step in microseconds.
        delta_us: i64,
    },
    /// For `duration`, deliver `copies` extra copies of every heartbeat.
    Duplicate {
        /// Window length.
        duration: SimDuration,
        /// Extra copies per heartbeat.
        copies: u32,
    },
    /// For `duration`, corrupt each heartbeat with the given probability:
    /// the heartbeat is run through the real wire encoder, 1–3 random bits
    /// are flipped, and the result is decoded again.
    Corrupt {
        /// Window length.
        duration: SimDuration,
        /// Per-heartbeat corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// For `duration`, delay each outgoing message by a uniform random
    /// extra amount in `[0, max_extra]`.
    RateJitter {
        /// Window length.
        duration: SimDuration,
        /// Largest extra delay.
        max_extra: SimDuration,
    },
    /// Crash the supervised layer, keeping it down for `down_for` before
    /// restart attempts begin. Consumed by [`crate::SupervisorLayer`], not
    /// by [`ChaosLayer`]/[`ChaosLink`].
    Crash {
        /// Outage length before the first restart attempt.
        down_for: SimDuration,
    },
}

/// One scheduled fault: `kind` activates `at` after the run starts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Activation offset from the start of the run.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Plans are either scripted ([`FaultPlan::new`] + [`FaultPlan::with`]) or
/// seeded-random ([`FaultPlan::random`]); either way the schedule is fixed
/// before the run starts, so experiments replay bit-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty (quiet) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one scheduled fault, keeping the schedule sorted by activation
    /// time (stable: same-instant faults keep insertion order).
    pub fn with(mut self, at: SimDuration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Generates a random plan: fault activations form a Poisson-like
    /// process with mean gap `mean_gap` over `[0, horizon]`, each drawing a
    /// kind uniformly from `menu`.
    ///
    /// # Panics
    ///
    /// Panics if `menu` is empty or `mean_gap` is zero.
    pub fn random(
        seed: u64,
        horizon: SimDuration,
        menu: &[FaultKind],
        mean_gap: SimDuration,
    ) -> Self {
        assert!(!menu.is_empty(), "fault menu must not be empty");
        assert!(!mean_gap.is_zero(), "mean fault gap must be positive");
        let mut rng = DetRng::seed_from(seed);
        let mut events = Vec::new();
        let mut t = 0.0_f64;
        loop {
            t += rng.exponential(mean_gap.as_secs_f64());
            if t > horizon.as_secs_f64() {
                break;
            }
            let idx = (rng.uniform(0.0, menu.len() as f64) as usize).min(menu.len() - 1);
            events.push(FaultEvent {
                at: SimDuration::from_secs_f64(t),
                kind: menu[idx].clone(),
            });
        }
        Self { events }
    }

    /// The scheduled faults, sorted by activation time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled monitor crashes, as `(at, down_for)` pairs — the part
    /// of the plan consumed by [`crate::SupervisorLayer`].
    pub fn crash_events(&self) -> Vec<(SimDuration, SimDuration)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { down_for } => Some((e.at, down_for)),
                _ => None,
            })
            .collect()
    }
}

/// Timer-id namespace claimed by chaos wrappers: ids with the top bit set
/// belong to the wrapper, everything below passes through to the wrapped
/// layer untouched.
const CHAOS_TIMER_NS: u64 = 1 << 63;
const _: () = assert!(
    CHAOS_TIMER_NS & crate::layer::RESERVED_TIMER_BITS == CHAOS_TIMER_NS,
    "chaos namespace must live inside the reserved wrapper bits"
);
/// The stall-end timer (inside the chaos namespace).
const CHAOS_STALL_END: u64 = CHAOS_TIMER_NS | (1 << 62);
/// Largest timer id a wrapped layer may use.
const CHAOS_CHILD_MAX: u64 = CHAOS_TIMER_NS - 1;

/// A callback withheld from the wrapped layer during a stall.
#[derive(Debug)]
enum Held {
    Deliver(Message),
    Send(Message),
    Timer(TimerId),
}

/// Wraps a [`Layer`] and injects process-level faults from a [`FaultPlan`]:
/// stalls and clock steps. Wire-level faults in the plan are ignored here
/// (use [`ChaosLink`]); crashes are ignored too (use
/// [`crate::SupervisorLayer`]).
///
/// The wrapper is transparent when no fault is active: deliveries, sends,
/// timers and emitted events pass through unchanged. During a stall, every
/// delivery and timer fire addressed to the wrapped layer — and every send
/// passing down through the wrapper — is buffered, then replayed in arrival
/// order when the stall ends, all observing the stall-end clock: exactly the
/// burst of late timers a real monitor sees after a GC pause.
pub struct ChaosLayer {
    child: Box<dyn Layer>,
    plan: FaultPlan,
    clock_offset_us: i64,
    stalled_until: Option<SimTime>,
    held: Vec<Held>,
    stalls: u64,
    clock_steps: u64,
    released: u64,
}

impl std::fmt::Debug for ChaosLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLayer")
            .field("child", &self.child.name())
            .field("events", &self.plan.events().len())
            .field("stalled_until", &self.stalled_until)
            .field("held", &self.held.len())
            .finish()
    }
}

impl ChaosLayer {
    /// Wraps `child` under the given plan.
    pub fn new(child: impl Layer + 'static, plan: FaultPlan) -> Self {
        Self {
            child: Box::new(child),
            plan,
            clock_offset_us: 0,
            stalled_until: None,
            held: Vec::new(),
            stalls: 0,
            clock_steps: 0,
            released: 0,
        }
    }

    /// Stalls injected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Clock steps injected so far.
    pub fn clock_steps(&self) -> u64 {
        self.clock_steps
    }

    /// Callbacks released from stall buffers so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// `true` while a stall is holding the wrapped layer frozen.
    pub fn is_stalled(&self) -> bool {
        self.stalled_until.is_some()
    }

    /// The wrapped layer, for post-run inspection.
    pub fn child_mut(&mut self) -> &mut dyn Layer {
        &mut *self.child
    }

    /// The wrapped layer's view of the clock: real time plus the cumulative
    /// step offset, saturating at zero.
    fn skewed(&self, now: SimTime) -> SimTime {
        let t = now.as_micros() as i64;
        SimTime::from_micros(t.saturating_add(self.clock_offset_us).max(0) as u64)
    }

    /// Runs one child callback and replays its actions into the parent
    /// context. Timers pass through unchanged (the child must stay below the
    /// chaos namespace); deliveries continue upward, sends downward.
    fn with_child(&mut self, ctx: &mut Context, f: impl FnOnce(&mut dyn Layer, &mut Context)) {
        let mut child_ctx = Context::new(self.skewed(ctx.now()), ctx.process());
        f(&mut *self.child, &mut child_ctx);
        for action in child_ctx.take_actions() {
            match action {
                Action::Send(m) => ctx.send(m),
                Action::Deliver(m) => ctx.deliver(m),
                Action::SetTimer { delay, id } => {
                    assert!(
                        id <= CHAOS_CHILD_MAX,
                        "wrapped layer timer id {id} collides with the chaos namespace"
                    );
                    ctx.set_timer(delay, id);
                }
                Action::Emit(kind) => ctx.emit(kind),
            }
        }
    }

    /// Replays everything buffered during a stall, in arrival order.
    fn release_held(&mut self, ctx: &mut Context) {
        let held = std::mem::take(&mut self.held);
        self.released += held.len() as u64;
        for h in held {
            match h {
                Held::Deliver(m) => self.with_child(ctx, |c, cx| c.on_deliver(cx, m)),
                Held::Send(m) => ctx.send(m),
                Held::Timer(id) => self.with_child(ctx, |c, cx| c.on_timer(cx, id)),
            }
        }
    }

    /// Applies a scheduled fault (wire-level and crash kinds are not ours).
    fn apply(&mut self, ctx: &mut Context, kind: FaultKind) {
        match kind {
            FaultKind::Stall { duration } => {
                self.stalls += 1;
                ctx.emit(EventKind::App {
                    code: CHAOS_EVENT_STALL,
                    value: duration.as_micros(),
                });
                let end = ctx.now().saturating_add(duration);
                // Overlapping stalls merge into the longest one.
                if self.stalled_until.is_none_or(|u| end > u) {
                    self.stalled_until = Some(end);
                    ctx.set_timer(duration, CHAOS_STALL_END);
                }
            }
            FaultKind::ClockStep { delta_us } => {
                self.clock_steps += 1;
                self.clock_offset_us = self.clock_offset_us.saturating_add(delta_us);
                ctx.emit(EventKind::App {
                    code: CHAOS_EVENT_CLOCK_STEP,
                    value: delta_us as u64,
                });
            }
            FaultKind::Duplicate { .. }
            | FaultKind::Corrupt { .. }
            | FaultKind::RateJitter { .. }
            | FaultKind::Crash { .. } => {}
        }
    }
}

impl Layer for ChaosLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        self.with_child(ctx, |c, cx| c.on_start(cx));
        for (k, ev) in self.plan.events().iter().enumerate() {
            if matches!(
                ev.kind,
                FaultKind::Stall { .. } | FaultKind::ClockStep { .. }
            ) {
                ctx.set_timer(ev.at, CHAOS_TIMER_NS | k as u64);
            }
        }
    }

    fn on_send(&mut self, ctx: &mut Context, msg: Message) {
        if self.stalled_until.is_some() {
            self.held.push(Held::Send(msg));
        } else {
            ctx.send(msg);
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if self.stalled_until.is_some() {
            self.held.push(Held::Deliver(msg));
        } else {
            self.with_child(ctx, |c, cx| c.on_deliver(cx, msg));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        if id & CHAOS_TIMER_NS == 0 {
            // A wrapped-layer timer.
            if self.stalled_until.is_some() {
                self.held.push(Held::Timer(id));
            } else {
                self.with_child(ctx, |c, cx| c.on_timer(cx, id));
            }
            return;
        }
        if id == CHAOS_STALL_END {
            // A stale end timer from a merged shorter stall fires early:
            // only the end of the *longest* stall releases.
            if self.stalled_until.is_some_and(|u| ctx.now() >= u) {
                self.stalled_until = None;
                self.release_held(ctx);
            }
            return;
        }
        let idx = (id & !CHAOS_TIMER_NS) as usize;
        if let Some(ev) = self.plan.events().get(idx) {
            let kind = ev.kind.clone();
            self.apply(ctx, kind);
        }
    }

    fn name(&self) -> &str {
        "chaos"
    }
}

/// Jitter re-send timers live above the schedule-timer range.
const LINK_JITTER_BASE: u64 = 1 << 32;

/// In-stack wire-fault injector: heartbeat duplication, byte-level
/// corruption, and sender-rate jitter, each active inside scheduled windows
/// of a [`FaultPlan`].
///
/// Corruption is physical: the heartbeat is serialised with the real
/// [`fd_net::wire`] encoder, 1–3 random bits are flipped, and the bytes are
/// decoded again. A decode failure is counted and the message dropped —
/// exactly what [`crate::RealEngine`]'s receive path does with a mangled
/// datagram. A corrupted heartbeat that still decodes (the flips landed in
/// the sequence/timestamp fields, which no checksum protects) is counted
/// separately and also dropped, so detectors never observe fabricated
/// sequence numbers.
pub struct ChaosLink {
    plan: FaultPlan,
    rng: DetRng,
    dup_until: Option<(SimTime, u32)>,
    corrupt_until: Option<(SimTime, f64)>,
    jitter_until: Option<(SimTime, SimDuration)>,
    pending: Vec<(TimerId, Message)>,
    next_jitter_timer: u64,
    duplicated: u64,
    decode_failed: u64,
    corrupted_dropped: u64,
    delayed: u64,
}

impl std::fmt::Debug for ChaosLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLink")
            .field("events", &self.plan.events().len())
            .field("duplicated", &self.duplicated)
            .field("decode_failed", &self.decode_failed)
            .field("corrupted_dropped", &self.corrupted_dropped)
            .field("delayed", &self.delayed)
            .finish()
    }
}

impl ChaosLink {
    /// Creates the injector with its own deterministic random stream.
    pub fn new(plan: FaultPlan, rng: DetRng) -> Self {
        Self {
            plan,
            rng,
            dup_until: None,
            corrupt_until: None,
            jitter_until: None,
            pending: Vec::new(),
            next_jitter_timer: 0,
            duplicated: 0,
            decode_failed: 0,
            corrupted_dropped: 0,
            delayed: 0,
        }
    }

    /// Extra heartbeat copies delivered so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Corrupted heartbeats that failed to decode (counted and dropped).
    pub fn decode_failed(&self) -> u64 {
        self.decode_failed
    }

    /// Corrupted heartbeats that decoded to different contents (counted and
    /// dropped).
    pub fn corrupted_dropped(&self) -> u64 {
        self.corrupted_dropped
    }

    /// Outgoing messages delayed by rate jitter so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Reads a window: active value while `now` is inside it, `None` after
    /// it lapses.
    fn window<T: Copy>(slot: &mut Option<(SimTime, T)>, now: SimTime) -> Option<T> {
        match *slot {
            Some((until, v)) if now < until => Some(v),
            Some(_) => {
                *slot = None;
                None
            }
            None => None,
        }
    }

    /// Runs `msg` through encode → bit flips → decode. Returns the decoded
    /// heartbeat if the corruption went undetected, `None` on decode failure.
    fn corrupt(&mut self, msg: &Message) -> Result<Heartbeat, ()> {
        let original = Heartbeat::new(msg.from.0, msg.seq, msg.sent_at);
        let mut bytes = original.encode().to_vec();
        let flips = 1 + (self.rng.uniform(0.0, 3.0) as usize).min(2);
        for _ in 0..flips {
            let pos = (self.rng.uniform(0.0, bytes.len() as f64) as usize).min(bytes.len() - 1);
            let bit = (self.rng.uniform(0.0, 8.0) as u32).min(7);
            bytes[pos] ^= 1 << bit;
        }
        Heartbeat::decode(&bytes).map_err(|_| ())
    }
}

impl Layer for ChaosLink {
    fn on_start(&mut self, ctx: &mut Context) {
        for (k, ev) in self.plan.events().iter().enumerate() {
            if matches!(
                ev.kind,
                FaultKind::Duplicate { .. }
                    | FaultKind::Corrupt { .. }
                    | FaultKind::RateJitter { .. }
            ) {
                ctx.set_timer(ev.at, k as u64);
            }
        }
    }

    fn on_send(&mut self, ctx: &mut Context, msg: Message) {
        if let Some(max_extra) = Self::window(&mut self.jitter_until, ctx.now()) {
            let extra = self.rng.uniform(0.0, max_extra.as_secs_f64());
            let extra = SimDuration::from_secs_f64(extra);
            if !extra.is_zero() {
                self.delayed += 1;
                ctx.emit(EventKind::App {
                    code: CHAOS_EVENT_RATE_JITTER,
                    value: extra.as_micros(),
                });
                let id = LINK_JITTER_BASE + self.next_jitter_timer;
                self.next_jitter_timer += 1;
                self.pending.push((id, msg));
                ctx.set_timer(extra, id);
                return;
            }
        }
        ctx.send(msg);
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        let now = ctx.now();
        if msg.is_heartbeat() {
            if let Some(probability) = Self::window(&mut self.corrupt_until, now) {
                if self.rng.chance(probability) {
                    match self.corrupt(&msg) {
                        Err(()) => {
                            self.decode_failed += 1;
                            ctx.emit(EventKind::App {
                                code: CHAOS_EVENT_DECODE_FAILED,
                                value: msg.seq,
                            });
                            return;
                        }
                        Ok(decoded) => {
                            let original = Heartbeat::new(msg.from.0, msg.seq, msg.sent_at);
                            if decoded != original {
                                self.corrupted_dropped += 1;
                                ctx.emit(EventKind::App {
                                    code: CHAOS_EVENT_CORRUPT_DROPPED,
                                    value: msg.seq,
                                });
                                return;
                            }
                            // The flips cancelled out: the wire saw noise,
                            // the receiver saw a pristine heartbeat.
                        }
                    }
                }
            }
            if let Some(copies) = Self::window(&mut self.dup_until, now) {
                for _ in 0..copies {
                    self.duplicated += 1;
                    ctx.emit(EventKind::App {
                        code: CHAOS_EVENT_DUPLICATE,
                        value: msg.seq,
                    });
                    ctx.deliver(msg.clone());
                }
            }
        }
        ctx.deliver(msg);
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        if id >= LINK_JITTER_BASE {
            if let Some(pos) = self.pending.iter().position(|(t, _)| *t == id) {
                let (_, msg) = self.pending.remove(pos);
                ctx.send(msg);
            }
            return;
        }
        let Some(ev) = self.plan.events().get(id as usize) else {
            return;
        };
        let now = ctx.now();
        match ev.kind {
            FaultKind::Duplicate { duration, copies } => {
                self.dup_until = Some((now.saturating_add(duration), copies));
            }
            FaultKind::Corrupt {
                duration,
                probability,
            } => {
                self.corrupt_until =
                    Some((now.saturating_add(duration), probability.clamp(0.0, 1.0)));
            }
            FaultKind::RateJitter {
                duration,
                max_extra,
            } => {
                self.jitter_until = Some((now.saturating_add(duration), max_extra));
            }
            FaultKind::Stall { .. } | FaultKind::ClockStep { .. } | FaultKind::Crash { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "chaos-link"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_stat::ProcessId;

    fn hb(seq: u64) -> Message {
        Message::heartbeat(ProcessId(1), ProcessId(0), seq, SimTime::from_secs(seq))
    }

    /// Records every callback with the clock it observed, into state shared
    /// with the test (the wrapper owns the layer, so the test keeps a
    /// handle).
    #[derive(Default)]
    struct Tape {
        deliveries: Vec<(u64, SimTime)>,
        ticks: Vec<(TimerId, SimTime)>,
    }
    #[derive(Clone, Default)]
    struct Recorder {
        tape: std::sync::Arc<std::sync::Mutex<Tape>>,
    }
    impl Recorder {
        fn deliveries(&self) -> Vec<(u64, SimTime)> {
            self.tape.lock().unwrap().deliveries.clone()
        }
        fn ticks(&self) -> Vec<(TimerId, SimTime)> {
            self.tape.lock().unwrap().ticks.clone()
        }
    }
    impl Layer for Recorder {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.tape
                .lock()
                .unwrap()
                .deliveries
                .push((msg.seq, ctx.now()));
            ctx.deliver(msg);
        }
        fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
            self.tape.lock().unwrap().ticks.push((id, ctx.now()));
        }
        fn name(&self) -> &str {
            "recorder"
        }
    }

    fn timer_delays(actions: &[Action]) -> Vec<(SimDuration, TimerId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::SetTimer { delay, id } => Some((*delay, *id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plan_is_sorted_and_filters_crashes() {
        let plan = FaultPlan::new()
            .with(
                SimDuration::from_secs(9),
                FaultKind::ClockStep { delta_us: 5 },
            )
            .with(
                SimDuration::from_secs(2),
                FaultKind::Crash {
                    down_for: SimDuration::from_secs(3),
                },
            )
            .with(
                SimDuration::from_secs(4),
                FaultKind::Stall {
                    duration: SimDuration::from_secs(1),
                },
            );
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at.as_micros()).collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            plan.crash_events(),
            vec![(SimDuration::from_secs(2), SimDuration::from_secs(3))]
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_and_bounded() {
        let menu = [
            FaultKind::Stall {
                duration: SimDuration::from_millis(500),
            },
            FaultKind::ClockStep { delta_us: -2_000 },
        ];
        let horizon = SimDuration::from_secs(600);
        let a = FaultPlan::random(11, horizon, &menu, SimDuration::from_secs(60));
        let b = FaultPlan::random(11, horizon, &menu, SimDuration::from_secs(60));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "600 s at a 60 s mean gap should fault");
        assert!(a.events().iter().all(|e| e.at <= horizon));
        let c = FaultPlan::random(12, horizon, &menu, SimDuration::from_secs(60));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn stall_holds_and_releases_in_a_burst() {
        let plan = FaultPlan::new().with(
            SimDuration::from_secs(1),
            FaultKind::Stall {
                duration: SimDuration::from_secs(2),
            },
        );
        let rec = Recorder::default();
        let mut chaos = ChaosLayer::new(rec.clone(), plan);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        chaos.on_start(&mut ctx);
        let timers = timer_delays(&ctx.take_actions());
        assert_eq!(timers.len(), 1);
        let (delay, stall_id) = timers[0];
        assert_eq!(delay, SimDuration::from_secs(1));

        // The stall begins at t = 1 s.
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        chaos.on_timer(&mut ctx, stall_id);
        assert!(chaos.is_stalled());
        let actions = ctx.take_actions();
        let ends = timer_delays(&actions);
        assert_eq!(ends, vec![(SimDuration::from_secs(2), CHAOS_STALL_END)]);
        assert!(actions.iter().any(
            |a| matches!(a, Action::Emit(EventKind::App { code, .. }) if *code == CHAOS_EVENT_STALL)
        ));

        // Frozen: deliveries and child timers are held, sends are held too.
        let mut ctx = Context::new(SimTime::from_millis(1_500), ProcessId(0));
        chaos.on_deliver(&mut ctx, hb(7));
        chaos.on_timer(&mut ctx, 3);
        chaos.on_send(&mut ctx, hb(8));
        assert!(ctx.take_actions().is_empty());
        assert!(rec.deliveries().is_empty());

        // The stall ends at t = 3 s: everything replays at the end clock.
        let mut ctx = Context::new(SimTime::from_secs(3), ProcessId(0));
        chaos.on_timer(&mut ctx, CHAOS_STALL_END);
        assert!(!chaos.is_stalled());
        assert_eq!(chaos.released(), 3);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(m) if m.seq == 8)));
        assert_eq!(rec.deliveries(), vec![(7, SimTime::from_secs(3))]);
        assert_eq!(rec.ticks(), vec![(3, SimTime::from_secs(3))]);
        assert_eq!(chaos.stalls(), 1);
    }

    #[test]
    fn clock_steps_accumulate_and_saturate() {
        let plan = FaultPlan::new()
            .with(
                SimDuration::from_secs(1),
                FaultKind::ClockStep {
                    delta_us: -3_000_000,
                },
            )
            .with(
                SimDuration::from_secs(2),
                FaultKind::ClockStep { delta_us: 500_000 },
            );
        let rec = Recorder::default();
        let mut chaos = ChaosLayer::new(rec.clone(), plan);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        chaos.on_start(&mut ctx);
        let timers = timer_delays(&ctx.take_actions());
        assert_eq!(timers.len(), 2);

        // Apply the −3 s step; a delivery at t = 2 s observes max(0, −1 s).
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        chaos.on_timer(&mut ctx, timers[0].1);
        let mut ctx = Context::new(SimTime::from_secs(2), ProcessId(0));
        chaos.on_deliver(&mut ctx, hb(1));
        assert_eq!(rec.deliveries(), vec![(1, SimTime::ZERO)]);

        // Apply the +0.5 s step; a delivery at t = 4 s observes 1.5 s.
        let mut ctx = Context::new(SimTime::from_secs(2), ProcessId(0));
        chaos.on_timer(&mut ctx, timers[1].1);
        let mut ctx = Context::new(SimTime::from_secs(4), ProcessId(0));
        chaos.on_deliver(&mut ctx, hb(2));
        assert_eq!(rec.deliveries()[1], (2, SimTime::from_millis(1_500)));
        assert_eq!(chaos.clock_steps(), 2);
    }

    #[test]
    fn chaos_layer_is_transparent_when_quiet() {
        let rec = Recorder::default();
        let mut chaos = ChaosLayer::new(rec.clone(), FaultPlan::new());
        let mut ctx = Context::new(SimTime::from_secs(5), ProcessId(0));
        chaos.on_start(&mut ctx);
        assert!(ctx.take_actions().is_empty());
        chaos.on_deliver(&mut ctx, hb(1));
        chaos.on_send(&mut ctx, hb(2));
        chaos.on_timer(&mut ctx, 9);
        let actions = ctx.take_actions();
        // Delivery passes up, send passes down.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Deliver(m) if m.seq == 1)));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(m) if m.seq == 2)));
        assert_eq!(rec.deliveries(), vec![(1, SimTime::from_secs(5))]);
        assert_eq!(rec.ticks(), vec![(9, SimTime::from_secs(5))]);
        assert_eq!(chaos.name(), "chaos");
        assert_eq!(chaos.child_mut().name(), "recorder");
    }

    #[test]
    fn duplicate_window_copies_heartbeats_then_lapses() {
        let plan = FaultPlan::new().with(
            SimDuration::from_secs(1),
            FaultKind::Duplicate {
                duration: SimDuration::from_secs(2),
                copies: 2,
            },
        );
        let mut link = ChaosLink::new(plan, DetRng::seed_from(3));
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        link.on_start(&mut ctx);
        let timers = timer_delays(&ctx.take_actions());
        assert_eq!(timers.len(), 1);

        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        link.on_timer(&mut ctx, timers[0].1);
        // Inside the window: one original + two copies.
        let mut ctx = Context::new(SimTime::from_secs(2), ProcessId(0));
        link.on_deliver(&mut ctx, hb(4));
        let delivers = ctx
            .take_actions()
            .iter()
            .filter(|a| matches!(a, Action::Deliver(_)))
            .count();
        assert_eq!(delivers, 3);
        assert_eq!(link.duplicated(), 2);
        // After the window: untouched.
        let mut ctx = Context::new(SimTime::from_secs(4), ProcessId(0));
        link.on_deliver(&mut ctx, hb(5));
        let delivers = ctx
            .take_actions()
            .iter()
            .filter(|a| matches!(a, Action::Deliver(_)))
            .count();
        assert_eq!(delivers, 1);
        assert_eq!(link.duplicated(), 2);
    }

    #[test]
    fn corruption_counts_and_drops_without_panicking() {
        let plan = FaultPlan::new().with(
            SimDuration::ZERO,
            FaultKind::Corrupt {
                duration: SimDuration::from_secs(1_000),
                probability: 1.0,
            },
        );
        let mut link = ChaosLink::new(plan, DetRng::seed_from(17));
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        link.on_start(&mut ctx);
        let timers = timer_delays(&ctx.take_actions());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        link.on_timer(&mut ctx, timers[0].1);

        let mut delivered = 0u64;
        for seq in 0..200 {
            let mut ctx = Context::new(SimTime::from_secs(seq + 1), ProcessId(0));
            link.on_deliver(&mut ctx, hb(seq));
            delivered += ctx
                .take_actions()
                .iter()
                .filter(|a| matches!(a, Action::Deliver(_)))
                .count() as u64;
        }
        // Every heartbeat was corrupted, dropped or survived a cancelling
        // double-flip; the books must balance and most must be dropped.
        assert_eq!(
            delivered + link.decode_failed() + link.corrupted_dropped(),
            200
        );
        assert!(
            link.decode_failed() > 0,
            "some flips must hit magic/version"
        );
        assert!(
            link.corrupted_dropped() > 0,
            "some flips must hit unprotected fields"
        );
        assert!(delivered < 20, "cancelling flips must be rare: {delivered}");
    }

    #[test]
    fn rate_jitter_delays_sends_via_timers() {
        let plan = FaultPlan::new().with(
            SimDuration::ZERO,
            FaultKind::RateJitter {
                duration: SimDuration::from_secs(100),
                max_extra: SimDuration::from_millis(400),
            },
        );
        let mut link = ChaosLink::new(plan, DetRng::seed_from(9));
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        link.on_start(&mut ctx);
        let timers = timer_delays(&ctx.take_actions());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        link.on_timer(&mut ctx, timers[0].1);

        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(1));
        link.on_send(&mut ctx, hb(3));
        let actions = ctx.take_actions();
        // The send is withheld and a re-send timer armed instead.
        assert!(!actions.iter().any(|a| matches!(a, Action::Send(_))));
        let resend = timer_delays(&actions);
        assert_eq!(resend.len(), 1);
        assert!(resend[0].0 <= SimDuration::from_millis(400));
        assert_eq!(link.delayed(), 1);

        let mut ctx = Context::new(SimTime::from_secs(2), ProcessId(1));
        link.on_timer(&mut ctx, resend[0].1);
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(m) if m.seq == 3)));
        // The same timer firing twice does not resurrect the message.
        let mut ctx = Context::new(SimTime::from_secs(3), ProcessId(1));
        link.on_timer(&mut ctx, resend[0].1);
        assert!(ctx.take_actions().is_empty());
        assert_eq!(link.name(), "chaos-link");
    }

    #[test]
    fn same_seed_same_chaos() {
        let plan = FaultPlan::new().with(
            SimDuration::ZERO,
            FaultKind::Corrupt {
                duration: SimDuration::from_secs(1_000),
                probability: 0.5,
            },
        );
        let run = |seed: u64| {
            let mut link = ChaosLink::new(plan.clone(), DetRng::seed_from(seed));
            let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
            link.on_start(&mut ctx);
            let timers = timer_delays(&ctx.take_actions());
            let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
            link.on_timer(&mut ctx, timers[0].1);
            for seq in 0..100 {
                let mut ctx = Context::new(SimTime::from_secs(seq + 1), ProcessId(0));
                link.on_deliver(&mut ctx, hb(seq));
            }
            (link.decode_failed(), link.corrupted_dropped())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
