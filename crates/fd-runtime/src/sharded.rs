//! The sharded many-source monitor engine.
//!
//! [`SimEngine`](crate::SimEngine) runs the full layered Neko-style stack —
//! right for reproducing the paper's two-process experiments, far too heavy
//! for a monitor watching a million heartbeat sources. [`ShardedEngine`] is
//! the scale path: a compact event loop that drives one
//! [`SourceBank`](fd_core::SourceBank) per shard, with the source
//! population partitioned across worker threads. Large shards run on the
//! hierarchical [`TimerWheel`](fd_sim::TimerWheel); small ones stay on
//! the binary heap, which is faster until its log n and cache misses
//! outgrow the wheel's constant cascade cost (the backends are
//! bit-identical, so the pick never shows in the results).
//!
//! # Shard ownership
//!
//! Sources are split into contiguous blocks, one block per shard. Each
//! shard owns its block completely — its own virtual clock, timer wheel,
//! source bank, and event log — so worker threads share **no mutable
//! state** and run without locks.
//!
//! # Determinism and shard independence
//!
//! Everything a source does is a function of the global seed and its
//! **global** source id only:
//!
//! * its random stream is seeded by `splitmix64(seed, global_id)` —
//!   never by shard id or thread interleaving;
//! * heartbeats are chained per source (processing arrival *k* schedules
//!   arrival *k+1*), so a source's schedule never depends on its
//!   neighbours;
//! * per-source detector state in the bank is disjoint between sources.
//!
//! Each monitor event is therefore emitted at a (virtual time, global
//! source, per-source sequence) coordinate that no amount of resharding
//! can change. Instead of retaining and merge-sorting the logs to prove
//! it, each shard folds every emission into a [`StreamDigest`] keyed by
//! exactly that coordinate; the order-independent combination makes the
//! merged digest **bit-identical for any shard count** (proven by test:
//! 1, 2, 5 and 8 shards) without keeping a single event. QoS metrics
//! stream the same way: each shard folds its edges into a
//! [`QosAccumulator`], and the integer-µs [`QosSummary`] merge is exact,
//! so the per-combo roll-ups are shard-count invariant too. The full
//! retained log (and its classical fingerprint) stays available behind
//! [`ShardedConfig::retain_events`] for debugging and differential tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

use fd_core::combinations::{all_combinations, Combination};
use fd_core::detector::FdTransition;
use fd_core::source_bank::SourceBank;
use fd_sim::{DetRng, QueueBackend, SimDuration, SimTime, Simulator};
use fd_stat::{EventSink, QosAccumulator, QosSummary};

use crate::digest::StreamDigest;
use crate::supervisor::{backoff_us, RestartMode};

/// Configuration of a sharded many-source run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of monitored heartbeat sources.
    pub sources: usize,
    /// Number of worker shards (threads). Results are independent of this.
    pub shards: usize,
    /// Heartbeat period η, shared by all sources.
    pub eta: SimDuration,
    /// Heartbeats sent per source. A run drains to quiescence: after the
    /// last heartbeat the trailing deadline fires (every combination's
    /// final `StartSuspect`) are still processed.
    pub cycles: u64,
    /// Root seed; every per-source stream derives from it.
    pub seed: u64,
    /// Per-heartbeat loss probability.
    pub loss: f64,
    /// Deterministic base one-way delay, milliseconds.
    pub base_delay_ms: f64,
    /// Uniform jitter added on top of the base delay, milliseconds.
    pub jitter_ms: f64,
    /// Probability a heartbeat hits a delay spike (late arrival — this is
    /// what exercises suspect/trust edges).
    pub spike_prob: f64,
    /// Multiplier applied to the delay on a spike.
    pub spike_factor: f64,
    /// Retain every monitor event and compute the classical merged-log
    /// fingerprint. Off by default: the streaming digest and QoS
    /// summaries make retention unnecessary, and at 10⁶ sources the log
    /// dominates peak memory. Opt in for debugging and differential
    /// tests.
    pub retain_events: bool,
    /// The detector combinations every source runs.
    pub combos: Vec<Combination>,
    /// Optional deterministic source-crash injection: a seeded fraction
    /// of sources crash once mid-run and stay silent for a fixed number
    /// of cycles. `None` (the default) injects nothing and leaves every
    /// existing digest untouched. The crash fate of a source is a
    /// function of the root seed and its **global** id only — like its
    /// delay stream — so runs stay shard-count invariant.
    pub source_crashes: Option<SourceCrashPlan>,
}

/// Deterministic source-crash schedule for [`ShardedConfig`]. Crashing
/// sources give the QoS roll-ups real detection samples (T_D) and
/// undetected-crash counts — the numbers warm-vs-cold recovery moves.
#[derive(Debug, Clone, Copy)]
pub struct SourceCrashPlan {
    /// Fraction of sources that crash (seeded selection in `[0, 1]`).
    pub frac: f64,
    /// Heartbeat cycles a crashed source stays down (≥ 1). The window
    /// always closes before the run's final cycle, so every crash is
    /// classified (detected or undetected) strictly before quiescence —
    /// which is what keeps the per-shard QoS close reshard-invariant.
    pub down_cycles: u64,
}

impl ShardedConfig {
    /// A full paper-grid configuration with WAN-flavoured defaults: 1 s
    /// heartbeats, 1% loss, 100 ms ± 50 ms delay, 1% spikes at 40×.
    pub fn paper_grid(sources: usize, cycles: u64, seed: u64) -> Self {
        Self {
            sources,
            shards: 1,
            eta: SimDuration::from_secs(1),
            cycles,
            seed,
            loss: 0.01,
            base_delay_ms: 100.0,
            jitter_ms: 50.0,
            spike_prob: 0.01,
            spike_factor: 40.0,
            retain_events: false,
            combos: all_combinations(),
            source_crashes: None,
        }
    }
}

/// One suspect/trust edge of the merged run log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Virtual time of the edge.
    pub at: SimTime,
    /// Global source id.
    pub source: u32,
    /// Combination index.
    pub combo: u32,
    /// The edge.
    pub transition: FdTransition,
}

/// A sink for periodic in-run publication of each shard's live suspicion
/// state — the hook the serving plane (`fd-serve`) attaches to.
///
/// The engine calls [`publish`](ShardPublisher::publish) from the shard's
/// **worker thread**, strictly after the events at the publication instant
/// have been processed, so the bank passed in is exactly the shard's
/// state at virtual time `now`. Implementations own any cross-thread
/// hand-off (fd-serve's `SuspectView` copies the bitmap words into a
/// seqlock-published buffer); the engine itself shares nothing between
/// shards and never blocks on the sink.
pub trait ShardPublisher: Sync {
    /// Publishes the state of shard `shard` (owning global sources
    /// `start .. start + bank.sources()`) as of virtual time `now`.
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime);

    /// Called once when a supervised shard exhausts its restart budget
    /// and is declared dead: the block `start .. start + len` will
    /// receive no further publications this run, so its served state is
    /// stale from here on. Default: ignore.
    fn mark_degraded(&self, _shard: usize, _start: usize, _len: usize) {}
}

/// The publish-pacing policy of a shard: either a fixed virtual-time
/// timer or a churn-driven controller between a floor and a ceiling.
///
/// Under the adaptive policy a shard publishes as soon as the suspicion
/// edges recorded since its last publication reach `churn_threshold` —
/// but never more often than once per `min` of virtual time — and
/// otherwise on a deadline that doubles from `min` toward `max` while
/// the shard is quiescent, snapping back to `min` whenever churn
/// triggers. Staleness is then bounded by churn latency (edges force a
/// publish) rather than a global timer, so it stays flat in source
/// count, while a quiet shard converges to one publish per `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishCadence {
    /// Floor on the time between publications, and the initial deadline
    /// interval. Must be positive.
    pub min: SimDuration,
    /// Ceiling the quiescent deadline backs off toward. `min == max`
    /// pins the deadline grid.
    pub max: SimDuration,
    /// Suspicion edges (start + end transitions) since the last
    /// publication that force an immediate publish. `u64::MAX` disables
    /// the churn trigger.
    pub churn_threshold: u64,
}

impl PublishCadence {
    /// The fixed timer: publish every `every` of virtual time on a
    /// fixed grid anchored at the run start, never early.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn fixed(every: SimDuration) -> Self {
        assert!(!every.is_zero(), "publish interval must be positive");
        Self {
            min: every,
            max: every,
            churn_threshold: u64::MAX,
        }
    }

    /// A churn-driven cadence: publish once `churn_threshold` edges
    /// accumulate (rate-limited to one publish per `min`), back off
    /// toward `max` when quiet.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero, `max < min`, or the threshold is zero.
    pub fn adaptive(min: SimDuration, max: SimDuration, churn_threshold: u64) -> Self {
        assert!(!min.is_zero(), "publish interval must be positive");
        assert!(max >= min, "cadence ceiling must be at least the floor");
        assert!(churn_threshold > 0, "churn threshold must be positive");
        Self {
            min,
            max,
            churn_threshold,
        }
    }
}

/// The contiguous block partition [`ShardedEngine::run`] uses: `(start,
/// len)` per shard, after clamping the shard count to the source count.
/// Exposed so a serving-plane view can be laid out to match the engine's
/// shards exactly. Every returned block is non-empty; zero sources yield
/// an empty partition (there is nothing to shard), never a zero-length
/// block.
pub fn partition(sources: usize, shards: usize) -> Vec<(usize, usize)> {
    if sources == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, sources);
    let q = sources / shards;
    let r = sources % shards;
    (0..shards)
        .map(|s| (s * q + s.min(r), q + usize::from(s < r)))
        .collect()
}

/// The result of a sharded run: streaming digest and QoS roll-ups, plus
/// the retained merged log when [`ShardedConfig::retain_events`] is on.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Order-independent streaming digest over every `(time, global
    /// source, per-source seq, combo, edge)` tuple. Shard-count invariant
    /// and computed on every run, retained or not.
    pub digest: u64,
    /// Per-combination QoS roll-ups folded online by the shards and
    /// merged exactly (integer-µs algebra) — shard-count invariant
    /// bit for bit. Indexed like `config.combos`.
    pub qos: Vec<QosSummary>,
    /// FNV-1a fingerprint of the merged, sorted event log. Only computed
    /// when `retain_events` is set; `0` otherwise.
    pub fingerprint: u64,
    /// Merged monitor events, sorted by `(time, source, per-source seq)`.
    /// Empty unless `retain_events` is set.
    pub events: Vec<MonitorEvent>,
    /// Heartbeats delivered (arrival events processed).
    pub heartbeats: u64,
    /// Heartbeats dropped by the loss model.
    pub lost: u64,
    /// `StartSuspect` edges emitted (counted at the shards).
    pub start_suspects: u64,
    /// `EndSuspect` edges emitted (counted at the shards).
    pub end_suspects: u64,
    /// Shard count the run actually used.
    pub shards: usize,
    /// Wall-clock duration of the parallel section (spawn → merge done).
    pub wall: std::time::Duration,
    /// Per-shard supervision outcomes. Empty on unsupervised runs; one
    /// row per shard (dead or alive) under
    /// [`ShardedEngine::run_supervised`].
    pub shard_status: Vec<ShardStatus>,
}

/// Compact per-shard simulation event: no message payloads, no layer
/// stack — just the two things a monitor reacts to.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Heartbeat `seq` from a (shard-local) source arrives. The sequence is
    /// carried as `u32` to keep the event at 12 bytes — two of these sit in
    /// the timer wheel per source, so the width is paid a million times
    /// over. The bank's own u32 microsecond horizon caps any run far below
    /// 2^32 heartbeats per source (see [`seq32`]).
    Arrival { local: u32, seq: u32 },
    /// A deadline timer for a (shard-local) source fires.
    Deadline { local: u32 },
    /// A (shard-local) source crashes: it stops sending and the QoS
    /// accumulator opens its crash window.
    Crash { local: u32 },
    /// A crashed source comes back; the accumulator classifies the crash
    /// (detected or undetected) at this instant.
    Restore { local: u32 },
}

/// Narrows a per-source heartbeat sequence for in-flight storage in [`Ev`].
fn seq32(seq: u64) -> u32 {
    u32::try_from(seq).expect("heartbeat seq exceeds u32 (beyond the simulable horizon)")
}

/// What one shard hands back for merging. `events` is non-empty only
/// under `retain_events`; `events[i].1` is the emitting source's private
/// emission counter — the shard-invariant tie-breaker.
struct ShardOut {
    events: Vec<(MonitorEvent, u32)>,
    digest: StreamDigest,
    qos: Vec<QosSummary>,
    heartbeats: u64,
    lost: u64,
    start_suspects: u64,
    end_suspects: u64,
}

/// Per-shard event receiver: stamps every suspect/trust edge with the
/// emitting source's private emission counter, folds the stamped tuple
/// into the shard's [`StreamDigest`] and [`QosAccumulator`], and (under
/// `retain_events`) also keeps it for the merged log.
///
/// The accumulator is fed **shard-local** source indices (its state
/// arrays are sized to the shard block); the digest and retained log use
/// **global** ids, which is what makes them reshard-invariant.
struct ShardRec {
    start: u32,
    emitted: Vec<u32>,
    digest: StreamDigest,
    acc: QosAccumulator,
    retained: Option<Vec<(MonitorEvent, u32)>>,
    start_suspects: u64,
    end_suspects: u64,
}

impl ShardRec {
    fn new(start: usize, len: usize, n_combos: usize, retain: bool) -> Self {
        Self {
            start: start as u32,
            emitted: vec![0; len],
            digest: StreamDigest::new(),
            acc: QosAccumulator::summary(len, n_combos),
            retained: retain.then(Vec::new),
            start_suspects: 0,
            end_suspects: 0,
        }
    }

    fn edge(&mut self, at: SimTime, local: u32, combo: u32, transition: FdTransition) {
        let l = local as usize;
        let seq = self.emitted[l];
        self.emitted[l] = seq + 1;
        let source = self.start + local;
        let is_start = transition == FdTransition::StartSuspect;
        // The shard-invariant coordinate of this edge, fixed-width LE:
        // (virtual µs, global source, per-source seq, combo, edge kind).
        let mut tuple = [0u8; 21];
        tuple[..8].copy_from_slice(&at.as_micros().to_le_bytes());
        tuple[8..12].copy_from_slice(&source.to_le_bytes());
        tuple[12..16].copy_from_slice(&seq.to_le_bytes());
        tuple[16..20].copy_from_slice(&combo.to_le_bytes());
        tuple[20] = u8::from(is_start);
        self.digest.fold_bytes(&tuple);
        if is_start {
            self.start_suspects += 1;
        } else {
            self.end_suspects += 1;
        }
        if let Some(events) = &mut self.retained {
            events.push((
                MonitorEvent {
                    at,
                    source,
                    combo,
                    transition,
                },
                seq,
            ));
        }
    }
}

impl EventSink for ShardRec {
    fn start_suspect(&mut self, at: SimTime, local: u32, combo: u32) {
        self.edge(at, local, combo, FdTransition::StartSuspect);
        self.acc.start_suspect(at, local, combo);
    }

    fn end_suspect(&mut self, at: SimTime, local: u32, combo: u32) {
        self.edge(at, local, combo, FdTransition::EndSuspect);
        self.acc.end_suspect(at, local, combo);
    }

    fn crash(&mut self, at: SimTime, local: u32) {
        self.acc.crash(at, local);
    }

    fn restore(&mut self, at: SimTime, local: u32) {
        self.acc.restore(at, local);
    }
}

/// The sharded engine itself: validated config + `run()`.
///
/// ```
/// use fd_runtime::sharded::{ShardedConfig, ShardedEngine};
///
/// let mut config = ShardedConfig::paper_grid(16, 4, 7);
/// config.shards = 4;
/// let report = ShardedEngine::new(config).run();
/// assert_eq!(report.heartbeats + report.lost, 16 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    config: ShardedConfig,
}

impl ShardedEngine {
    /// Creates an engine over a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero sources/shards/
    /// cycles, η = 0, an empty grid, or a source count beyond `u32`).
    pub fn new(config: ShardedConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.cycles > 0, "need at least one cycle");
        assert!(!config.eta.is_zero(), "heartbeat period must be positive");
        assert!(!config.combos.is_empty(), "need at least one combination");
        assert!(
            u32::try_from(config.sources).is_ok(),
            "source count must fit in u32"
        );
        if let Some(plan) = &config.source_crashes {
            assert!(
                (0.0..=1.0).contains(&plan.frac),
                "crash fraction must be in [0, 1]"
            );
            assert!(plan.down_cycles >= 1, "crash window must span a cycle");
            assert!(
                config.cycles >= plan.down_cycles + 2,
                "crash window must close before the run ends"
            );
        }
        Self { config }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Runs the configured workload across `config.shards` worker threads
    /// and merges the per-shard logs deterministically.
    pub fn run(&self) -> ShardedReport {
        self.run_inner(None, None)
    }

    /// Like [`run`](Self::run), publishing each shard's live state to
    /// `publisher` every `every` of **virtual** time (and once more at
    /// quiescence, so the final state is always visible).
    ///
    /// Publication is pure observation: the merged log, fingerprint and
    /// counters are bit-identical to [`run`](Self::run) for the same
    /// configuration (the publisher sees state, it cannot change it).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_published(
        &self,
        every: SimDuration,
        publisher: &dyn ShardPublisher,
    ) -> ShardedReport {
        self.run_inner(Some((PublishCadence::fixed(every), publisher)), None)
    }

    /// Like [`run_published`](Self::run_published) with a full
    /// [`PublishCadence`]: the churn-driven adaptive controller, or
    /// [`PublishCadence::fixed`] for the plain timer.
    ///
    /// Publication stays pure observation — results are bit-identical to
    /// [`run`](Self::run) whatever the cadence.
    pub fn run_published_with(
        &self,
        cadence: PublishCadence,
        publisher: &dyn ShardPublisher,
    ) -> ShardedReport {
        self.run_inner(Some((cadence, publisher)), None)
    }

    /// Like [`run`](Self::run), under shard supervision: worker panics
    /// are contained per shard with `catch_unwind`, the plan's faults are
    /// injected, crashed shards restart warm or cold from periodic
    /// checkpoints under a clamped exponential backoff, and a shard that
    /// exhausts its restart budget goes dead — surviving shards keep
    /// folding, the dead block is excluded from the merged report, and
    /// its row in [`ShardedReport::shard_status`] carries the partial
    /// contribution from its last checkpoint.
    pub fn run_supervised(&self, sup: &SupervisionConfig) -> ShardedReport {
        self.run_inner(None, Some(sup))
    }

    /// Supervision and periodic publication combined — the full serving
    /// stack under chaos. A dead shard's block is reported to the
    /// publisher via [`ShardPublisher::mark_degraded`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_supervised_published(
        &self,
        sup: &SupervisionConfig,
        every: SimDuration,
        publisher: &dyn ShardPublisher,
    ) -> ShardedReport {
        self.run_inner(Some((PublishCadence::fixed(every), publisher)), Some(sup))
    }

    /// Supervision plus a full [`PublishCadence`] — see
    /// [`run_published_with`](Self::run_published_with).
    pub fn run_supervised_published_with(
        &self,
        sup: &SupervisionConfig,
        cadence: PublishCadence,
        publisher: &dyn ShardPublisher,
    ) -> ShardedReport {
        self.run_inner(Some((cadence, publisher)), Some(sup))
    }

    fn run_inner(
        &self,
        publish: Option<(PublishCadence, &dyn ShardPublisher)>,
        sup: Option<&SupervisionConfig>,
    ) -> ShardedReport {
        let cfg = &self.config;
        let blocks = partition(cfg.sources, cfg.shards);
        let shards = blocks.len();
        let started = Instant::now();

        let mut outs: Vec<ShardOut> = Vec::with_capacity(shards);
        let mut shard_status: Vec<ShardStatus> = Vec::new();
        match sup {
            None => {
                if shards == 1 {
                    outs.push(run_shard(cfg, 0, 0, cfg.sources, publish));
                } else {
                    thread::scope(|scope| {
                        let handles: Vec<_> = blocks
                            .iter()
                            .enumerate()
                            .map(|(s, &(start, len))| {
                                scope.spawn(move || run_shard(cfg, s, start, len, publish))
                            })
                            .collect();
                        for h in handles {
                            outs.push(h.join().expect("shard worker panicked"));
                        }
                    });
                }
            }
            Some(sup) => {
                let mut results: Vec<(Option<ShardOut>, ShardStatus)> = Vec::with_capacity(shards);
                if shards == 1 {
                    results.push(run_shard_supervised(cfg, sup, 0, 0, cfg.sources, publish));
                } else {
                    thread::scope(|scope| {
                        let handles: Vec<_> = blocks
                            .iter()
                            .enumerate()
                            .map(|(s, &(start, len))| {
                                scope.spawn(move || {
                                    run_shard_supervised(cfg, sup, s, start, len, publish)
                                })
                            })
                            .collect();
                        for h in handles {
                            // Worker panics are contained inside the
                            // supervisor; a panic escaping here is a bug
                            // in the supervisor itself.
                            results.push(h.join().expect("shard supervisor panicked"));
                        }
                    });
                }
                for (out, st) in results {
                    shard_status.push(st);
                    outs.extend(out);
                }
            }
        }

        let mut heartbeats = 0;
        let mut lost = 0;
        let mut start_suspects = 0;
        let mut end_suspects = 0;
        let mut digest = StreamDigest::new();
        let mut qos: Vec<QosSummary> = vec![QosSummary::new(); cfg.combos.len()];
        let total: usize = outs.iter().map(|o| o.events.len()).sum();
        let mut merged: Vec<(MonitorEvent, u32)> = Vec::with_capacity(total);
        for out in outs {
            heartbeats += out.heartbeats;
            lost += out.lost;
            start_suspects += out.start_suspects;
            end_suspects += out.end_suspects;
            digest.merge(&out.digest);
            for (acc, shard) in qos.iter_mut().zip(&out.qos) {
                acc.merge(shard);
            }
            merged.extend(out.events);
        }

        // The retained path: merge-sort the per-shard logs by (virtual
        // time, global source, per-source emission seq) — unique and
        // independent of sharding — and fingerprint the result. Skipped
        // entirely (fingerprint 0, no events) unless retention is on.
        let mut fingerprint: u64 = 0;
        let events: Vec<MonitorEvent> = if cfg.retain_events {
            merged.sort_unstable_by_key(|(e, seq)| (e.at, e.source, *seq));
            fingerprint = 0xcbf2_9ce4_8422_2325;
            merged
                .into_iter()
                .map(|(e, _)| {
                    fnv1a(&mut fingerprint, &e.at.as_micros().to_le_bytes());
                    fnv1a(&mut fingerprint, &e.source.to_le_bytes());
                    fnv1a(&mut fingerprint, &e.combo.to_le_bytes());
                    fnv1a(
                        &mut fingerprint,
                        &[u8::from(e.transition == FdTransition::StartSuspect)],
                    );
                    e
                })
                .collect()
        } else {
            debug_assert!(merged.is_empty());
            Vec::new()
        };

        ShardedReport {
            digest: digest.value(),
            qos,
            fingerprint,
            events,
            heartbeats,
            lost,
            start_suspects,
            end_suspects,
            shards,
            wall: started.elapsed(),
            shard_status,
        }
    }
}

/// One FNV-1a step over a byte string.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Derives the per-source stream seed from the root seed and the
/// **global** source id (splitmix64 finaliser), so streams survive
/// resharding untouched.
fn source_seed(seed: u64, global: u32) -> u64 {
    let mut z = seed ^ u64::from(global).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tag mixed into the root seed for the crash-fate stream, so whether a
/// source crashes never correlates with its delay/loss stream.
const CRASH_STREAM_TAG: u64 = 0xc4a5_0b5e_55ed_c0de;

/// The crash window of a global source under the config's plan:
/// heartbeat sequences `[crash, resume)` are never sent, the crash event
/// fires at `η · crash` and the restore at `η · resume`. `None` when no
/// plan is set or this source does not participate. Like the delay
/// stream, the window is a function of `(seed, global id)` only.
fn crash_window(cfg: &ShardedConfig, global: u32) -> Option<(u64, u64)> {
    let plan = cfg.source_crashes?;
    let h = source_seed(cfg.seed ^ CRASH_STREAM_TAG, global);
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if u >= plan.frac {
        return None;
    }
    // `cycles >= down_cycles + 2` (validated), so span >= 1 and the
    // window [c, c + down) satisfies 1 <= c and c + down <= cycles - 1:
    // at least one heartbeat is drawn after the restore, and the restore
    // instant precedes the final nominal send.
    let span = cfg.cycles - plan.down_cycles - 1;
    let c = 1 + source_seed(h, global) % span;
    Some((c, c + plan.down_cycles))
}

/// Per-source heartbeat model: loss, delay, spikes — one private stream.
struct SourceModel {
    rng: DetRng,
}

impl SourceModel {
    /// Draws the fate of heartbeat `seq`: `None` if lost, otherwise its
    /// one-way delay. Draw order is fixed (loss, spike, jitter) so the
    /// stream is identical however callers interleave sources.
    fn draw(&mut self, cfg: &ShardedConfig) -> Option<SimDuration> {
        let lost = self.rng.chance(cfg.loss);
        let spike = self.rng.chance(cfg.spike_prob);
        let jitter = self.rng.uniform(0.0, cfg.jitter_ms.max(0.0));
        if lost {
            return None;
        }
        let mut delay_ms = cfg.base_delay_ms.max(0.0) + jitter;
        if spike {
            delay_ms *= cfg.spike_factor.max(1.0);
        }
        Some(SimDuration::from_millis_f64(delay_ms))
    }
}

/// Below this many sources per shard the binary heap's cache locality
/// beats the wheel's constant-time ops (measured crossover ≈ 10⁴ pending
/// timers); above it the heap's log n and scattered sift paths lose.
/// The two backends are bit-identical (proven by test), so the pick is
/// invisible in the results — it only moves the crossover cost.
const WHEEL_MIN_SOURCES: usize = 16_384;

/// A between-events checkpoint of one [`ShardWorker`]: everything needed
/// to rebuild the worker and resume bit-identically (warm) or with the
/// detector's memory wiped (cold). Deadline timers are deliberately
/// absent — they are re-derived from the restored bank's own per-source
/// wakeups, and any superseded timers the original run still carried
/// were provably no-op checks.
struct ShardCheckpoint {
    /// Versioned [`SourceBank::snapshot_bytes`] image.
    bank: Vec<u8>,
    /// Per-source delay/loss RNG streams, mid-stream.
    models: Vec<DetRng>,
    /// In-flight heartbeat per source: `(seq, arrival µs)`.
    pending: Vec<Option<(u32, u64)>>,
    /// Crash-window phase per source: 0 = crash pending, 1 = down
    /// (restore pending), 2 = closed or no window.
    crash_phase: Vec<u8>,
    /// Per-source emission counters (digest tie-breakers).
    emitted: Vec<u32>,
    digest: StreamDigest,
    acc: QosAccumulator,
    retained: Option<Vec<(MonitorEvent, u32)>>,
    start_suspects: u64,
    end_suspects: u64,
    heartbeats: u64,
    lost: u64,
    last_at_us: u64,
    next_pub_us: Option<u64>,
    last_pub_us: u64,
    pub_interval_us: u64,
    edges_at_pub: u64,
    events_done: u64,
}

/// One shard's event loop, opened up as a struct so a supervisor can
/// step it in bounded slices, checkpoint it between events, and rebuild
/// it after a contained panic. [`run_shard`] drives it straight to
/// quiescence — the unsupervised fast path is the same code.
struct ShardWorker<'a> {
    cfg: &'a ShardedConfig,
    shard: usize,
    start: usize,
    publish: Option<(PublishCadence, &'a dyn ShardPublisher)>,
    sim: Simulator<Ev>,
    bank: SourceBank,
    models: Vec<SourceModel>,
    /// Earliest outstanding deadline timer per source (µs on the bank's
    /// u32 deadline clock, MAX = none).
    armed: Vec<u32>,
    /// The one in-flight arrival per source, mirrored out of the queue
    /// so a checkpoint can re-create the event population exactly.
    pending: Vec<Option<(u32, u64)>>,
    /// Per-source crash windows (`None` = never crashes).
    windows: Vec<Option<(u64, u64)>>,
    /// See [`ShardCheckpoint::crash_phase`].
    crash_phase: Vec<u8>,
    rec: ShardRec,
    heartbeats: u64,
    lost: u64,
    last_at: SimTime,
    next_pub: Option<SimTime>,
    /// Virtual instant of the last publication (`ZERO` before the
    /// first) — the churn rate limiter's reference point.
    last_pub: SimTime,
    /// The cadence controller's current deadline interval.
    pub_interval: SimDuration,
    /// Suspicion-edge count (start + end) as of the last publication.
    edges_at_pub: u64,
    /// Events processed by this worker incarnation's logical timeline
    /// (rewinds to the checkpoint value on restore).
    events_done: u64,
}

fn us_time(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

impl<'a> ShardWorker<'a> {
    fn backend(len: usize) -> QueueBackend {
        if len >= WHEEL_MIN_SOURCES {
            QueueBackend::Wheel
        } else {
            QueueBackend::Heap
        }
    }

    fn new(
        cfg: &'a ShardedConfig,
        shard: usize,
        start: usize,
        len: usize,
        publish: Option<(PublishCadence, &'a dyn ShardPublisher)>,
    ) -> Self {
        let mut sim: Simulator<Ev> =
            Simulator::with_backend_and_capacity(Self::backend(len), len * 2);
        let bank = SourceBank::new(&cfg.combos, cfg.eta, len);
        let mut models: Vec<SourceModel> = (start..start + len)
            .map(|g| SourceModel {
                rng: DetRng::seed_from(source_seed(cfg.seed, g as u32)),
            })
            .collect();
        let windows: Vec<Option<(u64, u64)>> = (0..len)
            .map(|l| crash_window(cfg, (start + l) as u32))
            .collect();
        let mut crash_phase = vec![2u8; len];
        let mut pending: Vec<Option<(u32, u64)>> = vec![None; len];
        let mut lost = 0u64;

        // First kept heartbeat of every source, plus its crash window's
        // two events when it has one.
        for local in 0..len {
            if let Some((c, r)) = windows[local] {
                crash_phase[local] = 0;
                sim.schedule_at(
                    SimTime::ZERO + cfg.eta * c,
                    Ev::Crash {
                        local: local as u32,
                    },
                );
                sim.schedule_at(
                    SimTime::ZERO + cfg.eta * r,
                    Ev::Restore {
                        local: local as u32,
                    },
                );
            }
            if let Some((seq, at)) = next_arrival(
                cfg,
                &mut models[local],
                windows[local],
                0,
                SimTime::ZERO,
                &mut lost,
            ) {
                pending[local] = Some((seq32(seq), at.as_micros()));
                sim.schedule_at(
                    at,
                    Ev::Arrival {
                        local: local as u32,
                        seq: seq32(seq),
                    },
                );
            }
        }

        Self {
            cfg,
            shard,
            start,
            publish,
            sim,
            bank,
            models,
            armed: vec![u32::MAX; len],
            pending,
            windows,
            crash_phase,
            rec: ShardRec::new(start, len, cfg.combos.len(), cfg.retain_events),
            heartbeats: 0,
            lost,
            last_at: SimTime::ZERO,
            // Next virtual instant at (or after) which the shard
            // publishes. The comparison in `step` is one branch per event
            // when no publisher is attached — the whole cost of the
            // serving hook on the hot path.
            next_pub: publish.map(|(cad, _)| SimTime::ZERO + cad.min),
            last_pub: SimTime::ZERO,
            pub_interval: publish.map_or(SimDuration::ZERO, |(cad, _)| cad.min),
            edges_at_pub: 0,
            events_done: 0,
        }
    }

    /// Captures a consistent between-events image of this worker.
    fn checkpoint(&self) -> ShardCheckpoint {
        ShardCheckpoint {
            bank: self.bank.snapshot_bytes(),
            models: self.models.iter().map(|m| m.rng.clone()).collect(),
            pending: self.pending.clone(),
            crash_phase: self.crash_phase.clone(),
            emitted: self.rec.emitted.clone(),
            digest: self.rec.digest,
            acc: self.rec.acc.clone(),
            retained: self.rec.retained.clone(),
            start_suspects: self.rec.start_suspects,
            end_suspects: self.rec.end_suspects,
            heartbeats: self.heartbeats,
            lost: self.lost,
            last_at_us: self.last_at.as_micros(),
            next_pub_us: self.next_pub.map(|t| t.as_micros()),
            last_pub_us: self.last_pub.as_micros(),
            pub_interval_us: self.pub_interval.as_micros(),
            edges_at_pub: self.edges_at_pub,
            events_done: self.events_done,
        }
    }

    /// Rebuilds a worker from a checkpoint. Warm restores the bank's
    /// detector state byte-exact and re-arms each source's deadline at
    /// `max(wakeup, checkpoint instant)` — the same effective check
    /// instants the uninterrupted run would have hit (stale superseded
    /// timers it carried were no-op checks). Cold starts the bank fresh:
    /// the environment (RNG streams, in-flight heartbeats, crash phases,
    /// sink-side accumulator) survives, the detector's memory does not.
    fn restore(
        cfg: &'a ShardedConfig,
        shard: usize,
        start: usize,
        len: usize,
        publish: Option<(PublishCadence, &'a dyn ShardPublisher)>,
        ckpt: &ShardCheckpoint,
        mode: RestartMode,
    ) -> Self {
        let mut sim: Simulator<Ev> =
            Simulator::with_backend_and_capacity(Self::backend(len), len * 2);
        let mut bank = SourceBank::new(&cfg.combos, cfg.eta, len);
        let warm = mode == RestartMode::Warm;
        if warm {
            bank.restore_bytes(&ckpt.bank)
                .expect("checkpoint bank image must round-trip");
        }
        let last_at = us_time(ckpt.last_at_us);
        let windows: Vec<Option<(u64, u64)>> = (0..len)
            .map(|l| crash_window(cfg, (start + l) as u32))
            .collect();
        let mut armed: Vec<u32> = vec![u32::MAX; len];

        // Re-create the in-flight event population: pending arrivals at
        // their exact stored instants, crash/restore events per phase.
        // Everything unprocessed at the checkpoint lies at or after
        // `last_at`, so nothing lands in the past.
        for (local, &window) in windows.iter().enumerate() {
            if let Some((seq, at_us)) = ckpt.pending[local] {
                sim.schedule_at(
                    us_time(at_us),
                    Ev::Arrival {
                        local: local as u32,
                        seq,
                    },
                );
            }
            match ckpt.crash_phase[local] {
                0 => {
                    let (c, r) = window.expect("phase-0 source has a crash window");
                    sim.schedule_at(
                        SimTime::ZERO + cfg.eta * c,
                        Ev::Crash {
                            local: local as u32,
                        },
                    );
                    sim.schedule_at(
                        SimTime::ZERO + cfg.eta * r,
                        Ev::Restore {
                            local: local as u32,
                        },
                    );
                }
                1 => {
                    let (_, r) = window.expect("phase-1 source has a crash window");
                    sim.schedule_at(
                        SimTime::ZERO + cfg.eta * r,
                        Ev::Restore {
                            local: local as u32,
                        },
                    );
                }
                _ => {}
            }
        }
        if warm {
            for local in 0..len as u32 {
                arm(&mut sim, &bank, local, last_at, &mut armed);
            }
        }

        Self {
            cfg,
            shard,
            start,
            publish,
            sim,
            bank,
            models: ckpt
                .models
                .iter()
                .map(|rng| SourceModel { rng: rng.clone() })
                .collect(),
            armed,
            pending: ckpt.pending.clone(),
            windows,
            crash_phase: ckpt.crash_phase.clone(),
            rec: ShardRec {
                start: start as u32,
                emitted: ckpt.emitted.clone(),
                digest: ckpt.digest,
                acc: ckpt.acc.clone(),
                retained: ckpt.retained.clone(),
                start_suspects: ckpt.start_suspects,
                end_suspects: ckpt.end_suspects,
            },
            heartbeats: ckpt.heartbeats,
            lost: ckpt.lost,
            last_at,
            next_pub: ckpt.next_pub_us.map(us_time),
            last_pub: us_time(ckpt.last_pub_us),
            pub_interval: SimDuration::from_micros(ckpt.pub_interval_us),
            edges_at_pub: ckpt.edges_at_pub,
            events_done: ckpt.events_done,
        }
    }

    /// Processes one simulation event; `false` at quiescence. A run
    /// drains to quiescence rather than to a time horizon: each source
    /// sends at most `cycles` heartbeats, and once a source's combos have
    /// all fired their final deadline nothing re-arms, so the loop
    /// terminates — and every drawn heartbeat is accounted for as
    /// delivered or lost.
    fn step(&mut self) -> bool {
        let Some((at, ev)) = self.sim.next_event() else {
            return false;
        };
        self.last_at = at;
        match ev {
            Ev::Arrival { local, seq } => {
                self.heartbeats += 1;
                let l = local as usize;
                self.pending[l] = None;
                // Check-then-observe, like the monitor's event loop: a
                // deadline that elapsed strictly before this arrival must
                // fire first. O(1) when nothing is due.
                self.bank.check_source_into(local, at, &mut self.rec);
                self.bank
                    .observe_heartbeat_into(local, u64::from(seq), at, &mut self.rec);
                arm(&mut self.sim, &self.bank, local, at, &mut self.armed);
                if let Some((next_seq, next_at)) = next_arrival(
                    self.cfg,
                    &mut self.models[l],
                    self.windows[l],
                    u64::from(seq) + 1,
                    at,
                    &mut self.lost,
                ) {
                    self.pending[l] = Some((seq32(next_seq), next_at.as_micros()));
                    self.sim.schedule_at(
                        next_at,
                        Ev::Arrival {
                            local,
                            seq: seq32(next_seq),
                        },
                    );
                }
            }
            Ev::Deadline { local } => {
                let l = local as usize;
                if u64::from(self.armed[l]) == at.as_micros() {
                    self.armed[l] = u32::MAX;
                }
                self.bank.check_source_into(local, at, &mut self.rec);
                arm(&mut self.sim, &self.bank, local, at, &mut self.armed);
            }
            Ev::Crash { local } => {
                self.crash_phase[local as usize] = 1;
                self.rec.crash(at, local);
            }
            Ev::Restore { local } => {
                self.crash_phase[local as usize] = 2;
                self.rec.restore(at, local);
            }
        }
        self.events_done += 1;
        if let Some(due) = self.next_pub {
            let (cad, publisher) = self.publish.expect("next_pub set only with a publisher");
            let edges = self.rec.start_suspects + self.rec.end_suspects;
            let edges_since = edges - self.edges_at_pub;
            // Churn trigger: enough suspicion edges accumulated since the
            // last publication, rate-limited to one publish per `min`.
            let churned = edges_since >= cad.churn_threshold && at >= self.last_pub + cad.min;
            if at >= due || churned {
                publisher.publish(self.shard, self.start, &self.bank, at);
                // The publisher consumed (a superset of) the dirty words;
                // from here the bitmap need only cover new changes.
                self.bank.clear_dirty();
                self.last_pub = at;
                self.edges_at_pub = edges;
                self.pub_interval = if churned {
                    // Churn beat the deadline: snap the controller back
                    // to its floor while the shard is busy.
                    cad.min
                } else if edges_since == 0 {
                    // Quiescent deadline: back off toward the ceiling.
                    SimDuration::from_micros(self.pub_interval.as_micros().saturating_mul(2))
                        .min(cad.max)
                } else {
                    self.pub_interval
                };
                // Skip over publication instants the event stream jumped
                // past: the next due time is strictly after `at`. A
                // churn-triggered publish re-anchors the grid at `at`,
                // which is what keeps a fixed cadence's grid untouched.
                let mut due = if churned && at < due { at } else { due };
                while due <= at {
                    due += self.pub_interval;
                }
                self.next_pub = Some(due);
            }
        }
        true
    }

    /// Closes the quiescent shard: final publication, QoS close, output.
    ///
    /// The roll-up closes at the shard's own last processed instant.
    /// This is reshard-invariant even with injected source crashes: every
    /// crash window closes (its restore event is processed) strictly
    /// before quiescence, and with no crash state pending an
    /// accumulator's finish depends only on the edges already folded,
    /// never on how late the close lands.
    fn finish(self) -> ShardOut {
        // Final publication at quiescence so the served view always
        // converges to the bank's terminal state.
        if let Some((_, publisher)) = self.publish {
            publisher.publish(self.shard, self.start, &self.bank, self.last_at);
        }
        let mut rec = self.rec;
        ShardOut {
            events: rec.retained.take().unwrap_or_default(),
            digest: rec.digest,
            qos: rec.acc.finish_summaries(self.last_at),
            heartbeats: self.heartbeats,
            lost: self.lost,
            start_suspects: rec.start_suspects,
            end_suspects: rec.end_suspects,
        }
    }
}

/// Runs one shard straight to quiescence: a compact event loop over this
/// shard's block of the source bank, on the queue backend that is
/// fastest for the shard's size. With a publisher attached, the shard
/// additionally publishes its bank every `every` of virtual time — a
/// read-only hook after event processing, so the simulation itself is
/// unchanged.
fn run_shard(
    cfg: &ShardedConfig,
    shard: usize,
    start: usize,
    len: usize,
    publish: Option<(PublishCadence, &dyn ShardPublisher)>,
) -> ShardOut {
    let mut worker = ShardWorker::new(cfg, shard, start, len, publish);
    while worker.step() {}
    worker.finish()
}

/// A fault injected at the shard plane by the supervisor's chaos plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The worker panics mid-run; the supervisor contains it with
    /// `catch_unwind` and restarts from the last checkpoint.
    Crash,
    /// The worker stalls for this much wall-clock time, then continues.
    /// Results are bit-identical — only wall time grows.
    Stall {
        /// Stall length, wall-clock microseconds.
        wall_micros: u64,
    },
    /// The worker checkpoints and then panics — the best case for a warm
    /// restart (zero replay).
    CheckpointThenCrash,
}

/// One scheduled shard-plane fault: fires on `shard` once its processed
/// event count reaches `after_events`.
#[derive(Debug, Clone, Copy)]
pub struct ShardFault {
    /// The shard it hits.
    pub shard: usize,
    /// Processed-event threshold that triggers it.
    pub after_events: u64,
    /// What happens.
    pub kind: ShardFaultKind,
}

/// Supervision policy for [`ShardedEngine::run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Checkpoint cadence in processed events. `0` keeps only the
    /// initial (pre-first-event) checkpoint, making every warm restart
    /// replay the whole shard.
    pub checkpoint_every_events: u64,
    /// Restarts allowed per shard before it is declared dead and its
    /// segment degraded.
    pub max_restarts: u32,
    /// Base of the wall-clock exponential restart backoff, microseconds.
    pub backoff_base_us: u64,
    /// Clamp on the computed backoff, microseconds.
    pub max_backoff_us: u64,
    /// Warm (from checkpoint) or cold (fresh detector state) restarts.
    pub restart: RestartMode,
    /// The scheduled faults.
    pub faults: Vec<ShardFault>,
}

impl SupervisionConfig {
    /// A fault-free policy with test-friendly defaults: checkpoint every
    /// 10 000 events, 3 restarts, 200 µs base backoff clamped at 50 ms.
    pub fn with_restart(restart: RestartMode) -> Self {
        Self {
            checkpoint_every_events: 10_000,
            max_restarts: 3,
            backoff_base_us: 200,
            max_backoff_us: 50_000,
            restart,
            faults: Vec::new(),
        }
    }

    /// Appends `count` seeded chaos faults spread across `shards` —
    /// crashes, short stalls and checkpoint-then-kill, all derived from
    /// `seed` alone so a chaos run is reproducible.
    pub fn seeded_chaos(mut self, seed: u64, shards: usize, count: usize) -> Self {
        for i in 0..count {
            let h = source_seed(seed ^ 0x5eed_fa01_7c4a_05ed, i as u32);
            let kind = match h % 3 {
                0 => ShardFaultKind::Crash,
                1 => ShardFaultKind::Stall {
                    wall_micros: 500 + (h >> 2) % 2_000,
                },
                _ => ShardFaultKind::CheckpointThenCrash,
            };
            self.faults.push(ShardFault {
                shard: ((h >> 8) as usize) % shards.max(1),
                after_events: 200 + (h >> 16) % 4_000,
                kind,
            });
        }
        self
    }
}

/// What supervision observed on one shard: fault counts, restart kinds,
/// replay cost, and the shard's own digest/QoS contribution (partial —
/// as of the last checkpoint — when the shard died).
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// First global source id of the shard's block.
    pub start: usize,
    /// Block length.
    pub len: usize,
    /// Faults from the plan that fired (all kinds).
    pub faults_hit: u32,
    /// Contained worker panics (injected or real).
    pub crashes: u32,
    /// Injected stalls ridden out.
    pub stalls: u32,
    /// Restarts restored warm from a checkpoint.
    pub warm_restores: u32,
    /// Restarts rebuilt cold.
    pub cold_restores: u32,
    /// Events re-processed across all restores (crash-point count minus
    /// checkpoint count, summed).
    pub replayed_events: u64,
    /// Events the shard processed on its final (surviving) timeline.
    pub events: u64,
    /// The shard exhausted its restart budget; its block is degraded and
    /// excluded from the merged report.
    pub dead: bool,
    /// The shard's own streaming digest (checkpoint-partial if dead).
    pub digest: u64,
    /// The shard's own QoS roll-up (checkpoint-partial if dead).
    pub qos: Vec<QosSummary>,
}

/// Runs one shard under supervision: bounded event slices between
/// checkpoint/fault boundaries, `catch_unwind` containment, seeded fault
/// injection, warm/cold restarts under a clamped exponential backoff and
/// a restart budget, and degradation (dead shard, partial results) when
/// the budget runs out.
fn run_shard_supervised(
    cfg: &ShardedConfig,
    sup: &SupervisionConfig,
    shard: usize,
    start: usize,
    len: usize,
    publish: Option<(PublishCadence, &dyn ShardPublisher)>,
) -> (Option<ShardOut>, ShardStatus) {
    let mut faults: Vec<ShardFault> = sup
        .faults
        .iter()
        .copied()
        .filter(|f| f.shard == shard)
        .collect();
    faults.sort_by_key(|f| f.after_events);

    let mut status = ShardStatus {
        shard,
        start,
        len,
        faults_hit: 0,
        crashes: 0,
        stalls: 0,
        warm_restores: 0,
        cold_restores: 0,
        replayed_events: 0,
        events: 0,
        dead: false,
        digest: 0,
        qos: Vec::new(),
    };

    let mut worker = ShardWorker::new(cfg, shard, start, len, publish);
    // A restart needs a consistent state to rebuild from even if the
    // first slice panics, so every shard checkpoints before its first
    // event.
    let mut ckpt: Option<ShardCheckpoint> = Some(worker.checkpoint());
    let mut fault_cursor = 0usize;
    let mut restarts = 0u32;

    loop {
        let slice = catch_unwind(AssertUnwindSafe(|| {
            loop {
                // Fire every fault due at the current progress point.
                // The cursor lives outside the unwind scope, so a fault
                // that panics is consumed and cannot re-fire after the
                // restart rewinds the event counter.
                while let Some(f) = faults.get(fault_cursor).copied() {
                    if f.after_events > worker.events_done {
                        break;
                    }
                    fault_cursor += 1;
                    status.faults_hit += 1;
                    match f.kind {
                        ShardFaultKind::Stall { wall_micros } => {
                            status.stalls += 1;
                            thread::sleep(Duration::from_micros(wall_micros));
                        }
                        ShardFaultKind::Crash => {
                            panic!("injected shard fault: crash");
                        }
                        ShardFaultKind::CheckpointThenCrash => {
                            ckpt = Some(worker.checkpoint());
                            panic!("injected shard fault: checkpoint-then-crash");
                        }
                    }
                }
                let next_fault = faults
                    .get(fault_cursor)
                    .map_or(u64::MAX, |f| f.after_events);
                let next_ckpt = worker
                    .events_done
                    .checked_div(sup.checkpoint_every_events)
                    .map_or(u64::MAX, |q| (q + 1) * sup.checkpoint_every_events);
                let boundary = next_fault.min(next_ckpt);
                while worker.events_done < boundary {
                    if !worker.step() {
                        return;
                    }
                }
                if worker.events_done == next_ckpt {
                    ckpt = Some(worker.checkpoint());
                }
            }
        }));

        match slice {
            Ok(()) => {
                // Quiescent.
                status.events = worker.events_done;
                let out = worker.finish();
                status.digest = out.digest.value();
                status.qos = out.qos.clone();
                return (Some(out), status);
            }
            Err(_) => {
                status.crashes += 1;
                restarts += 1;
                let cp = ckpt
                    .as_ref()
                    .expect("supervised shard always holds a checkpoint");
                if restarts > sup.max_restarts {
                    // Budget exhausted: the shard dies. Its last
                    // checkpoint is a consistent partial contribution;
                    // the merged report excludes it, and the serving
                    // plane is told the block is degraded.
                    status.dead = true;
                    status.events = cp.events_done;
                    status.digest = cp.digest.value();
                    status.qos = cp.acc.clone().finish_summaries(us_time(cp.last_at_us));
                    if let Some((_, publisher)) = publish {
                        publisher.mark_degraded(shard, start, len);
                    }
                    return (None, status);
                }
                // The panicked incarnation is discarded wholesale — its
                // counters are still readable (updated only between
                // events), which is how replay cost is measured.
                status.replayed_events += worker.events_done.saturating_sub(cp.events_done);
                match sup.restart {
                    RestartMode::Warm => status.warm_restores += 1,
                    RestartMode::Cold => status.cold_restores += 1,
                }
                thread::sleep(Duration::from_micros(backoff_us(
                    sup.backoff_base_us,
                    restarts,
                    sup.max_backoff_us,
                )));
                worker = ShardWorker::restore(cfg, shard, start, len, publish, cp, sup.restart);
            }
        }
    }
}

/// Finds the next non-lost heartbeat of a source from `from_seq` on,
/// counting losses. Sequences inside the source's crash window are
/// skipped without a draw and without counting as lost — a crashed
/// source sends nothing, so there is nothing for the network to drop.
/// Arrival times are clamped to `now` so the per-source chain never
/// schedules into the past (a spiked predecessor can outlast its
/// successor's nominal arrival).
fn next_arrival(
    cfg: &ShardedConfig,
    model: &mut SourceModel,
    window: Option<(u64, u64)>,
    from_seq: u64,
    now: SimTime,
    lost: &mut u64,
) -> Option<(u64, SimTime)> {
    let mut seq = from_seq;
    while seq < cfg.cycles {
        if let Some((c, r)) = window {
            if seq >= c && seq < r {
                seq += 1;
                continue;
            }
        }
        match model.draw(cfg) {
            Some(delay) => {
                let nominal = SimTime::ZERO + cfg.eta * seq + delay;
                return Some((seq, nominal.max(now)));
            }
            None => {
                *lost += 1;
                seq += 1;
            }
        }
    }
    None
}

/// Re-arms the deadline timer of `source` if its bank wakeup moved below
/// the earliest outstanding timer. Past-due wakeups fire immediately
/// (scheduled at `now`); superseded timers stay queued and resolve as
/// cheap no-op checks.
fn arm(sim: &mut Simulator<Ev>, bank: &SourceBank, local: u32, now: SimTime, armed: &mut [u32]) {
    let l = local as usize;
    if let Some(wakeup) = bank.next_wakeup(local) {
        let fire_at = wakeup.max(now);
        let fire_us = fire_at.as_micros();
        // `fire_us < armed[l] <= u32::MAX`, so the narrowing is exact.
        if fire_us < u64::from(armed[l]) {
            sim.schedule_at(fire_at, Ev::Deadline { local });
            armed[l] = fire_us as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_config(sources: usize, shards: usize) -> ShardedConfig {
        let mut cfg = ShardedConfig::paper_grid(sources, 8, 42);
        cfg.shards = shards;
        // Lively fault model so the log actually contains edges; retain
        // the log so tests can inspect it.
        cfg.loss = 0.08;
        cfg.spike_prob = 0.06;
        cfg.retain_events = true;
        cfg
    }

    #[test]
    fn produces_suspicion_activity() {
        let report = ShardedEngine::new(busy_config(24, 1)).run();
        assert!(report.heartbeats > 0);
        assert!(report.lost > 0, "loss model never fired");
        assert!(report.start_suspects > 0, "no suspicion edges in the log");
        assert!(report.end_suspects > 0, "no trust edges in the log");
        assert_eq!(
            report.events.len() as u64,
            report.start_suspects + report.end_suspects
        );
        assert_eq!(report.heartbeats + report.lost, 24 * 8);
    }

    #[test]
    fn merged_log_is_time_and_source_ordered() {
        let report = ShardedEngine::new(busy_config(17, 4)).run();
        for w in report.events.windows(2) {
            assert!(
                (w[0].at, w[0].source) <= (w[1].at, w[1].source),
                "merge order violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// The acceptance criterion: sharded and single-threaded execution
    /// produce bit-identical merged logs, digests and QoS roll-ups for
    /// the same seed, for every shard count (including one that divides
    /// the sources unevenly).
    #[test]
    fn shard_count_does_not_change_the_merged_log() {
        let baseline = ShardedEngine::new(busy_config(24, 1)).run();
        assert!(!baseline.events.is_empty());
        for shards in [2usize, 5, 8] {
            let sharded = ShardedEngine::new(busy_config(24, shards)).run();
            assert_eq!(sharded.shards, shards);
            assert_eq!(
                baseline.fingerprint, sharded.fingerprint,
                "fingerprint diverged at {shards} shards"
            );
            assert_eq!(
                baseline.digest, sharded.digest,
                "streaming digest diverged at {shards} shards"
            );
            assert_eq!(
                baseline.qos, sharded.qos,
                "QoS roll-ups diverged at {shards} shards"
            );
            assert_eq!(baseline.events, sharded.events);
            assert_eq!(baseline.heartbeats, sharded.heartbeats);
            assert_eq!(baseline.lost, sharded.lost);
        }
    }

    /// The streaming path stands on its own: with retention off the
    /// report carries no events and no fingerprint, yet the digest and
    /// the QoS roll-ups are still shard-count invariant — and identical
    /// to what the retained run computes.
    #[test]
    fn streaming_results_survive_without_retention() {
        let retained = ShardedEngine::new(busy_config(24, 3)).run();
        let mut lean = busy_config(24, 1);
        lean.retain_events = false;
        let baseline = ShardedEngine::new(lean).run();
        assert!(baseline.events.is_empty());
        assert_eq!(baseline.fingerprint, 0);
        assert_eq!(baseline.digest, retained.digest);
        assert_eq!(baseline.qos, retained.qos);
        assert_eq!(baseline.start_suspects, retained.start_suspects);
        assert_eq!(baseline.end_suspects, retained.end_suspects);
        for shards in [2usize, 5, 8] {
            let mut cfg = busy_config(24, shards);
            cfg.retain_events = false;
            let sharded = ShardedEngine::new(cfg).run();
            assert_eq!(baseline.digest, sharded.digest);
            assert_eq!(baseline.qos, sharded.qos);
        }
    }

    /// The engine's online QoS roll-ups equal a from-scratch replay of
    /// the retained merged log through a fresh accumulator, bit for bit.
    #[test]
    fn online_qos_matches_retained_log_replay() {
        let cfg = busy_config(24, 3);
        let n_combos = cfg.combos.len();
        let report = ShardedEngine::new(cfg).run();
        assert!(!report.events.is_empty());
        let mut acc = QosAccumulator::summary(24, n_combos);
        let mut last_at = SimTime::ZERO;
        for e in &report.events {
            last_at = e.at;
            match e.transition {
                FdTransition::StartSuspect => acc.start_suspect(e.at, e.source, e.combo),
                FdTransition::EndSuspect => acc.end_suspect(e.at, e.source, e.combo),
            }
        }
        assert_eq!(acc.finish_summaries(last_at), report.qos);
        let edges: u64 = report
            .qos
            .iter()
            .map(|s| s.mistakes + s.open_mistakes)
            .sum();
        assert!(edges > 0, "roll-ups recorded no suspicion episodes");
    }

    #[test]
    fn digest_counts_every_edge() {
        let report = ShardedEngine::new(busy_config(16, 2)).run();
        // Rebuild the digest from the retained log; it must match the one
        // the shards folded online.
        let mut digest = StreamDigest::new();
        let mut emitted = vec![0u32; 16];
        for e in &report.events {
            let seq = emitted[e.source as usize];
            emitted[e.source as usize] = seq + 1;
            let mut tuple = [0u8; 21];
            tuple[..8].copy_from_slice(&e.at.as_micros().to_le_bytes());
            tuple[8..12].copy_from_slice(&e.source.to_le_bytes());
            tuple[12..16].copy_from_slice(&seq.to_le_bytes());
            tuple[16..20].copy_from_slice(&e.combo.to_le_bytes());
            tuple[20] = u8::from(e.transition == FdTransition::StartSuspect);
            digest.fold_bytes(&tuple);
        }
        assert_eq!(digest.count(), report.events.len() as u64);
        assert_eq!(digest.value(), report.digest);
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let a = ShardedEngine::new(busy_config(12, 2)).run();
        let b = ShardedEngine::new(busy_config(12, 2)).run();
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut other = busy_config(12, 2);
        other.seed = 43;
        let c = ShardedEngine::new(other).run();
        assert_ne!(a.fingerprint, c.fingerprint, "seed had no effect");
    }

    /// Counting publisher: tallies calls and remembers the last virtual
    /// time and suspicion population per shard.
    struct CountingPublisher {
        calls: std::sync::atomic::AtomicU64,
        last_at: std::sync::atomic::AtomicU64,
    }

    impl ShardPublisher for CountingPublisher {
        fn publish(&self, _shard: usize, _start: usize, bank: &SourceBank, now: SimTime) {
            use std::sync::atomic::Ordering;
            assert!(bank.sources() > 0);
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.last_at.fetch_max(now.as_micros(), Ordering::Relaxed);
        }
    }

    #[test]
    fn publish_hook_observes_without_changing_the_run() {
        use std::sync::atomic::Ordering;
        let baseline = ShardedEngine::new(busy_config(24, 3)).run();
        let publisher = CountingPublisher {
            calls: std::sync::atomic::AtomicU64::new(0),
            last_at: std::sync::atomic::AtomicU64::new(0),
        };
        let published = ShardedEngine::new(busy_config(24, 3))
            .run_published(SimDuration::from_millis(500), &publisher);
        // Observation only: the run itself is bit-identical.
        assert_eq!(baseline.fingerprint, published.fingerprint);
        assert_eq!(baseline.events, published.events);
        // Every shard published at least once per elapsed half-second plus
        // the final quiescent publication.
        let calls = publisher.calls.load(Ordering::Relaxed);
        assert!(calls >= 3, "only {calls} publications across 3 shards");
        assert!(publisher.last_at.load(Ordering::Relaxed) > 0);
    }

    /// The churn-driven cadence publishes strictly more often than the
    /// deadline grid on a lively workload (edges trip the threshold
    /// before the timer), and is still pure observation.
    #[test]
    fn adaptive_cadence_publishes_on_churn_and_stays_observation_only() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let baseline = ShardedEngine::new(busy_config(24, 3)).run();
        let fixed = CountingPublisher {
            calls: AtomicU64::new(0),
            last_at: AtomicU64::new(0),
        };
        ShardedEngine::new(busy_config(24, 3)).run_published(SimDuration::from_millis(500), &fixed);
        let adaptive = CountingPublisher {
            calls: AtomicU64::new(0),
            last_at: AtomicU64::new(0),
        };
        let report = ShardedEngine::new(busy_config(24, 3)).run_published_with(
            PublishCadence::adaptive(
                SimDuration::from_millis(1),
                SimDuration::from_millis(500),
                4,
            ),
            &adaptive,
        );
        assert_eq!(baseline.fingerprint, report.fingerprint);
        assert_eq!(baseline.events, report.events);
        assert!(
            adaptive.calls.load(Ordering::Relaxed) > fixed.calls.load(Ordering::Relaxed),
            "churn trigger never beat the 500 ms deadline grid"
        );
    }

    /// With no suspicion churn at all, the adaptive deadline backs off
    /// toward its ceiling: far fewer publications than a fixed timer at
    /// the same floor interval.
    #[test]
    fn adaptive_cadence_backs_off_when_quiescent() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut quiet = busy_config(24, 2);
        quiet.loss = 0.0;
        quiet.spike_prob = 0.0;
        let fixed = CountingPublisher {
            calls: AtomicU64::new(0),
            last_at: AtomicU64::new(0),
        };
        ShardedEngine::new(quiet.clone()).run_published(SimDuration::from_millis(1), &fixed);
        let adaptive = CountingPublisher {
            calls: AtomicU64::new(0),
            last_at: AtomicU64::new(0),
        };
        ShardedEngine::new(quiet).run_published_with(
            PublishCadence::adaptive(
                SimDuration::from_millis(1),
                SimDuration::from_millis(2_000),
                64,
            ),
            &adaptive,
        );
        let fixed_calls = fixed.calls.load(Ordering::Relaxed);
        let adaptive_calls = adaptive.calls.load(Ordering::Relaxed);
        assert!(
            adaptive_calls * 4 <= fixed_calls,
            "backoff never engaged: {adaptive_calls} adaptive vs {fixed_calls} fixed"
        );
    }

    /// Supervision composes with the adaptive cadence: warm restarts
    /// restore the cadence controller from the checkpoint and the run's
    /// results stay bit-identical to the unsupervised engine.
    #[test]
    fn adaptive_cadence_survives_supervised_restarts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let baseline = ShardedEngine::new(busy_config(24, 3)).run();
        let publisher = CountingPublisher {
            calls: AtomicU64::new(0),
            last_at: AtomicU64::new(0),
        };
        let sup = SupervisionConfig::with_restart(RestartMode::Warm).seeded_chaos(7, 3, 4);
        let report = ShardedEngine::new(busy_config(24, 3)).run_supervised_published_with(
            &sup,
            PublishCadence::adaptive(
                SimDuration::from_millis(1),
                SimDuration::from_millis(500),
                8,
            ),
            &publisher,
        );
        assert_eq!(baseline.digest, report.digest);
        assert_eq!(baseline.qos, report.qos);
        assert!(publisher.calls.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        // Zero sources: nothing to shard, no degenerate (0, 0) block.
        assert!(partition(0, 4).is_empty());
        for (sources, shards) in [(10, 3), (24, 1), (7, 7), (5, 16), (1_000, 8)] {
            let blocks = partition(sources, shards);
            assert_eq!(blocks.len(), shards.min(sources));
            let mut next = 0usize;
            for &(start, len) in &blocks {
                assert_eq!(start, next, "gap in partition {sources}/{shards}");
                assert!(len > 0);
                next = start + len;
            }
            assert_eq!(next, sources);
        }
    }

    #[test]
    #[should_panic(expected = "publish interval must be positive")]
    fn zero_publish_interval_rejected() {
        struct Nop;
        impl ShardPublisher for Nop {
            fn publish(&self, _: usize, _: usize, _: &SourceBank, _: SimTime) {}
        }
        let _ = ShardedEngine::new(busy_config(4, 1)).run_published(SimDuration::ZERO, &Nop);
    }

    #[test]
    fn more_shards_than_sources_is_clamped() {
        let report = ShardedEngine::new(busy_config(3, 16)).run();
        assert_eq!(report.shards, 3);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_rejected() {
        let mut cfg = ShardedConfig::paper_grid(1, 1, 0);
        cfg.sources = 0;
        let _ = ShardedEngine::new(cfg);
    }

    /// `busy_config` plus injected source crashes: a third of the sources
    /// die for two cycles mid-run, so the QoS roll-ups carry real
    /// detections.
    fn crashy_config(sources: usize, shards: usize) -> ShardedConfig {
        let mut cfg = busy_config(sources, shards);
        cfg.source_crashes = Some(SourceCrashPlan {
            frac: 0.4,
            down_cycles: 2,
        });
        cfg
    }

    #[test]
    fn source_crashes_yield_detections_and_stay_reshard_invariant() {
        let baseline = ShardedEngine::new(crashy_config(24, 1)).run();
        let crashes: u64 = baseline.qos.iter().map(|s| s.crashes).sum();
        let detections: u64 = baseline.qos.iter().map(|s| s.detections).sum();
        assert!(crashes > 0, "crash plan never fired");
        assert!(detections > 0, "no crash was ever detected");
        let td: u64 = baseline.qos.iter().map(|s| s.td_sum_us).sum();
        assert!(td > 0, "detections recorded no detection time");
        for shards in [2usize, 5, 8] {
            let sharded = ShardedEngine::new(crashy_config(24, shards)).run();
            assert_eq!(baseline.digest, sharded.digest, "digest at {shards} shards");
            assert_eq!(baseline.qos, sharded.qos, "QoS at {shards} shards");
            assert_eq!(baseline.events, sharded.events);
            assert_eq!(baseline.heartbeats, sharded.heartbeats);
            assert_eq!(baseline.lost, sharded.lost);
        }
        // A crash-free config is untouched by the plan machinery.
        let plain = ShardedEngine::new(busy_config(24, 1)).run();
        assert_eq!(
            plain.qos.iter().map(|s| s.crashes).sum::<u64>(),
            0,
            "crashes leaked into a plan-free run"
        );
    }

    #[test]
    fn supervised_run_without_faults_matches_plain_run() {
        for mode in [RestartMode::Warm, RestartMode::Cold] {
            let plain = ShardedEngine::new(crashy_config(24, 3)).run();
            let mut sup = SupervisionConfig::with_restart(mode);
            sup.checkpoint_every_events = 64;
            let supervised = ShardedEngine::new(crashy_config(24, 3)).run_supervised(&sup);
            assert_eq!(plain.digest, supervised.digest);
            assert_eq!(plain.qos, supervised.qos);
            assert_eq!(plain.events, supervised.events);
            assert_eq!(supervised.shard_status.len(), 3);
            for st in &supervised.shard_status {
                assert!(!st.dead);
                assert_eq!(st.crashes, 0);
                assert_eq!(st.faults_hit, 0);
            }
        }
    }

    /// The tentpole acceptance criterion: warm restarts after injected
    /// worker crashes are digest-bit-identical to an uninterrupted run,
    /// across 1, 2 and 8 shards — including replay from a mid-run
    /// checkpoint and the zero-replay checkpoint-then-kill case.
    #[test]
    fn warm_restart_is_bit_identical_across_shard_counts() {
        for shards in [1usize, 2, 8] {
            let plain = ShardedEngine::new(crashy_config(24, shards)).run();
            let mut sup = SupervisionConfig::with_restart(RestartMode::Warm);
            sup.checkpoint_every_events = 64;
            sup.backoff_base_us = 50;
            sup.max_restarts = 8;
            // Even the smallest shard (24 sources over 8 shards) processes
            // ~100 events, so both thresholds always fire.
            for (i, shard) in (0..shards).enumerate() {
                sup.faults.push(ShardFault {
                    shard,
                    after_events: 20 + 7 * i as u64,
                    kind: ShardFaultKind::Crash,
                });
                sup.faults.push(ShardFault {
                    shard,
                    after_events: 60 + 4 * i as u64,
                    kind: ShardFaultKind::CheckpointThenCrash,
                });
            }
            let chaotic = ShardedEngine::new(crashy_config(24, shards)).run_supervised(&sup);
            assert_eq!(
                plain.digest, chaotic.digest,
                "warm restart diverged at {shards} shards"
            );
            assert_eq!(plain.qos, chaotic.qos, "QoS diverged at {shards} shards");
            assert_eq!(plain.events, chaotic.events);
            assert_eq!(plain.heartbeats, chaotic.heartbeats);
            assert_eq!(plain.lost, chaotic.lost);
            let crashes: u32 = chaotic.shard_status.iter().map(|s| s.crashes).sum();
            let warm: u32 = chaotic.shard_status.iter().map(|s| s.warm_restores).sum();
            assert_eq!(crashes, 2 * shards as u32, "every injected crash fires");
            assert_eq!(warm, crashes, "every crash warm-restored");
            assert!(
                chaotic.shard_status.iter().any(|s| s.replayed_events > 0),
                "mid-slice crashes must replay"
            );
        }
    }

    #[test]
    fn cold_restart_loses_detector_memory_and_diverges() {
        let plain = ShardedEngine::new(crashy_config(24, 2)).run();
        let mut sup = SupervisionConfig::with_restart(RestartMode::Cold);
        sup.checkpoint_every_events = 128;
        sup.backoff_base_us = 50;
        sup.faults.push(ShardFault {
            shard: 0,
            after_events: 400,
            kind: ShardFaultKind::Crash,
        });
        let cold = ShardedEngine::new(crashy_config(24, 2)).run_supervised(&sup);
        assert_eq!(cold.shard_status[0].cold_restores, 1);
        assert_ne!(
            plain.digest, cold.digest,
            "a cold restart mid-run must change the edge stream"
        );
    }

    #[test]
    fn stall_fault_only_costs_wall_time() {
        let plain = ShardedEngine::new(crashy_config(24, 2)).run();
        let mut sup = SupervisionConfig::with_restart(RestartMode::Warm);
        sup.faults.push(ShardFault {
            shard: 1,
            after_events: 200,
            kind: ShardFaultKind::Stall { wall_micros: 2_000 },
        });
        let stalled = ShardedEngine::new(crashy_config(24, 2)).run_supervised(&sup);
        assert_eq!(plain.digest, stalled.digest);
        assert_eq!(plain.qos, stalled.qos);
        assert_eq!(stalled.shard_status[1].stalls, 1);
        assert_eq!(stalled.shard_status[1].crashes, 0);
    }

    /// The degraded-mode acceptance criterion: a shard that exhausts its
    /// restart budget dies, and the surviving shards' digest and QoS
    /// contributions are exactly what they are in a fault-free run.
    #[test]
    fn dead_shard_leaves_survivors_untouched() {
        let sup_clean = SupervisionConfig::with_restart(RestartMode::Warm);
        let clean = ShardedEngine::new(crashy_config(24, 3)).run_supervised(&sup_clean);

        let mut sup = SupervisionConfig::with_restart(RestartMode::Warm);
        sup.max_restarts = 0;
        sup.faults.push(ShardFault {
            shard: 1,
            after_events: 250,
            kind: ShardFaultKind::Crash,
        });
        let degraded = ShardedEngine::new(crashy_config(24, 3)).run_supervised(&sup);

        assert!(degraded.shard_status[1].dead);
        assert!(!degraded.shard_status[0].dead);
        assert!(!degraded.shard_status[2].dead);
        for s in [0usize, 2] {
            assert_eq!(
                clean.shard_status[s].digest, degraded.shard_status[s].digest,
                "survivor {s} digest changed"
            );
            assert_eq!(
                clean.shard_status[s].qos, degraded.shard_status[s].qos,
                "survivor {s} QoS changed"
            );
        }
        // The merged report is exactly the survivors' merge: rebuild it
        // from the per-shard rows.
        let mut qos: Vec<QosSummary> = vec![QosSummary::new(); clean.qos.len()];
        for s in [0usize, 2] {
            for (acc, shard) in qos.iter_mut().zip(&degraded.shard_status[s].qos) {
                acc.merge(shard);
            }
        }
        assert_eq!(degraded.qos, qos);
        // The dead shard's partial (checkpoint-time) digest is recorded
        // but excluded from the merge.
        assert_ne!(degraded.digest, clean.digest);
    }

    /// Publishers learn about dead shards exactly once.
    #[test]
    fn dead_shard_marks_its_segment_degraded() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct DegradedCounter {
            publishes: AtomicU64,
            degraded: AtomicU64,
            degraded_start_len: AtomicU64,
        }
        impl ShardPublisher for DegradedCounter {
            fn publish(&self, _: usize, _: usize, _: &SourceBank, _: SimTime) {
                self.publishes.fetch_add(1, Ordering::Relaxed);
            }
            fn mark_degraded(&self, _shard: usize, start: usize, len: usize) {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                self.degraded_start_len
                    .store(((start as u64) << 32) | len as u64, Ordering::Relaxed);
            }
        }
        let publisher = DegradedCounter {
            publishes: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            degraded_start_len: AtomicU64::new(0),
        };
        let mut sup = SupervisionConfig::with_restart(RestartMode::Warm);
        sup.max_restarts = 0;
        sup.faults.push(ShardFault {
            shard: 2,
            after_events: 100,
            kind: ShardFaultKind::Crash,
        });
        let report = ShardedEngine::new(crashy_config(24, 3)).run_supervised_published(
            &sup,
            SimDuration::from_millis(500),
            &publisher,
        );
        assert!(report.shard_status[2].dead);
        assert_eq!(publisher.degraded.load(Ordering::Relaxed), 1);
        let packed = publisher.degraded_start_len.load(Ordering::Relaxed);
        assert_eq!((packed >> 32) as usize, report.shard_status[2].start);
        assert_eq!((packed & 0xffff_ffff) as usize, report.shard_status[2].len);
        assert!(publisher.publishes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn seeded_chaos_plan_is_reproducible_and_survivable() {
        let sup = SupervisionConfig::with_restart(RestartMode::Warm).seeded_chaos(9, 3, 4);
        let again = SupervisionConfig::with_restart(RestartMode::Warm).seeded_chaos(9, 3, 4);
        assert_eq!(sup.faults.len(), 4);
        for (a, b) in sup.faults.iter().zip(&again.faults) {
            assert_eq!(
                (a.shard, a.after_events, a.kind),
                (b.shard, b.after_events, b.kind)
            );
        }
        let mut sup = sup;
        sup.max_restarts = 8;
        sup.checkpoint_every_events = 64;
        sup.backoff_base_us = 50;
        let plain = ShardedEngine::new(crashy_config(24, 3)).run();
        let chaotic = ShardedEngine::new(crashy_config(24, 3)).run_supervised(&sup);
        assert!(chaotic.shard_status.iter().all(|s| !s.dead));
        assert_eq!(plain.digest, chaotic.digest);
        assert_eq!(plain.qos, chaotic.qos);
    }

    #[test]
    #[should_panic(expected = "crash window must close")]
    fn crash_window_wider_than_run_rejected() {
        let mut cfg = ShardedConfig::paper_grid(4, 3, 1);
        cfg.source_crashes = Some(SourceCrashPlan {
            frac: 0.5,
            down_cycles: 2,
        });
        let _ = ShardedEngine::new(cfg);
    }
}
