//! The sharded many-source monitor engine.
//!
//! [`SimEngine`](crate::SimEngine) runs the full layered Neko-style stack —
//! right for reproducing the paper's two-process experiments, far too heavy
//! for a monitor watching a million heartbeat sources. [`ShardedEngine`] is
//! the scale path: a compact event loop that drives one
//! [`SourceBank`](fd_core::SourceBank) per shard, with the source
//! population partitioned across worker threads. Large shards run on the
//! hierarchical [`TimerWheel`](fd_sim::TimerWheel); small ones stay on
//! the binary heap, which is faster until its log n and cache misses
//! outgrow the wheel's constant cascade cost (the backends are
//! bit-identical, so the pick never shows in the results).
//!
//! # Shard ownership
//!
//! Sources are split into contiguous blocks, one block per shard. Each
//! shard owns its block completely — its own virtual clock, timer wheel,
//! source bank, and event log — so worker threads share **no mutable
//! state** and run without locks.
//!
//! # Determinism and shard independence
//!
//! Everything a source does is a function of the global seed and its
//! **global** source id only:
//!
//! * its random stream is seeded by `splitmix64(seed, global_id)` —
//!   never by shard id or thread interleaving;
//! * heartbeats are chained per source (processing arrival *k* schedules
//!   arrival *k+1*), so a source's schedule never depends on its
//!   neighbours;
//! * per-source detector state in the bank is disjoint between sources.
//!
//! Each monitor event is therefore emitted at a (virtual time, global
//! source, per-source sequence) coordinate that no amount of resharding
//! can change. Instead of retaining and merge-sorting the logs to prove
//! it, each shard folds every emission into a [`StreamDigest`] keyed by
//! exactly that coordinate; the order-independent combination makes the
//! merged digest **bit-identical for any shard count** (proven by test:
//! 1, 2, 5 and 8 shards) without keeping a single event. QoS metrics
//! stream the same way: each shard folds its edges into a
//! [`QosAccumulator`], and the integer-µs [`QosSummary`] merge is exact,
//! so the per-combo roll-ups are shard-count invariant too. The full
//! retained log (and its classical fingerprint) stays available behind
//! [`ShardedConfig::retain_events`] for debugging and differential tests.

use std::thread;
use std::time::Instant;

use fd_core::combinations::{all_combinations, Combination};
use fd_core::detector::FdTransition;
use fd_core::source_bank::SourceBank;
use fd_sim::{DetRng, QueueBackend, SimDuration, SimTime, Simulator};
use fd_stat::{EventSink, QosAccumulator, QosSummary};

use crate::digest::StreamDigest;

/// Configuration of a sharded many-source run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of monitored heartbeat sources.
    pub sources: usize,
    /// Number of worker shards (threads). Results are independent of this.
    pub shards: usize,
    /// Heartbeat period η, shared by all sources.
    pub eta: SimDuration,
    /// Heartbeats sent per source. A run drains to quiescence: after the
    /// last heartbeat the trailing deadline fires (every combination's
    /// final `StartSuspect`) are still processed.
    pub cycles: u64,
    /// Root seed; every per-source stream derives from it.
    pub seed: u64,
    /// Per-heartbeat loss probability.
    pub loss: f64,
    /// Deterministic base one-way delay, milliseconds.
    pub base_delay_ms: f64,
    /// Uniform jitter added on top of the base delay, milliseconds.
    pub jitter_ms: f64,
    /// Probability a heartbeat hits a delay spike (late arrival — this is
    /// what exercises suspect/trust edges).
    pub spike_prob: f64,
    /// Multiplier applied to the delay on a spike.
    pub spike_factor: f64,
    /// Retain every monitor event and compute the classical merged-log
    /// fingerprint. Off by default: the streaming digest and QoS
    /// summaries make retention unnecessary, and at 10⁶ sources the log
    /// dominates peak memory. Opt in for debugging and differential
    /// tests.
    pub retain_events: bool,
    /// The detector combinations every source runs.
    pub combos: Vec<Combination>,
}

impl ShardedConfig {
    /// A full paper-grid configuration with WAN-flavoured defaults: 1 s
    /// heartbeats, 1% loss, 100 ms ± 50 ms delay, 1% spikes at 40×.
    pub fn paper_grid(sources: usize, cycles: u64, seed: u64) -> Self {
        Self {
            sources,
            shards: 1,
            eta: SimDuration::from_secs(1),
            cycles,
            seed,
            loss: 0.01,
            base_delay_ms: 100.0,
            jitter_ms: 50.0,
            spike_prob: 0.01,
            spike_factor: 40.0,
            retain_events: false,
            combos: all_combinations(),
        }
    }
}

/// One suspect/trust edge of the merged run log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Virtual time of the edge.
    pub at: SimTime,
    /// Global source id.
    pub source: u32,
    /// Combination index.
    pub combo: u32,
    /// The edge.
    pub transition: FdTransition,
}

/// A sink for periodic in-run publication of each shard's live suspicion
/// state — the hook the serving plane (`fd-serve`) attaches to.
///
/// The engine calls [`publish`](ShardPublisher::publish) from the shard's
/// **worker thread**, strictly after the events at the publication instant
/// have been processed, so the bank passed in is exactly the shard's
/// state at virtual time `now`. Implementations own any cross-thread
/// hand-off (fd-serve's `SuspectView` copies the bitmap words into a
/// seqlock-published buffer); the engine itself shares nothing between
/// shards and never blocks on the sink.
pub trait ShardPublisher: Sync {
    /// Publishes the state of shard `shard` (owning global sources
    /// `start .. start + bank.sources()`) as of virtual time `now`.
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime);
}

/// The contiguous block partition [`ShardedEngine::run`] uses: `(start,
/// len)` per shard, after clamping the shard count to the source count.
/// Exposed so a serving-plane view can be laid out to match the engine's
/// shards exactly. Every returned block is non-empty; zero sources yield
/// an empty partition (there is nothing to shard), never a zero-length
/// block.
pub fn partition(sources: usize, shards: usize) -> Vec<(usize, usize)> {
    if sources == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, sources);
    let q = sources / shards;
    let r = sources % shards;
    (0..shards)
        .map(|s| (s * q + s.min(r), q + usize::from(s < r)))
        .collect()
}

/// The result of a sharded run: streaming digest and QoS roll-ups, plus
/// the retained merged log when [`ShardedConfig::retain_events`] is on.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Order-independent streaming digest over every `(time, global
    /// source, per-source seq, combo, edge)` tuple. Shard-count invariant
    /// and computed on every run, retained or not.
    pub digest: u64,
    /// Per-combination QoS roll-ups folded online by the shards and
    /// merged exactly (integer-µs algebra) — shard-count invariant
    /// bit for bit. Indexed like `config.combos`.
    pub qos: Vec<QosSummary>,
    /// FNV-1a fingerprint of the merged, sorted event log. Only computed
    /// when `retain_events` is set; `0` otherwise.
    pub fingerprint: u64,
    /// Merged monitor events, sorted by `(time, source, per-source seq)`.
    /// Empty unless `retain_events` is set.
    pub events: Vec<MonitorEvent>,
    /// Heartbeats delivered (arrival events processed).
    pub heartbeats: u64,
    /// Heartbeats dropped by the loss model.
    pub lost: u64,
    /// `StartSuspect` edges emitted (counted at the shards).
    pub start_suspects: u64,
    /// `EndSuspect` edges emitted (counted at the shards).
    pub end_suspects: u64,
    /// Shard count the run actually used.
    pub shards: usize,
    /// Wall-clock duration of the parallel section (spawn → merge done).
    pub wall: std::time::Duration,
}

/// Compact per-shard simulation event: no message payloads, no layer
/// stack — just the two things a monitor reacts to.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Heartbeat `seq` from a (shard-local) source arrives. The sequence is
    /// carried as `u32` to keep the event at 12 bytes — two of these sit in
    /// the timer wheel per source, so the width is paid a million times
    /// over. The bank's own u32 microsecond horizon caps any run far below
    /// 2^32 heartbeats per source (see [`seq32`]).
    Arrival { local: u32, seq: u32 },
    /// A deadline timer for a (shard-local) source fires.
    Deadline { local: u32 },
}

/// Narrows a per-source heartbeat sequence for in-flight storage in [`Ev`].
fn seq32(seq: u64) -> u32 {
    u32::try_from(seq).expect("heartbeat seq exceeds u32 (beyond the simulable horizon)")
}

/// What one shard hands back for merging. `events` is non-empty only
/// under `retain_events`; `events[i].1` is the emitting source's private
/// emission counter — the shard-invariant tie-breaker.
struct ShardOut {
    events: Vec<(MonitorEvent, u32)>,
    digest: StreamDigest,
    qos: Vec<QosSummary>,
    heartbeats: u64,
    lost: u64,
    start_suspects: u64,
    end_suspects: u64,
}

/// Per-shard event receiver: stamps every suspect/trust edge with the
/// emitting source's private emission counter, folds the stamped tuple
/// into the shard's [`StreamDigest`] and [`QosAccumulator`], and (under
/// `retain_events`) also keeps it for the merged log.
///
/// The accumulator is fed **shard-local** source indices (its state
/// arrays are sized to the shard block); the digest and retained log use
/// **global** ids, which is what makes them reshard-invariant.
struct ShardRec {
    start: u32,
    emitted: Vec<u32>,
    digest: StreamDigest,
    acc: QosAccumulator,
    retained: Option<Vec<(MonitorEvent, u32)>>,
    start_suspects: u64,
    end_suspects: u64,
}

impl ShardRec {
    fn new(start: usize, len: usize, n_combos: usize, retain: bool) -> Self {
        Self {
            start: start as u32,
            emitted: vec![0; len],
            digest: StreamDigest::new(),
            acc: QosAccumulator::summary(len, n_combos),
            retained: retain.then(Vec::new),
            start_suspects: 0,
            end_suspects: 0,
        }
    }

    fn edge(&mut self, at: SimTime, local: u32, combo: u32, transition: FdTransition) {
        let l = local as usize;
        let seq = self.emitted[l];
        self.emitted[l] = seq + 1;
        let source = self.start + local;
        let is_start = transition == FdTransition::StartSuspect;
        // The shard-invariant coordinate of this edge, fixed-width LE:
        // (virtual µs, global source, per-source seq, combo, edge kind).
        let mut tuple = [0u8; 21];
        tuple[..8].copy_from_slice(&at.as_micros().to_le_bytes());
        tuple[8..12].copy_from_slice(&source.to_le_bytes());
        tuple[12..16].copy_from_slice(&seq.to_le_bytes());
        tuple[16..20].copy_from_slice(&combo.to_le_bytes());
        tuple[20] = u8::from(is_start);
        self.digest.fold_bytes(&tuple);
        if is_start {
            self.start_suspects += 1;
        } else {
            self.end_suspects += 1;
        }
        if let Some(events) = &mut self.retained {
            events.push((
                MonitorEvent {
                    at,
                    source,
                    combo,
                    transition,
                },
                seq,
            ));
        }
    }
}

impl EventSink for ShardRec {
    fn start_suspect(&mut self, at: SimTime, local: u32, combo: u32) {
        self.edge(at, local, combo, FdTransition::StartSuspect);
        self.acc.start_suspect(at, local, combo);
    }

    fn end_suspect(&mut self, at: SimTime, local: u32, combo: u32) {
        self.edge(at, local, combo, FdTransition::EndSuspect);
        self.acc.end_suspect(at, local, combo);
    }

    fn crash(&mut self, at: SimTime, local: u32) {
        self.acc.crash(at, local);
    }

    fn restore(&mut self, at: SimTime, local: u32) {
        self.acc.restore(at, local);
    }
}

/// The sharded engine itself: validated config + `run()`.
///
/// ```
/// use fd_runtime::sharded::{ShardedConfig, ShardedEngine};
///
/// let mut config = ShardedConfig::paper_grid(16, 4, 7);
/// config.shards = 4;
/// let report = ShardedEngine::new(config).run();
/// assert_eq!(report.heartbeats + report.lost, 16 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    config: ShardedConfig,
}

impl ShardedEngine {
    /// Creates an engine over a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero sources/shards/
    /// cycles, η = 0, an empty grid, or a source count beyond `u32`).
    pub fn new(config: ShardedConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.cycles > 0, "need at least one cycle");
        assert!(!config.eta.is_zero(), "heartbeat period must be positive");
        assert!(!config.combos.is_empty(), "need at least one combination");
        assert!(
            u32::try_from(config.sources).is_ok(),
            "source count must fit in u32"
        );
        Self { config }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Runs the configured workload across `config.shards` worker threads
    /// and merges the per-shard logs deterministically.
    pub fn run(&self) -> ShardedReport {
        self.run_inner(None)
    }

    /// Like [`run`](Self::run), publishing each shard's live state to
    /// `publisher` every `every` of **virtual** time (and once more at
    /// quiescence, so the final state is always visible).
    ///
    /// Publication is pure observation: the merged log, fingerprint and
    /// counters are bit-identical to [`run`](Self::run) for the same
    /// configuration (the publisher sees state, it cannot change it).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_published(
        &self,
        every: SimDuration,
        publisher: &dyn ShardPublisher,
    ) -> ShardedReport {
        assert!(!every.is_zero(), "publish interval must be positive");
        self.run_inner(Some((every, publisher)))
    }

    fn run_inner(&self, publish: Option<(SimDuration, &dyn ShardPublisher)>) -> ShardedReport {
        let cfg = &self.config;
        let blocks = partition(cfg.sources, cfg.shards);
        let shards = blocks.len();
        let started = Instant::now();

        let mut outs: Vec<ShardOut> = Vec::with_capacity(shards);
        if shards == 1 {
            outs.push(run_shard(cfg, 0, 0, cfg.sources, publish));
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = blocks
                    .iter()
                    .enumerate()
                    .map(|(s, &(start, len))| {
                        scope.spawn(move || run_shard(cfg, s, start, len, publish))
                    })
                    .collect();
                for h in handles {
                    outs.push(h.join().expect("shard worker panicked"));
                }
            });
        }

        let mut heartbeats = 0;
        let mut lost = 0;
        let mut start_suspects = 0;
        let mut end_suspects = 0;
        let mut digest = StreamDigest::new();
        let mut qos: Vec<QosSummary> = vec![QosSummary::new(); cfg.combos.len()];
        let total: usize = outs.iter().map(|o| o.events.len()).sum();
        let mut merged: Vec<(MonitorEvent, u32)> = Vec::with_capacity(total);
        for out in outs {
            heartbeats += out.heartbeats;
            lost += out.lost;
            start_suspects += out.start_suspects;
            end_suspects += out.end_suspects;
            digest.merge(&out.digest);
            for (acc, shard) in qos.iter_mut().zip(&out.qos) {
                acc.merge(shard);
            }
            merged.extend(out.events);
        }

        // The retained path: merge-sort the per-shard logs by (virtual
        // time, global source, per-source emission seq) — unique and
        // independent of sharding — and fingerprint the result. Skipped
        // entirely (fingerprint 0, no events) unless retention is on.
        let mut fingerprint: u64 = 0;
        let events: Vec<MonitorEvent> = if cfg.retain_events {
            merged.sort_unstable_by_key(|(e, seq)| (e.at, e.source, *seq));
            fingerprint = 0xcbf2_9ce4_8422_2325;
            merged
                .into_iter()
                .map(|(e, _)| {
                    fnv1a(&mut fingerprint, &e.at.as_micros().to_le_bytes());
                    fnv1a(&mut fingerprint, &e.source.to_le_bytes());
                    fnv1a(&mut fingerprint, &e.combo.to_le_bytes());
                    fnv1a(
                        &mut fingerprint,
                        &[u8::from(e.transition == FdTransition::StartSuspect)],
                    );
                    e
                })
                .collect()
        } else {
            debug_assert!(merged.is_empty());
            Vec::new()
        };

        ShardedReport {
            digest: digest.value(),
            qos,
            fingerprint,
            events,
            heartbeats,
            lost,
            start_suspects,
            end_suspects,
            shards,
            wall: started.elapsed(),
        }
    }
}

/// One FNV-1a step over a byte string.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Derives the per-source stream seed from the root seed and the
/// **global** source id (splitmix64 finaliser), so streams survive
/// resharding untouched.
fn source_seed(seed: u64, global: u32) -> u64 {
    let mut z = seed ^ u64::from(global).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-source heartbeat model: loss, delay, spikes — one private stream.
struct SourceModel {
    rng: DetRng,
}

impl SourceModel {
    /// Draws the fate of heartbeat `seq`: `None` if lost, otherwise its
    /// one-way delay. Draw order is fixed (loss, spike, jitter) so the
    /// stream is identical however callers interleave sources.
    fn draw(&mut self, cfg: &ShardedConfig) -> Option<SimDuration> {
        let lost = self.rng.chance(cfg.loss);
        let spike = self.rng.chance(cfg.spike_prob);
        let jitter = self.rng.uniform(0.0, cfg.jitter_ms.max(0.0));
        if lost {
            return None;
        }
        let mut delay_ms = cfg.base_delay_ms.max(0.0) + jitter;
        if spike {
            delay_ms *= cfg.spike_factor.max(1.0);
        }
        Some(SimDuration::from_millis_f64(delay_ms))
    }
}

/// Below this many sources per shard the binary heap's cache locality
/// beats the wheel's constant-time ops (measured crossover ≈ 10⁴ pending
/// timers); above it the heap's log n and scattered sift paths lose.
/// The two backends are bit-identical (proven by test), so the pick is
/// invisible in the results — it only moves the crossover cost.
const WHEEL_MIN_SOURCES: usize = 16_384;

/// Runs one shard to quiescence: a compact event loop over this shard's
/// block of the source bank, on the queue backend that is fastest for
/// the shard's size. With a publisher attached, the shard additionally
/// publishes its bank every `every` of virtual time — a read-only hook
/// after event processing, so the simulation itself is unchanged.
fn run_shard(
    cfg: &ShardedConfig,
    shard: usize,
    start: usize,
    len: usize,
    publish: Option<(SimDuration, &dyn ShardPublisher)>,
) -> ShardOut {
    let backend = if len >= WHEEL_MIN_SOURCES {
        QueueBackend::Wheel
    } else {
        QueueBackend::Heap
    };
    let mut sim: Simulator<Ev> = Simulator::with_backend_and_capacity(backend, len * 2);
    let mut bank = SourceBank::new(&cfg.combos, cfg.eta, len);
    let mut models: Vec<SourceModel> = (start..start + len)
        .map(|g| SourceModel {
            rng: DetRng::seed_from(source_seed(cfg.seed, g as u32)),
        })
        .collect();
    // Earliest outstanding deadline timer per source (µs on the bank's
    // u32 deadline clock, MAX = none).
    let mut armed: Vec<u32> = vec![u32::MAX; len];
    let mut rec = ShardRec::new(start, len, cfg.combos.len(), cfg.retain_events);
    let mut heartbeats = 0u64;
    let mut lost = 0u64;

    // First kept heartbeat of every source.
    for local in 0..len {
        if let Some((seq, at)) = next_arrival(cfg, &mut models[local], 0, SimTime::ZERO, &mut lost)
        {
            sim.schedule_at(
                at,
                Ev::Arrival {
                    local: local as u32,
                    seq: seq32(seq),
                },
            );
        }
    }

    // Next virtual instant at (or after) which the shard publishes. The
    // comparison below is one branch per event when no publisher is
    // attached — the whole cost of the serving hook on the hot path.
    let mut next_pub = publish.map(|(every, _)| SimTime::ZERO + every);
    let mut last_at = SimTime::ZERO;

    // Drain to quiescence rather than to a time horizon: each source sends
    // at most `cycles` heartbeats, and once a source's combos have all
    // fired their final deadline nothing re-arms, so the loop terminates —
    // and every drawn heartbeat is accounted for as delivered or lost.
    while let Some((at, ev)) = sim.next_event() {
        last_at = at;
        match ev {
            Ev::Arrival { local, seq } => {
                heartbeats += 1;
                let l = local as usize;
                // Check-then-observe, like the monitor's event loop: a
                // deadline that elapsed strictly before this arrival must
                // fire first. O(1) when nothing is due.
                bank.check_source_into(local, at, &mut rec);
                bank.observe_heartbeat_into(local, u64::from(seq), at, &mut rec);
                arm(&mut sim, &bank, local, at, &mut armed);
                if let Some((next_seq, next_at)) =
                    next_arrival(cfg, &mut models[l], u64::from(seq) + 1, at, &mut lost)
                {
                    sim.schedule_at(
                        next_at,
                        Ev::Arrival {
                            local,
                            seq: seq32(next_seq),
                        },
                    );
                }
            }
            Ev::Deadline { local } => {
                let l = local as usize;
                if u64::from(armed[l]) == at.as_micros() {
                    armed[l] = u32::MAX;
                }
                bank.check_source_into(local, at, &mut rec);
                arm(&mut sim, &bank, local, at, &mut armed);
            }
        }
        if let Some(due) = next_pub {
            if at >= due {
                let (every, publisher) = publish.expect("next_pub set only with a publisher");
                publisher.publish(shard, start, &bank, at);
                // Skip over publication instants the event stream jumped
                // past: the next due time is strictly after `at`.
                let mut due = due;
                while due <= at {
                    due = due + every;
                }
                next_pub = Some(due);
            }
        }
    }

    // Final publication at quiescence so the served view always converges
    // to the bank's terminal state.
    if let Some((_, publisher)) = publish {
        publisher.publish(shard, start, &bank, last_at);
    }

    // The shard's roll-up closes at its own last processed instant. This
    // is reshard-invariant because the workload injects no crashes: with
    // no crash state pending, an accumulator's finish depends only on the
    // edges already folded, never on how late the close lands.
    ShardOut {
        events: rec.retained.take().unwrap_or_default(),
        digest: rec.digest,
        qos: rec.acc.finish_summaries(last_at),
        heartbeats,
        lost,
        start_suspects: rec.start_suspects,
        end_suspects: rec.end_suspects,
    }
}

/// Finds the next non-lost heartbeat of a source from `from_seq` on,
/// counting losses. Arrival times are clamped to `now` so the per-source
/// chain never schedules into the past (a spiked predecessor can outlast
/// its successor's nominal arrival).
fn next_arrival(
    cfg: &ShardedConfig,
    model: &mut SourceModel,
    from_seq: u64,
    now: SimTime,
    lost: &mut u64,
) -> Option<(u64, SimTime)> {
    let mut seq = from_seq;
    while seq < cfg.cycles {
        match model.draw(cfg) {
            Some(delay) => {
                let nominal = SimTime::ZERO + cfg.eta * seq + delay;
                return Some((seq, nominal.max(now)));
            }
            None => {
                *lost += 1;
                seq += 1;
            }
        }
    }
    None
}

/// Re-arms the deadline timer of `source` if its bank wakeup moved below
/// the earliest outstanding timer. Past-due wakeups fire immediately
/// (scheduled at `now`); superseded timers stay queued and resolve as
/// cheap no-op checks.
fn arm(
    sim: &mut Simulator<Ev>,
    bank: &SourceBank,
    local: u32,
    now: SimTime,
    armed: &mut [u32],
) {
    let l = local as usize;
    if let Some(wakeup) = bank.next_wakeup(local) {
        let fire_at = wakeup.max(now);
        let fire_us = fire_at.as_micros();
        // `fire_us < armed[l] <= u32::MAX`, so the narrowing is exact.
        if fire_us < u64::from(armed[l]) {
            sim.schedule_at(fire_at, Ev::Deadline { local });
            armed[l] = fire_us as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_config(sources: usize, shards: usize) -> ShardedConfig {
        let mut cfg = ShardedConfig::paper_grid(sources, 8, 42);
        cfg.shards = shards;
        // Lively fault model so the log actually contains edges; retain
        // the log so tests can inspect it.
        cfg.loss = 0.08;
        cfg.spike_prob = 0.06;
        cfg.retain_events = true;
        cfg
    }

    #[test]
    fn produces_suspicion_activity() {
        let report = ShardedEngine::new(busy_config(24, 1)).run();
        assert!(report.heartbeats > 0);
        assert!(report.lost > 0, "loss model never fired");
        assert!(report.start_suspects > 0, "no suspicion edges in the log");
        assert!(report.end_suspects > 0, "no trust edges in the log");
        assert_eq!(
            report.events.len() as u64,
            report.start_suspects + report.end_suspects
        );
        assert_eq!(report.heartbeats + report.lost, 24 * 8);
    }

    #[test]
    fn merged_log_is_time_and_source_ordered() {
        let report = ShardedEngine::new(busy_config(17, 4)).run();
        for w in report.events.windows(2) {
            assert!(
                (w[0].at, w[0].source) <= (w[1].at, w[1].source),
                "merge order violated: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// The acceptance criterion: sharded and single-threaded execution
    /// produce bit-identical merged logs, digests and QoS roll-ups for
    /// the same seed, for every shard count (including one that divides
    /// the sources unevenly).
    #[test]
    fn shard_count_does_not_change_the_merged_log() {
        let baseline = ShardedEngine::new(busy_config(24, 1)).run();
        assert!(!baseline.events.is_empty());
        for shards in [2usize, 5, 8] {
            let sharded = ShardedEngine::new(busy_config(24, shards)).run();
            assert_eq!(sharded.shards, shards);
            assert_eq!(
                baseline.fingerprint, sharded.fingerprint,
                "fingerprint diverged at {shards} shards"
            );
            assert_eq!(
                baseline.digest, sharded.digest,
                "streaming digest diverged at {shards} shards"
            );
            assert_eq!(
                baseline.qos, sharded.qos,
                "QoS roll-ups diverged at {shards} shards"
            );
            assert_eq!(baseline.events, sharded.events);
            assert_eq!(baseline.heartbeats, sharded.heartbeats);
            assert_eq!(baseline.lost, sharded.lost);
        }
    }

    /// The streaming path stands on its own: with retention off the
    /// report carries no events and no fingerprint, yet the digest and
    /// the QoS roll-ups are still shard-count invariant — and identical
    /// to what the retained run computes.
    #[test]
    fn streaming_results_survive_without_retention() {
        let retained = ShardedEngine::new(busy_config(24, 3)).run();
        let mut lean = busy_config(24, 1);
        lean.retain_events = false;
        let baseline = ShardedEngine::new(lean).run();
        assert!(baseline.events.is_empty());
        assert_eq!(baseline.fingerprint, 0);
        assert_eq!(baseline.digest, retained.digest);
        assert_eq!(baseline.qos, retained.qos);
        assert_eq!(baseline.start_suspects, retained.start_suspects);
        assert_eq!(baseline.end_suspects, retained.end_suspects);
        for shards in [2usize, 5, 8] {
            let mut cfg = busy_config(24, shards);
            cfg.retain_events = false;
            let sharded = ShardedEngine::new(cfg).run();
            assert_eq!(baseline.digest, sharded.digest);
            assert_eq!(baseline.qos, sharded.qos);
        }
    }

    /// The engine's online QoS roll-ups equal a from-scratch replay of
    /// the retained merged log through a fresh accumulator, bit for bit.
    #[test]
    fn online_qos_matches_retained_log_replay() {
        let cfg = busy_config(24, 3);
        let n_combos = cfg.combos.len();
        let report = ShardedEngine::new(cfg).run();
        assert!(!report.events.is_empty());
        let mut acc = QosAccumulator::summary(24, n_combos);
        let mut last_at = SimTime::ZERO;
        for e in &report.events {
            last_at = e.at;
            match e.transition {
                FdTransition::StartSuspect => acc.start_suspect(e.at, e.source, e.combo),
                FdTransition::EndSuspect => acc.end_suspect(e.at, e.source, e.combo),
            }
        }
        assert_eq!(acc.finish_summaries(last_at), report.qos);
        let edges: u64 = report.qos.iter().map(|s| s.mistakes + s.open_mistakes).sum();
        assert!(edges > 0, "roll-ups recorded no suspicion episodes");
    }

    #[test]
    fn digest_counts_every_edge() {
        let report = ShardedEngine::new(busy_config(16, 2)).run();
        // Rebuild the digest from the retained log; it must match the one
        // the shards folded online.
        let mut digest = StreamDigest::new();
        let mut emitted = vec![0u32; 16];
        for e in &report.events {
            let seq = emitted[e.source as usize];
            emitted[e.source as usize] = seq + 1;
            let mut tuple = [0u8; 21];
            tuple[..8].copy_from_slice(&e.at.as_micros().to_le_bytes());
            tuple[8..12].copy_from_slice(&e.source.to_le_bytes());
            tuple[12..16].copy_from_slice(&seq.to_le_bytes());
            tuple[16..20].copy_from_slice(&e.combo.to_le_bytes());
            tuple[20] = u8::from(e.transition == FdTransition::StartSuspect);
            digest.fold_bytes(&tuple);
        }
        assert_eq!(digest.count(), report.events.len() as u64);
        assert_eq!(digest.value(), report.digest);
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let a = ShardedEngine::new(busy_config(12, 2)).run();
        let b = ShardedEngine::new(busy_config(12, 2)).run();
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut other = busy_config(12, 2);
        other.seed = 43;
        let c = ShardedEngine::new(other).run();
        assert_ne!(a.fingerprint, c.fingerprint, "seed had no effect");
    }

    /// Counting publisher: tallies calls and remembers the last virtual
    /// time and suspicion population per shard.
    struct CountingPublisher {
        calls: std::sync::atomic::AtomicU64,
        last_at: std::sync::atomic::AtomicU64,
    }

    impl ShardPublisher for CountingPublisher {
        fn publish(&self, _shard: usize, _start: usize, bank: &SourceBank, now: SimTime) {
            use std::sync::atomic::Ordering;
            assert!(bank.sources() > 0);
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.last_at.fetch_max(now.as_micros(), Ordering::Relaxed);
        }
    }

    #[test]
    fn publish_hook_observes_without_changing_the_run() {
        use std::sync::atomic::Ordering;
        let baseline = ShardedEngine::new(busy_config(24, 3)).run();
        let publisher = CountingPublisher {
            calls: std::sync::atomic::AtomicU64::new(0),
            last_at: std::sync::atomic::AtomicU64::new(0),
        };
        let published = ShardedEngine::new(busy_config(24, 3))
            .run_published(SimDuration::from_millis(500), &publisher);
        // Observation only: the run itself is bit-identical.
        assert_eq!(baseline.fingerprint, published.fingerprint);
        assert_eq!(baseline.events, published.events);
        // Every shard published at least once per elapsed half-second plus
        // the final quiescent publication.
        let calls = publisher.calls.load(Ordering::Relaxed);
        assert!(calls >= 3, "only {calls} publications across 3 shards");
        assert!(publisher.last_at.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        // Zero sources: nothing to shard, no degenerate (0, 0) block.
        assert!(partition(0, 4).is_empty());
        for (sources, shards) in [(10, 3), (24, 1), (7, 7), (5, 16), (1_000, 8)] {
            let blocks = partition(sources, shards);
            assert_eq!(blocks.len(), shards.min(sources));
            let mut next = 0usize;
            for &(start, len) in &blocks {
                assert_eq!(start, next, "gap in partition {sources}/{shards}");
                assert!(len > 0);
                next = start + len;
            }
            assert_eq!(next, sources);
        }
    }

    #[test]
    #[should_panic(expected = "publish interval must be positive")]
    fn zero_publish_interval_rejected() {
        struct Nop;
        impl ShardPublisher for Nop {
            fn publish(&self, _: usize, _: usize, _: &SourceBank, _: SimTime) {}
        }
        let _ = ShardedEngine::new(busy_config(4, 1)).run_published(SimDuration::ZERO, &Nop);
    }

    #[test]
    fn more_shards_than_sources_is_clamped() {
        let report = ShardedEngine::new(busy_config(3, 16)).run();
        assert_eq!(report.shards, 3);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_rejected() {
        let mut cfg = ShardedConfig::paper_grid(1, 1, 0);
        cfg.sources = 0;
        let _ = ShardedEngine::new(cfg);
    }
}
