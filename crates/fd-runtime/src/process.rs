//! A process: a bottom-to-top stack of layers plus the intra-process action
//! router.
//!
//! The router resolves each layer's queued [`Action`]s: `Send` from layer
//! `i` goes to layer `i−1`'s `on_send` (from layer 0 it leaves toward the
//! network); `Deliver` from layer `i` goes to layer `i+1`'s `on_deliver`
//! (from the top layer it is dropped — the application has consumed it).
//! Timer requests and event emissions bubble out to the engine as
//! [`Effect`]s.

use std::collections::VecDeque;

use fd_sim::{SimDuration, SimTime};
use fd_stat::{EventKind, ProcessId};

use crate::layer::{Action, Context, Layer, TimerId};
use crate::message::Message;

/// An engine-visible effect produced while a process handled a callback.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// The bottom layer handed a message to the network.
    ToNetwork(Message),
    /// A layer requested a timer.
    Timer {
        /// The requesting layer's index in the stack.
        layer: usize,
        /// Delay from now.
        delay: SimDuration,
        /// Layer-chosen id.
        id: TimerId,
    },
    /// A layer emitted a NekoStat event.
    Event(EventKind),
}

/// A stack of layers forming one process of the distributed system.
pub struct Process {
    id: ProcessId,
    layers: Vec<Box<dyn Layer>>,
    /// Recycled action buffer handed to each [`Context`]: callbacks swap
    /// it out, drain it, and hand it back, so steady-state routing does
    /// not allocate.
    scratch: Vec<Action>,
    /// Recycled intra-process dispatch queue (FIFO).
    jobs: VecDeque<Job>,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Process")
            .field("id", &self.id)
            .field("layers", &names)
            .finish()
    }
}

/// A pending intra-process dispatch.
enum Job {
    SendVia { layer: usize, msg: Message },
    DeliverVia { layer: usize, msg: Message },
}

impl Process {
    /// Creates a process with the given id and an empty stack.
    pub fn new(id: ProcessId) -> Self {
        Self {
            id,
            layers: Vec::new(),
            scratch: Vec::new(),
            jobs: VecDeque::new(),
        }
    }

    /// Pushes a layer on top of the stack (bottom layer first). Returns
    /// `self` for chaining.
    pub fn with_layer(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// The process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of layers in the stack.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Mutable access to a layer (for tests and result extraction), downcast
    /// by the caller.
    pub fn layer_mut(&mut self, idx: usize) -> &mut dyn Layer {
        &mut *self.layers[idx]
    }

    /// Runs all `on_start` callbacks, bottom layer first.
    pub fn start(&mut self, now: SimTime) -> Vec<Effect> {
        let mut effects = Vec::new();
        for i in 0..self.layers.len() {
            let mut actions = std::mem::take(&mut self.scratch);
            let mut ctx = Context::with_actions(now, self.id, actions);
            self.layers[i].on_start(&mut ctx);
            actions = ctx.take_actions();
            self.route(i, &mut actions, now, &mut effects);
            self.scratch = actions;
        }
        effects
    }

    /// Handles a message arriving from the network (enters at the bottom
    /// layer's `on_deliver`).
    pub fn deliver_from_network(&mut self, now: SimTime, msg: Message) -> Vec<Effect> {
        let mut effects = Vec::new();
        if self.layers.is_empty() {
            return effects;
        }
        let mut actions = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_actions(now, self.id, actions);
        self.layers[0].on_deliver(&mut ctx, msg);
        actions = ctx.take_actions();
        self.route(0, &mut actions, now, &mut effects);
        self.scratch = actions;
        effects
    }

    /// Handles a timer previously requested by `layer`.
    pub fn timer_fired(&mut self, now: SimTime, layer: usize, id: TimerId) -> Vec<Effect> {
        let mut effects = Vec::new();
        if layer >= self.layers.len() {
            return effects;
        }
        let mut actions = std::mem::take(&mut self.scratch);
        let mut ctx = Context::with_actions(now, self.id, actions);
        self.layers[layer].on_timer(&mut ctx, id);
        actions = ctx.take_actions();
        self.route(layer, &mut actions, now, &mut effects);
        self.scratch = actions;
        effects
    }

    /// Routes actions produced by `origin_layer` until the intra-process
    /// queue drains, accumulating engine-visible effects. `actions` is
    /// drained and reused as the buffer for every nested callback, so the
    /// steady state allocates nothing.
    fn route(
        &mut self,
        origin_layer: usize,
        actions: &mut Vec<Action>,
        now: SimTime,
        effects: &mut Vec<Effect>,
    ) {
        debug_assert!(self.jobs.is_empty(), "dispatch queue leaked jobs");
        let layer_count = self.layers.len();
        Self::enqueue(layer_count, origin_layer, actions, effects, &mut self.jobs);
        // FIFO processing keeps per-message ordering intuitive.
        while let Some(job) = self.jobs.pop_front() {
            let mut ctx = Context::with_actions(now, self.id, std::mem::take(actions));
            let layer = match job {
                Job::SendVia { layer, msg } => {
                    self.layers[layer].on_send(&mut ctx, msg);
                    layer
                }
                Job::DeliverVia { layer, msg } => {
                    self.layers[layer].on_deliver(&mut ctx, msg);
                    layer
                }
            };
            *actions = ctx.take_actions();
            Self::enqueue(layer_count, layer, actions, effects, &mut self.jobs);
        }
    }

    /// Converts one layer's drained actions into jobs for adjacent layers
    /// or engine effects.
    fn enqueue(
        layer_count: usize,
        layer: usize,
        actions: &mut Vec<Action>,
        effects: &mut Vec<Effect>,
        jobs: &mut VecDeque<Job>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Send(msg) => {
                    if layer == 0 {
                        effects.push(Effect::ToNetwork(msg));
                    } else {
                        jobs.push_back(Job::SendVia {
                            layer: layer - 1,
                            msg,
                        });
                    }
                }
                Action::Deliver(msg) => {
                    if layer + 1 >= layer_count {
                        // Above the top layer: consumed by the application.
                    } else {
                        jobs.push_back(Job::DeliverVia {
                            layer: layer + 1,
                            msg,
                        });
                    }
                }
                Action::SetTimer { delay, id } => {
                    effects.push(Effect::Timer { layer, delay, id });
                }
                Action::Emit(kind) => effects.push(Effect::Event(kind)),
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::MessageKind;
    use proptest::prelude::*;

    /// A layer that forwards in both directions, counting traffic.
    struct Counting {
        up: u64,
        down: u64,
    }
    impl Layer for Counting {
        fn on_send(&mut self, ctx: &mut Context, msg: Message) {
            self.down += 1;
            ctx.send(msg);
        }
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.up += 1;
            ctx.deliver(msg);
        }
    }

    /// Top layer that echoes every k-th delivery back down.
    struct EchoEvery {
        k: u64,
        seen: u64,
    }
    impl Layer for EchoEvery {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.seen += 1;
            if self.k > 0 && self.seen.is_multiple_of(self.k) {
                ctx.send(Message::data(msg.to, msg.from, msg.seq, ctx.now(), vec![]));
            }
        }
    }

    proptest! {
        /// For any stack depth and any delivery count, every message passes
        /// every transparent layer exactly once per direction, and replies
        /// reach the network exactly as often as the top layer emits them.
        #[test]
        fn routing_is_exactly_once(depth in 1usize..6, deliveries in 1u64..50, k in 1u64..5) {
            let mut p = Process::new(ProcessId(0));
            for _ in 0..depth {
                p = p.with_layer(Counting { up: 0, down: 0 });
            }
            p = p.with_layer(EchoEvery { k, seen: 0 });
            let mut to_network = 0u64;
            for seq in 0..deliveries {
                let msg = Message::heartbeat(ProcessId(1), ProcessId(0), seq, SimTime::ZERO);
                for e in p.deliver_from_network(SimTime::ZERO, msg) {
                    if matches!(e, Effect::ToNetwork(m) if matches!(m.kind, MessageKind::Data(_))) {
                        to_network += 1;
                    }
                }
            }
            prop_assert_eq!(to_network, deliveries / k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    /// Bottom layer that counts what passes through.
    struct Counter {
        sends: u32,
        delivers: u32,
    }
    impl Layer for Counter {
        fn on_send(&mut self, ctx: &mut Context, msg: Message) {
            self.sends += 1;
            ctx.send(msg);
        }
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.delivers += 1;
            ctx.deliver(msg);
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    /// Top layer that replies to every delivered message.
    struct Echo;
    impl Layer for Echo {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            let reply = Message::data(msg.to, msg.from, msg.seq + 1, ctx.now(), vec![]);
            ctx.send(reply);
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// Layer that drops everything in both directions.
    struct Blackhole;
    impl Layer for Blackhole {
        fn on_send(&mut self, _ctx: &mut Context, _msg: Message) {}
        fn on_deliver(&mut self, _ctx: &mut Context, _msg: Message) {}
        fn name(&self) -> &str {
            "blackhole"
        }
    }

    fn hb(seq: u64) -> Message {
        Message::heartbeat(ProcessId(1), ProcessId(0), seq, SimTime::ZERO)
    }

    #[test]
    fn delivery_reaches_top_and_reply_travels_down() {
        let mut p = Process::new(ProcessId(0))
            .with_layer(Counter {
                sends: 0,
                delivers: 0,
            })
            .with_layer(Echo);
        let effects = p.deliver_from_network(SimTime::from_secs(1), hb(5));
        // The Echo reply must come out of the bottom as a network message.
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::ToNetwork(m) => {
                assert_eq!(m.seq, 6);
                assert_eq!(m.kind, MessageKind::Data(vec![]));
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn blackhole_layer_stops_traffic() {
        let mut p = Process::new(ProcessId(0))
            .with_layer(Counter {
                sends: 0,
                delivers: 0,
            })
            .with_layer(Blackhole)
            .with_layer(Echo);
        let effects = p.deliver_from_network(SimTime::ZERO, hb(1));
        assert!(effects.is_empty());
    }

    #[test]
    fn top_delivery_is_consumed() {
        struct Up;
        impl Layer for Up {
            fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
                ctx.deliver(msg); // top layer delivering further up: dropped
            }
        }
        let mut p = Process::new(ProcessId(0)).with_layer(Up);
        let effects = p.deliver_from_network(SimTime::ZERO, hb(1));
        assert!(effects.is_empty());
    }

    #[test]
    fn timers_and_events_bubble_out_with_layer_index() {
        struct Ticker;
        impl Layer for Ticker {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_secs(1), 42);
                ctx.emit(EventKind::Sent { seq: 0 });
            }
        }
        let mut p = Process::new(ProcessId(2))
            .with_layer(Counter {
                sends: 0,
                delivers: 0,
            })
            .with_layer(Ticker);
        let effects = p.start(SimTime::ZERO);
        assert_eq!(
            effects,
            vec![
                Effect::Timer {
                    layer: 1,
                    delay: SimDuration::from_secs(1),
                    id: 42
                },
                Effect::Event(EventKind::Sent { seq: 0 }),
            ]
        );
    }

    #[test]
    fn timer_routes_to_requesting_layer() {
        struct OnTick {
            ticks: u32,
        }
        impl Layer for OnTick {
            fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
                self.ticks += 1;
                ctx.send(Message::heartbeat(
                    ctx.process(),
                    ProcessId(9),
                    id,
                    ctx.now(),
                ));
            }
        }
        let mut p = Process::new(ProcessId(1))
            .with_layer(Counter {
                sends: 0,
                delivers: 0,
            })
            .with_layer(OnTick { ticks: 0 });
        let effects = p.timer_fired(SimTime::from_secs(3), 1, 77);
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::ToNetwork(m) => assert_eq!(m.seq, 77),
            other => panic!("unexpected {other:?}"),
        }
        // Firing a timer for an out-of-range layer is a no-op.
        assert!(p.timer_fired(SimTime::from_secs(4), 9, 1).is_empty());
    }

    #[test]
    fn empty_process_swallows_deliveries() {
        let mut p = Process::new(ProcessId(0));
        assert!(p.deliver_from_network(SimTime::ZERO, hb(0)).is_empty());
        assert_eq!(p.layer_count(), 0);
    }

    #[test]
    fn debug_lists_layer_names() {
        let p = Process::new(ProcessId(0))
            .with_layer(Counter {
                sends: 0,
                delivers: 0,
            })
            .with_layer(Echo);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("counter") && dbg.contains("echo"), "{dbg}");
    }
}
