//! Monitor crash-recovery: supervised restart of a recoverable layer.
//!
//! A monitor on a real wide-area deployment is itself a process that
//! crashes: the machine reboots, the JVM dies, the operator restarts the
//! service. The QoS the paper measures silently assumes the monitor lives
//! forever. This module drops that assumption:
//!
//! * [`Recoverable`] — a [`Layer`] whose state can be checkpointed to bytes
//!   and restored, or rebuilt from scratch;
//! * [`SupervisorLayer`] — wraps a `Recoverable` child and executes
//!   scheduled monitor crashes ([`FaultKind::Crash`] entries of a
//!   [`FaultPlan`]): while down, all traffic and timers addressed to the
//!   child are dropped (and counted); after the outage, restart attempts
//!   proceed under exponential backoff until one succeeds, at which point
//!   the child is either **warm-restarted** from the checkpoint taken at
//!   the crash instant (modelling continuously persisted detector state) or
//!   **cold-restarted** from scratch, and re-arms its own timers.
//!
//! Recovery telemetry is emitted as [`EventKind::App`] events
//! (`SUPERVISOR_EVENT_*`), so experiments measure recovery time and message
//! loss from the event log alone.

use fd_sim::{DetRng, SimDuration, SimTime};
use fd_stat::EventKind;

use crate::chaos::FaultPlan;
use crate::layer::{Action, Context, Layer, TimerId};
use crate::message::Message;

/// App-event code: the supervised layer crashed (value = crash ordinal,
/// starting at 1).
pub const SUPERVISOR_EVENT_CRASH: u32 = 0xC4A0_0010;
/// App-event code: a restart attempt failed (value = the attempt number).
pub const SUPERVISOR_EVENT_RESTART_FAILED: u32 = 0xC4A0_0011;
/// App-event code: the layer recovered from checkpoint (value = recovery
/// time in µs, crash to recovery).
pub const SUPERVISOR_EVENT_RECOVERED_WARM: u32 = 0xC4A0_0012;
/// App-event code: the layer recovered from scratch (value = recovery time
/// in µs, crash to recovery).
pub const SUPERVISOR_EVENT_RECOVERED_COLD: u32 = 0xC4A0_0013;
/// App-event code: callbacks dropped during the outage just ended (value =
/// the count of dropped deliveries + timer fires).
pub const SUPERVISOR_EVENT_DROPPED: u32 = 0xC4A0_0014;

/// A layer whose state survives a crash of its host.
///
/// The contract mirrors `DetectorBank::snapshot`/`restore` in `fd-core`: a
/// checkpoint taken at time `t` and restored into a matching layer must make
/// it continue **bit-identically** to one that never crashed, given the same
/// subsequent inputs.
pub trait Recoverable: Layer {
    /// Serialises the recoverable state, or `None` if this instance cannot
    /// be checkpointed (the supervisor then falls back to a cold restart).
    fn checkpoint(&self) -> Option<Vec<u8>>;

    /// Restores state from a checkpoint. On error the layer must be left
    /// usable (the supervisor falls back to [`reset`](Self::reset)).
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String>;

    /// Rebuilds the layer from scratch (a cold restart).
    fn reset(&mut self);

    /// Re-arms timers after a restart (warm or cold). Called once the state
    /// is in place; the layer schedules whatever timers its current state
    /// requires.
    fn rearm(&mut self, _ctx: &mut Context) {}
}

/// How the supervisor brings the child back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Restore from the checkpoint taken at the crash instant; falls back
    /// to cold if no checkpoint exists or restoring fails.
    Warm,
    /// Rebuild from scratch.
    Cold,
}

/// Timer-id namespace claimed by the supervisor (bit 62; bit 63 stays free
/// for an enclosing [`crate::ChaosLayer`]).
const SUP_TIMER_NS: u64 = 1 << 62;
const _: () = assert!(
    SUP_TIMER_NS & crate::layer::RESERVED_TIMER_BITS == SUP_TIMER_NS,
    "supervisor namespace must live inside the reserved wrapper bits"
);
/// The restart-attempt timer.
const SUP_RESTART: u64 = SUP_TIMER_NS | (1 << 61);
/// Largest timer id the supervised child may use.
const SUP_CHILD_MAX: u64 = SUP_TIMER_NS - 1;
/// Hard ceiling on any computed restart backoff (60 s): the point of the
/// exponential ladder is to stop hammering a broken child, not to push the
/// next attempt past the simulation horizon.
pub const MAX_BACKOFF_US: u64 = 60_000_000;

/// Exponential restart backoff in microseconds for 1-based `attempt`:
/// `base_us · 2^(attempt-1)`, clamped to `max_us`.
///
/// Total over the whole input domain — the doubling count saturates, the
/// shift is checked (a shift of 64+ would be UB-adjacent `1 << n` wrap on
/// some paths, so it collapses to `u64::MAX` instead), and the multiply
/// saturates. Shared by [`SupervisorLayer`] and the shard-plane supervisor
/// in [`crate::sharded`].
pub fn backoff_us(base_us: u64, attempt: u32, max_us: u64) -> u64 {
    let doublings = attempt.saturating_sub(1);
    let factor = if doublings >= 64 {
        u64::MAX
    } else {
        1_u64.checked_shl(doublings).unwrap_or(u64::MAX)
    };
    base_us.saturating_mul(factor).min(max_us)
}

/// Wraps a [`Recoverable`] layer and executes the scheduled crashes of a
/// [`FaultPlan`], restarting the child with exponential backoff.
pub struct SupervisorLayer {
    child: Box<dyn Recoverable>,
    crashes: Vec<(SimDuration, SimDuration)>,
    mode: RestartMode,
    backoff_base: SimDuration,
    restart_success_prob: f64,
    forced_failures: u32,
    rng: DetRng,

    down_since: Option<SimTime>,
    attempt: u32,
    checkpoint: Option<Vec<u8>>,
    dropped_while_down: u64,
    crashes_injected: u64,
    restarts: u64,
}

impl std::fmt::Debug for SupervisorLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorLayer")
            .field("child", &self.child.name())
            .field("mode", &self.mode)
            .field("down_since", &self.down_since)
            .field("crashes_injected", &self.crashes_injected)
            .field("restarts", &self.restarts)
            .finish()
    }
}

impl SupervisorLayer {
    /// Supervises `child` under the crash schedule of `plan` (its
    /// [`FaultKind::Crash`](crate::chaos::FaultKind::Crash) entries; all
    /// other fault kinds are ignored here).
    pub fn new(
        child: impl Recoverable + 'static,
        plan: &FaultPlan,
        mode: RestartMode,
        rng: DetRng,
    ) -> Self {
        Self {
            child: Box::new(child),
            crashes: plan.crash_events(),
            mode,
            backoff_base: SimDuration::from_millis(100),
            restart_success_prob: 1.0,
            forced_failures: 0,
            rng,
            down_since: None,
            attempt: 0,
            checkpoint: None,
            dropped_while_down: 0,
            crashes_injected: 0,
            restarts: 0,
        }
    }

    /// Sets the base of the exponential restart backoff (default 100 ms):
    /// attempt `k` (after the first) waits `base · 2^(k−1)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero.
    pub fn with_backoff(mut self, base: SimDuration) -> Self {
        assert!(!base.is_zero(), "backoff base must be positive");
        self.backoff_base = base;
        self
    }

    /// Sets the per-attempt restart success probability (default 1.0),
    /// clamped to `[0, 1]`. Drawn from the supervisor's own seeded stream,
    /// so runs stay reproducible.
    pub fn with_restart_success_prob(mut self, p: f64) -> Self {
        self.restart_success_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Forces the first `n` restart attempts after every crash to fail
    /// deterministically — the scripted way to exercise backoff.
    pub fn with_forced_failures(mut self, n: u32) -> Self {
        self.forced_failures = n;
        self
    }

    /// `true` while the child is crashed.
    pub fn is_down(&self) -> bool {
        self.down_since.is_some()
    }

    /// Crashes injected so far.
    pub fn crashes_injected(&self) -> u64 {
        self.crashes_injected
    }

    /// Successful restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Deliveries and timer fires dropped while down, cumulative.
    pub fn dropped_while_down(&self) -> u64 {
        self.dropped_while_down
    }

    /// The supervised layer, for post-run inspection.
    pub fn child_mut(&mut self) -> &mut dyn Recoverable {
        &mut *self.child
    }

    /// Runs one child callback and replays its actions into the parent
    /// context, validating the timer namespace.
    fn with_child(
        &mut self,
        ctx: &mut Context,
        f: impl FnOnce(&mut dyn Recoverable, &mut Context),
    ) {
        let mut child_ctx = Context::new(ctx.now(), ctx.process());
        f(&mut *self.child, &mut child_ctx);
        for action in child_ctx.take_actions() {
            match action {
                Action::Send(m) => ctx.send(m),
                Action::Deliver(m) => ctx.deliver(m),
                Action::SetTimer { delay, id } => {
                    assert!(
                        id <= SUP_CHILD_MAX,
                        "supervised layer timer id {id} collides with the supervisor namespace"
                    );
                    ctx.set_timer(delay, id);
                }
                Action::Emit(kind) => ctx.emit(kind),
            }
        }
    }

    fn crash(&mut self, ctx: &mut Context, down_for: SimDuration) {
        self.crashes_injected += 1;
        ctx.emit(EventKind::App {
            code: SUPERVISOR_EVENT_CRASH,
            value: self.crashes_injected,
        });
        if self.mode == RestartMode::Warm {
            // The crash-instant checkpoint models continuously persisted
            // detector state (a write-ahead snapshot), so a warm restart
            // resumes exactly where the crash cut the monitor off.
            self.checkpoint = self.child.checkpoint();
        }
        self.down_since = Some(ctx.now());
        self.attempt = 0;
        ctx.set_timer(down_for, SUP_RESTART);
    }

    fn try_restart(&mut self, ctx: &mut Context) {
        self.attempt += 1;
        let forced_fail = self.attempt <= self.forced_failures;
        if forced_fail || !self.rng.chance(self.restart_success_prob) {
            ctx.emit(EventKind::App {
                code: SUPERVISOR_EVENT_RESTART_FAILED,
                value: u64::from(self.attempt),
            });
            let backoff = backoff_us(self.backoff_base.as_micros(), self.attempt, MAX_BACKOFF_US);
            ctx.set_timer(SimDuration::from_micros(backoff), SUP_RESTART);
            return;
        }

        let warm = self.mode == RestartMode::Warm
            && self
                .checkpoint
                .take()
                .is_some_and(|cp| self.child.restore(&cp).is_ok());
        if !warm {
            self.child.reset();
        }
        self.with_child(ctx, |c, cx| c.rearm(cx));

        let down_since = self.down_since.take().unwrap_or(ctx.now());
        let recovery = ctx.now().duration_since(down_since);
        ctx.emit(EventKind::App {
            code: if warm {
                SUPERVISOR_EVENT_RECOVERED_WARM
            } else {
                SUPERVISOR_EVENT_RECOVERED_COLD
            },
            value: recovery.as_micros(),
        });
        ctx.emit(EventKind::App {
            code: SUPERVISOR_EVENT_DROPPED,
            value: self.dropped_while_down,
        });
        self.restarts += 1;
    }
}

impl Layer for SupervisorLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        self.with_child(ctx, |c, cx| c.on_start(cx));
        for (k, (at, _)) in self.crashes.iter().enumerate() {
            ctx.set_timer(*at, SUP_TIMER_NS | k as u64);
        }
    }

    fn on_send(&mut self, ctx: &mut Context, msg: Message) {
        if self.down_since.is_some() {
            self.dropped_while_down += 1;
        } else {
            ctx.send(msg);
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if self.down_since.is_some() {
            self.dropped_while_down += 1;
        } else {
            self.with_child(ctx, |c, cx| c.on_deliver(cx, msg));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        if id & SUP_TIMER_NS == 0 {
            if self.down_since.is_some() {
                // The crashed child's timers fire into the void.
                self.dropped_while_down += 1;
            } else {
                self.with_child(ctx, |c, cx| c.on_timer(cx, id));
            }
            return;
        }
        if id == SUP_RESTART {
            if self.down_since.is_some() {
                self.try_restart(ctx);
            }
            return;
        }
        let idx = (id & !SUP_TIMER_NS) as usize;
        if let Some(&(_, down_for)) = self.crashes.get(idx) {
            // A crash landing while already down merges into the outage.
            if self.down_since.is_none() {
                self.crash(ctx, down_for);
            }
        }
    }

    fn name(&self) -> &str {
        "supervisor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultKind;
    use fd_stat::ProcessId;

    /// A trivially recoverable layer: counts deliveries, checkpoints the
    /// count, and arms one timer on rearm.
    struct Cell {
        value: u64,
        rearmed: u32,
    }
    impl Cell {
        fn new() -> Self {
            Self {
                value: 0,
                rearmed: 0,
            }
        }
    }
    impl Layer for Cell {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.value += 1;
            ctx.deliver(msg);
        }
        fn name(&self) -> &str {
            "cell"
        }
    }
    impl Recoverable for Cell {
        fn checkpoint(&self) -> Option<Vec<u8>> {
            Some(self.value.to_le_bytes().to_vec())
        }
        fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = snapshot.try_into().map_err(|_| "bad length".to_owned())?;
            self.value = u64::from_le_bytes(bytes);
            Ok(())
        }
        fn reset(&mut self) {
            self.value = 0;
        }
        fn rearm(&mut self, ctx: &mut Context) {
            self.rearmed += 1;
            ctx.set_timer(SimDuration::from_secs(1), 7);
        }
    }

    /// A cell that cannot checkpoint (forces cold fallback).
    struct Amnesiac(Cell);
    impl Layer for Amnesiac {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.0.on_deliver(ctx, msg);
        }
        fn name(&self) -> &str {
            "amnesiac"
        }
    }
    impl Recoverable for Amnesiac {
        fn checkpoint(&self) -> Option<Vec<u8>> {
            None
        }
        fn restore(&mut self, _snapshot: &[u8]) -> Result<(), String> {
            Err("unreachable".to_owned())
        }
        fn reset(&mut self) {
            self.0.reset();
        }
    }

    fn hb(seq: u64) -> Message {
        Message::heartbeat(ProcessId(1), ProcessId(0), seq, SimTime::from_secs(seq))
    }

    fn crash_plan(at_s: u64, down_s: u64) -> FaultPlan {
        FaultPlan::new().with(
            SimDuration::from_secs(at_s),
            FaultKind::Crash {
                down_for: SimDuration::from_secs(down_s),
            },
        )
    }

    fn timers(actions: &[Action]) -> Vec<(SimDuration, TimerId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::SetTimer { delay, id } => Some((*delay, *id)),
                _ => None,
            })
            .collect()
    }

    fn app_events(actions: &[Action]) -> Vec<(u32, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Emit(EventKind::App { code, value }) => Some((*code, *value)),
                _ => None,
            })
            .collect()
    }

    /// Drives one crash/outage/restart cycle and returns the recovery
    /// events.
    fn run_cycle(mode: RestartMode) -> (SupervisorLayer, Vec<(u32, u64)>) {
        let mut sup =
            SupervisorLayer::new(Cell::new(), &crash_plan(10, 5), mode, DetRng::seed_from(1));
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        sup.on_start(&mut ctx);
        let start_timers = timers(&ctx.take_actions());
        assert_eq!(start_timers.len(), 1, "one crash scheduled");

        // Three heartbeats reach the child before the crash.
        for seq in 0..3 {
            let mut ctx = Context::new(SimTime::from_secs(seq + 1), ProcessId(0));
            sup.on_deliver(&mut ctx, hb(seq));
        }

        // Crash at t = 10 s.
        let mut ctx = Context::new(SimTime::from_secs(10), ProcessId(0));
        sup.on_timer(&mut ctx, start_timers[0].1);
        assert!(sup.is_down());
        let actions = ctx.take_actions();
        assert_eq!(app_events(&actions), vec![(SUPERVISOR_EVENT_CRASH, 1)]);
        let restart = timers(&actions);
        assert_eq!(restart, vec![(SimDuration::from_secs(5), SUP_RESTART)]);

        // Down: deliveries, sends and child timers are dropped.
        let mut ctx = Context::new(SimTime::from_secs(12), ProcessId(0));
        sup.on_deliver(&mut ctx, hb(3));
        sup.on_send(&mut ctx, hb(4));
        sup.on_timer(&mut ctx, 7);
        assert!(ctx.take_actions().is_empty());
        assert_eq!(sup.dropped_while_down(), 3);

        // Restart at t = 15 s succeeds on the first attempt.
        let mut ctx = Context::new(SimTime::from_secs(15), ProcessId(0));
        sup.on_timer(&mut ctx, SUP_RESTART);
        assert!(!sup.is_down());
        let actions = ctx.take_actions();
        // rearm armed the child's deadline timer (id passes unchanged).
        assert_eq!(timers(&actions), vec![(SimDuration::from_secs(1), 7)]);
        (sup, app_events(&actions))
    }

    #[test]
    fn warm_restart_restores_the_checkpoint() {
        let (mut sup, events) = run_cycle(RestartMode::Warm);
        assert_eq!(
            events,
            vec![
                (SUPERVISOR_EVENT_RECOVERED_WARM, 5_000_000),
                (SUPERVISOR_EVENT_DROPPED, 3),
            ]
        );
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.crashes_injected(), 1);
        // The checkpointed delivery count survived the crash.
        let mut ctx = Context::new(SimTime::from_secs(16), ProcessId(0));
        sup.on_deliver(&mut ctx, hb(5));
        assert_eq!(sup.child_mut().checkpoint().unwrap(), 4u64.to_le_bytes());
        assert_eq!(sup.name(), "supervisor");
    }

    #[test]
    fn cold_restart_rebuilds_from_scratch() {
        let (mut sup, events) = run_cycle(RestartMode::Cold);
        assert_eq!(
            events,
            vec![
                (SUPERVISOR_EVENT_RECOVERED_COLD, 5_000_000),
                (SUPERVISOR_EVENT_DROPPED, 3),
            ]
        );
        // The delivery count was reset.
        let mut ctx = Context::new(SimTime::from_secs(16), ProcessId(0));
        sup.on_deliver(&mut ctx, hb(5));
        assert_eq!(sup.child_mut().checkpoint().unwrap(), 1u64.to_le_bytes());
    }

    #[test]
    fn warm_falls_back_to_cold_without_a_checkpoint() {
        let mut sup = SupervisorLayer::new(
            Amnesiac(Cell::new()),
            &crash_plan(1, 2),
            RestartMode::Warm,
            DetRng::seed_from(2),
        );
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        sup.on_start(&mut ctx);
        let start_timers = timers(&ctx.take_actions());
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        sup.on_timer(&mut ctx, start_timers[0].1);
        let mut ctx = Context::new(SimTime::from_secs(3), ProcessId(0));
        sup.on_timer(&mut ctx, SUP_RESTART);
        let events = app_events(&ctx.take_actions());
        assert_eq!(events[0].0, SUPERVISOR_EVENT_RECOVERED_COLD);
    }

    #[test]
    fn failed_attempts_back_off_exponentially() {
        let mut sup = SupervisorLayer::new(
            Cell::new(),
            &crash_plan(1, 4),
            RestartMode::Warm,
            DetRng::seed_from(3),
        )
        .with_backoff(SimDuration::from_millis(100))
        .with_forced_failures(3);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        sup.on_start(&mut ctx);
        let start_timers = timers(&ctx.take_actions());
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        sup.on_timer(&mut ctx, start_timers[0].1);
        ctx.take_actions();

        // Attempts 1–3 fail with doubling backoff: 100, 200, 400 ms.
        let mut now = SimTime::from_secs(5);
        let mut backoffs = Vec::new();
        for attempt in 1..=3u64 {
            let mut ctx = Context::new(now, ProcessId(0));
            sup.on_timer(&mut ctx, SUP_RESTART);
            let actions = ctx.take_actions();
            assert_eq!(
                app_events(&actions),
                vec![(SUPERVISOR_EVENT_RESTART_FAILED, attempt)]
            );
            let t = timers(&actions);
            assert_eq!(t.len(), 1);
            backoffs.push(t[0].0);
            now = now.saturating_add(t[0].0);
        }
        assert_eq!(
            backoffs,
            vec![
                SimDuration::from_millis(100),
                SimDuration::from_millis(200),
                SimDuration::from_millis(400),
            ]
        );

        // Attempt 4 succeeds; recovery time includes the backoff ladder.
        let mut ctx = Context::new(now, ProcessId(0));
        sup.on_timer(&mut ctx, SUP_RESTART);
        let events = app_events(&ctx.take_actions());
        assert_eq!(events[0].0, SUPERVISOR_EVENT_RECOVERED_WARM);
        assert_eq!(events[0].1, 4_700_000, "4 s outage + 700 ms of backoff");
        assert!(!sup.is_down());
    }

    #[test]
    fn zero_success_probability_never_recovers() {
        let mut sup = SupervisorLayer::new(
            Cell::new(),
            &crash_plan(1, 1),
            RestartMode::Cold,
            DetRng::seed_from(4),
        )
        .with_restart_success_prob(0.0);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        sup.on_start(&mut ctx);
        let start_timers = timers(&ctx.take_actions());
        let mut ctx = Context::new(SimTime::from_secs(1), ProcessId(0));
        sup.on_timer(&mut ctx, start_timers[0].1);
        for k in 0..10 {
            let mut ctx = Context::new(SimTime::from_secs(2 + k), ProcessId(0));
            sup.on_timer(&mut ctx, SUP_RESTART);
        }
        assert!(sup.is_down());
        assert_eq!(sup.restarts(), 0);
    }

    #[test]
    fn transparent_while_up() {
        let mut sup = SupervisorLayer::new(
            Cell::new(),
            &FaultPlan::new(),
            RestartMode::Warm,
            DetRng::seed_from(5),
        );
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        sup.on_start(&mut ctx);
        assert!(ctx.take_actions().is_empty());
        sup.on_deliver(&mut ctx, hb(0));
        sup.on_send(&mut ctx, hb(1));
        let actions = ctx.take_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Deliver(m) if m.seq == 0)));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send(m) if m.seq == 1)));
        assert!(!sup.is_down());
        assert_eq!(sup.dropped_while_down(), 0);
    }

    /// `backoff_us` at and past every overflow boundary: the shift count,
    /// the multiply, and the clamp each saturate instead of wrapping.
    #[test]
    fn backoff_arithmetic_saturates_at_the_boundaries() {
        // The plain ladder below the clamp.
        assert_eq!(backoff_us(100, 0, u64::MAX), 100);
        assert_eq!(backoff_us(100, 1, u64::MAX), 100);
        assert_eq!(backoff_us(100, 2, u64::MAX), 200);
        assert_eq!(backoff_us(100, 11, u64::MAX), 102_400);
        // Attempt 64 wants 2^63: the last representable factor.
        assert_eq!(backoff_us(1, 64, u64::MAX), 1 << 63);
        // Attempt 65 wants 2^64 — shift boundary; must saturate, not wrap
        // to a factor of 0 or 1.
        assert_eq!(backoff_us(1, 65, u64::MAX), u64::MAX);
        assert_eq!(backoff_us(1, u32::MAX, u64::MAX), u64::MAX);
        // Multiply overflow with a modest attempt count.
        assert_eq!(backoff_us(u64::MAX / 2, 3, u64::MAX), u64::MAX);
        assert_eq!(backoff_us(u64::MAX, 1, u64::MAX), u64::MAX);
        // The explicit clamp dominates everything above it.
        assert_eq!(backoff_us(100, 2, 150), 150);
        assert_eq!(
            backoff_us(u64::MAX, u32::MAX, MAX_BACKOFF_US),
            MAX_BACKOFF_US
        );
        assert_eq!(backoff_us(0, u32::MAX, MAX_BACKOFF_US), 0);
        // The layer's own ladder: base 100 ms crosses the 60 s ceiling at
        // attempt 11 (102.4 s) and stays pinned there.
        assert_eq!(backoff_us(100_000, 10, MAX_BACKOFF_US), 51_200_000);
        assert_eq!(backoff_us(100_000, 11, MAX_BACKOFF_US), MAX_BACKOFF_US);
    }
}
