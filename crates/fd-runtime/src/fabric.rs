//! Fabric topology and chaos surface: the *shape* of a federated
//! multi-monitor deployment, kept in fd-runtime so every consumer (the
//! fd-fabric tier itself, experiments, tests) agrees on one vocabulary.
//!
//! A fabric is N **regional monitors**, each watching a contiguous block of
//! sources with its own WAN link profile toward the global tier, plus a
//! fan-in discipline (hierarchical push by default, gossip optionally) and a
//! chaos plan over *monitors* — crash one, partition a region off the WAN,
//! heal it. The mechanics (running the regional `ShardedEngine`s, delivering
//! summaries over `fd-net` links, diagnosing monitor crashes) live in the
//! `fd-fabric` crate; this module is only the declarative surface, the same
//! way [`crate::chaos::FaultPlan`] declares process-level faults.

use fd_net::WanProfile;
use fd_sim::SimDuration;

/// One regional monitor: how many sources it watches, how many shards it
/// runs them on, and the WAN link its summaries cross to reach the global
/// tier (and its gossip peers).
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Sources in this region's contiguous block.
    pub sources: usize,
    /// Shards the regional `ShardedEngine` spreads the block over.
    pub shards: usize,
    /// Calibrated delay/loss profile of the region's WAN uplink.
    pub profile: WanProfile,
}

impl RegionSpec {
    /// A region on the paper's calibrated Italy–Japan WAN path.
    pub fn wan(sources: usize, shards: usize) -> RegionSpec {
        RegionSpec {
            sources,
            shards,
            profile: WanProfile::italy_japan(),
        }
    }
}

/// How regional suspect summaries reach the global tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanIn {
    /// Every region pushes its summary straight to the global tier each
    /// cadence tick — one hop, lowest latency, no redundancy.
    Hierarchical,
    /// Each cadence tick every region forwards its merged view of *all*
    /// regions to `fanout` seeded-random targets (peers or the global
    /// tier). Redundant paths ride out partitions; summary merge is a
    /// join-semilattice so delivery order cannot change the result.
    Gossip {
        /// Targets per region per tick.
        fanout: usize,
    },
}

/// What a fabric-level fault does to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFaultKind {
    /// The regional monitor process dies: summary publication stops
    /// entirely until `heal_after` (if any) restarts it warm.
    MonitorCrash {
        /// Restart the monitor this long after the crash; `None` = stays
        /// down for the rest of the run.
        heal_after: Option<SimDuration>,
    },
    /// The region keeps running but is cut off the WAN: every frame it
    /// emits during the window is lost. Heals by itself when the window
    /// ends.
    Partition {
        /// Window length.
        duration: SimDuration,
    },
}

/// One fault against one region at one virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricFault {
    /// Virtual time offset from run start.
    pub at: SimDuration,
    /// Target region index.
    pub region: u16,
    /// What happens to it.
    pub kind: FabricFaultKind,
}

/// A chaos schedule over the fabric, sorted by injection time.
#[derive(Debug, Clone, Default)]
pub struct FabricChaosPlan {
    /// The faults, sorted by `at` (ties broken by region).
    pub faults: Vec<FabricFault>,
}

impl FabricChaosPlan {
    /// No faults: the clean baseline.
    pub fn none() -> FabricChaosPlan {
        FabricChaosPlan { faults: Vec::new() }
    }

    /// The canonical acceptance scenario: crash `crash_region` at
    /// `crash_at` and heal it `down_for` later, and partition
    /// `partition_region` for `partition_for` starting at `partition_at`.
    pub fn crash_partition_heal(
        crash_region: u16,
        crash_at: SimDuration,
        down_for: SimDuration,
        partition_region: u16,
        partition_at: SimDuration,
        partition_for: SimDuration,
    ) -> FabricChaosPlan {
        let mut plan = FabricChaosPlan {
            faults: vec![
                FabricFault {
                    at: crash_at,
                    region: crash_region,
                    kind: FabricFaultKind::MonitorCrash {
                        heal_after: Some(down_for),
                    },
                },
                FabricFault {
                    at: partition_at,
                    region: partition_region,
                    kind: FabricFaultKind::Partition {
                        duration: partition_for,
                    },
                },
            ],
        };
        plan.sort();
        plan
    }

    /// Sorts faults by (time, region) so injection order is deterministic.
    pub fn sort(&mut self) {
        self.faults.sort_by_key(|f| (f.at.as_micros(), f.region));
    }

    /// Is `region`'s monitor down (crashed, not yet healed) at offset `t`?
    pub fn monitor_down(&self, region: u16, t: SimDuration) -> bool {
        self.faults.iter().any(|f| {
            f.region == region
                && match f.kind {
                    FabricFaultKind::MonitorCrash { heal_after } => {
                        t >= f.at && heal_after.is_none_or(|d| t < f.at + d)
                    }
                    FabricFaultKind::Partition { .. } => false,
                }
        })
    }

    /// Is `region` cut off the WAN (partitioned) at offset `t`?
    pub fn partitioned(&self, region: u16, t: SimDuration) -> bool {
        self.faults.iter().any(|f| {
            f.region == region
                && match f.kind {
                    FabricFaultKind::Partition { duration } => t >= f.at && t < f.at + duration,
                    FabricFaultKind::MonitorCrash { .. } => false,
                }
        })
    }
}

/// The declarative shape of one fabric run.
#[derive(Debug, Clone)]
pub struct FabricTopology {
    /// The regional monitors; region `r` watches the contiguous block
    /// starting at the sum of earlier regions' `sources`.
    pub regions: Vec<RegionSpec>,
    /// Regional summary cadence — the monitor-level heartbeat period the
    /// global tier's detector bank runs on.
    pub summary_every: SimDuration,
    /// Fan-in discipline for summaries.
    pub fan_in: FanIn,
    /// Virtual run length.
    pub horizon: SimDuration,
    /// Root seed: every link, gossip choice and regional engine derives
    /// its stream from this.
    pub seed: u64,
}

impl FabricTopology {
    /// A symmetric fabric: `n` identical WAN regions of `sources_each`
    /// sources on `shards_each` shards, hierarchical fan-in, 1 s summary
    /// cadence.
    pub fn symmetric(
        n: usize,
        sources_each: usize,
        shards_each: usize,
        horizon: SimDuration,
        seed: u64,
    ) -> FabricTopology {
        FabricTopology {
            regions: (0..n)
                .map(|_| RegionSpec::wan(sources_each, shards_each))
                .collect(),
            summary_every: SimDuration::from_secs(1),
            fan_in: FanIn::Hierarchical,
            horizon,
            seed,
        }
    }

    /// Total sources across all regions.
    pub fn total_sources(&self) -> usize {
        self.regions.iter().map(|r| r.sources).sum()
    }

    /// The contiguous `(start, len)` block of region `r`.
    pub fn block(&self, r: usize) -> (usize, usize) {
        let start = self.regions[..r].iter().map(|s| s.sources).sum();
        (start, self.regions[r].sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_contiguous_and_cover_all_sources() {
        let topo = FabricTopology::symmetric(3, 128, 2, SimDuration::from_secs(60), 7);
        assert_eq!(topo.total_sources(), 384);
        assert_eq!(topo.block(0), (0, 128));
        assert_eq!(topo.block(1), (128, 128));
        assert_eq!(topo.block(2), (256, 128));
    }

    #[test]
    fn chaos_plan_windows_answer_down_and_partitioned() {
        let plan = FabricChaosPlan::crash_partition_heal(
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
            2,
            SimDuration::from_secs(20),
            SimDuration::from_secs(4),
        );
        assert!(!plan.monitor_down(1, SimDuration::from_secs(9)));
        assert!(plan.monitor_down(1, SimDuration::from_secs(10)));
        assert!(plan.monitor_down(1, SimDuration::from_secs(14)));
        assert!(!plan.monitor_down(1, SimDuration::from_secs(15)));
        assert!(!plan.partitioned(1, SimDuration::from_secs(12)));
        assert!(plan.partitioned(2, SimDuration::from_secs(21)));
        assert!(!plan.partitioned(2, SimDuration::from_secs(24)));
        // The partitioned monitor is alive the whole time.
        assert!(!plan.monitor_down(2, SimDuration::from_secs(21)));
    }
}
