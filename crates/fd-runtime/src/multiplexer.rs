//! The MultiPlexer layer of the paper's experimental architecture.
//!
//! "When it receives a new message from the network, it immediately forwards
//! the message to all the components at the upper level. This layer permits
//! to feed directly the different failure detectors, guaranteeing that they
//! perceive identical network conditions, and thus is the basis to fairly
//! compare their QoS."
//!
//! [`MultiplexerLayer`] owns its child components (each a [`Layer`]) and
//! fans every delivery out to all of them. Children act as top layers: what
//! they deliver upward is consumed; what they send goes down to the network;
//! their timers are namespaced so each child keeps its own timer ids.

use crate::layer::{Action, BatchedLayer, Context, Layer, TimerId};
use crate::message::Message;

/// How many low bits of a [`TimerId`] remain for the child's own ids.
const CHILD_TIMER_BITS: u32 = 48;
const CHILD_TIMER_MASK: u64 = (1 << CHILD_TIMER_BITS) - 1;

/// App-event code: a multiplexer child panicked and was poisoned (value =
/// the child's index). Emitted once, at the failing callback.
pub const MUX_EVENT_CHILD_POISONED: u32 = 0xC4A0_0020;

/// One multiplexer child: either a plain [`Layer`] that receives an owned
/// clone of each delivery, or a [`BatchedLayer`] that consumes deliveries
/// by reference (no per-child clone — the path used by banked monitors).
enum Child {
    Fanout(Box<dyn Layer>),
    Batched(Box<dyn BatchedLayer>),
}

impl Child {
    fn name(&self) -> &str {
        match self {
            Child::Fanout(l) => l.name(),
            Child::Batched(l) => l.batched_name(),
        }
    }
}

/// Fans deliveries out to a set of child components so they all observe the
/// identical message stream.
///
/// A child that panics during a callback is **poisoned**: the panic is
/// caught, the child's partial actions for that callback are discarded, and
/// the child is skipped from then on. Siblings keep running — one faulty
/// detector must not take the whole monitor down.
pub struct MultiplexerLayer {
    children: Vec<Child>,
    poisoned: Vec<bool>,
    fanned_out: u64,
    poisoned_count: u64,
}

impl std::fmt::Debug for MultiplexerLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiplexerLayer")
            .field("children", &self.children.len())
            .field("fanned_out", &self.fanned_out)
            .field("poisoned", &self.poisoned_count)
            .finish()
    }
}

impl MultiplexerLayer {
    /// Creates an empty multiplexer.
    pub fn new() -> Self {
        Self {
            children: Vec::new(),
            poisoned: Vec::new(),
            fanned_out: 0,
            poisoned_count: 0,
        }
    }

    /// Adds a child component.
    ///
    /// # Panics
    ///
    /// Panics if more than 2¹⁶ children are added (timer namespace limit).
    pub fn with_child(mut self, child: impl Layer + 'static) -> Self {
        assert!(
            self.children.len() < (1 << 16),
            "too many multiplexer children"
        );
        self.children.push(Child::Fanout(Box::new(child)));
        self.poisoned.push(false);
        self
    }

    /// Adds a batched child: it receives each delivery **by reference**
    /// instead of an owned clone. This is the fast path for children that
    /// internally multiplex many consumers (e.g. a monitor layer driving a
    /// detector bank), where the per-child `Message` clone of the fan-out
    /// path would be pure overhead.
    ///
    /// # Panics
    ///
    /// Panics if more than 2¹⁶ children are added (timer namespace limit).
    pub fn with_batched_child(mut self, child: impl BatchedLayer + 'static) -> Self {
        assert!(
            self.children.len() < (1 << 16),
            "too many multiplexer children"
        );
        self.children.push(Child::Batched(Box::new(child)));
        self.poisoned.push(false);
        self
    }

    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Messages fanned out so far (deliveries × children).
    pub fn fanned_out(&self) -> u64 {
        self.fanned_out
    }

    /// `true` if the child at `idx` panicked and is being skipped.
    pub fn is_poisoned(&self, idx: usize) -> bool {
        self.poisoned[idx]
    }

    /// Number of children poisoned so far.
    pub fn poisoned_children(&self) -> u64 {
        self.poisoned_count
    }

    /// The diagnostic name of the child at `idx` (fan-out or batched).
    pub fn child_name(&self, idx: usize) -> &str {
        self.children[idx].name()
    }

    /// Mutable access to a fan-out child, for post-run extraction.
    ///
    /// # Panics
    ///
    /// Panics if the child at `idx` was added with
    /// [`with_batched_child`](Self::with_batched_child) — batched children
    /// are not `dyn Layer`; keep a typed handle if you need post-run access.
    pub fn child_mut(&mut self, idx: usize) -> &mut dyn Layer {
        match &mut self.children[idx] {
            Child::Fanout(l) => &mut **l,
            Child::Batched(l) => panic!(
                "child {idx} ({}) is batched; use a typed handle for post-run access",
                l.batched_name()
            ),
        }
    }

    /// Runs one callback on the child at `idx` behind a panic guard. On a
    /// panic the child is poisoned — skipped from then on, its partial
    /// actions discarded, the event logged — and siblings are unaffected.
    ///
    /// `&mut dyn Layer` is not `UnwindSafe` (a caught panic could leave the
    /// child in a broken state), which is precisely why the child is never
    /// called again afterwards: `AssertUnwindSafe` is sound here because the
    /// poisoned flag makes the possibly-inconsistent state unreachable.
    fn run_child_guarded(
        &mut self,
        ctx: &mut Context,
        idx: usize,
        f: impl FnOnce(&mut Child, &mut Context),
    ) {
        if self.poisoned[idx] {
            return;
        }
        let child = &mut self.children[idx];
        let mut child_ctx = Context::new(ctx.now(), ctx.process());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(child, &mut child_ctx);
        }));
        match outcome {
            Ok(()) => Self::absorb_child_actions(ctx, idx, child_ctx.take_actions()),
            Err(_) => {
                self.poisoned[idx] = true;
                self.poisoned_count += 1;
                ctx.emit(fd_stat::EventKind::App {
                    code: MUX_EVENT_CHILD_POISONED,
                    value: idx as u64,
                });
            }
        }
    }

    /// Re-tags a child's actions into the parent context: deliveries are
    /// consumed (children are top components), sends pass down, timers are
    /// namespaced.
    fn absorb_child_actions(ctx: &mut Context, child_idx: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(m) => ctx.send(m),
                Action::Deliver(_) => {} // children are the top: consumed
                Action::SetTimer { delay, id } => {
                    assert!(
                        id <= CHILD_TIMER_MASK,
                        "child timer id {id} exceeds the multiplexer namespace"
                    );
                    ctx.set_timer(delay, ((child_idx as u64) << CHILD_TIMER_BITS) | id);
                }
                Action::Emit(kind) => ctx.emit(kind),
            }
        }
    }
}

impl Default for MultiplexerLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for MultiplexerLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        for idx in 0..self.children.len() {
            self.run_child_guarded(ctx, idx, |child, child_ctx| match child {
                Child::Fanout(l) => l.on_start(child_ctx),
                Child::Batched(l) => l.on_start_batched(child_ctx),
            });
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        for idx in 0..self.children.len() {
            if self.poisoned[idx] {
                continue;
            }
            self.fanned_out += 1;
            self.run_child_guarded(ctx, idx, |child, child_ctx| match child {
                Child::Fanout(l) => l.on_deliver(child_ctx, msg.clone()),
                Child::Batched(l) => l.on_deliver_ref(child_ctx, &msg),
            });
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        let child_idx = (id >> CHILD_TIMER_BITS) as usize;
        if child_idx >= self.children.len() {
            return;
        }
        self.run_child_guarded(ctx, child_idx, |child, child_ctx| match child {
            Child::Fanout(l) => l.on_timer(child_ctx, id & CHILD_TIMER_MASK),
            Child::Batched(l) => l.on_timer_batched(child_ctx, id & CHILD_TIMER_MASK),
        });
    }

    fn name(&self) -> &str {
        "multiplexer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::{SimDuration, SimTime};
    use fd_stat::{EventKind, ProcessId};

    struct Probe {
        delivered: Vec<u64>,
        ticks: Vec<TimerId>,
    }
    impl Probe {
        fn new() -> Self {
            Self {
                delivered: Vec::new(),
                ticks: Vec::new(),
            }
        }
    }
    impl Layer for Probe {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::from_secs(1), 5);
        }
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            self.delivered.push(msg.seq);
            ctx.emit(EventKind::Received { seq: msg.seq });
            ctx.deliver(msg); // must be swallowed by the multiplexer
        }
        fn on_timer(&mut self, _ctx: &mut Context, id: TimerId) {
            self.ticks.push(id);
        }
        fn name(&self) -> &str {
            "probe"
        }
    }

    fn hb(seq: u64) -> Message {
        Message::heartbeat(ProcessId(1), ProcessId(0), seq, SimTime::ZERO)
    }

    #[test]
    fn all_children_see_every_delivery() {
        let mut mux = MultiplexerLayer::new()
            .with_child(Probe::new())
            .with_child(Probe::new())
            .with_child(Probe::new());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_deliver(&mut ctx, hb(7));
        mux.on_deliver(&mut ctx, hb(8));
        assert_eq!(mux.fanned_out(), 6);
        for i in 0..3 {
            let child = mux.child_mut(i);
            // Downcast via the Probe-specific behaviour: we can't downcast a
            // dyn Layer without Any, so check through emitted events instead.
            let _ = child;
        }
        // Each child emitted one Received per message: 3 children × 2 msgs.
        let emits = ctx
            .take_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Emit(EventKind::Received { .. })))
            .count();
        assert_eq!(emits, 6);
    }

    #[test]
    fn child_upward_deliveries_are_consumed() {
        let mut mux = MultiplexerLayer::new().with_child(Probe::new());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_deliver(&mut ctx, hb(1));
        let deliveries = ctx
            .take_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Deliver(_)))
            .count();
        assert_eq!(deliveries, 0);
    }

    #[test]
    fn timers_are_namespaced_and_routed_back() {
        let mut mux = MultiplexerLayer::new()
            .with_child(Probe::new())
            .with_child(Probe::new());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_start(&mut ctx);
        let timer_ids: Vec<TimerId> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::SetTimer { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(timer_ids.len(), 2);
        assert_ne!(timer_ids[0], timer_ids[1]); // namespaced per child

        // Route one back: only the owning child ticks.
        let mut ctx2 = Context::new(SimTime::from_secs(1), ProcessId(0));
        mux.on_timer(&mut ctx2, timer_ids[1]);
        // Child 1 got id 5 back (the namespace stripped).
        // (Behavioural check via another fire: unknown child index ignored.)
        mux.on_timer(&mut ctx2, u64::MAX);
    }

    /// A batched probe: counts deliveries it saw by reference and arms a
    /// timer on start, like a banked monitor would.
    struct BatchedProbe {
        seen: Vec<u64>,
    }
    impl BatchedLayer for BatchedProbe {
        fn on_start_batched(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::from_secs(2), 7);
        }
        fn on_deliver_ref(&mut self, ctx: &mut Context, msg: &Message) {
            self.seen.push(msg.seq);
            ctx.emit(EventKind::Received { seq: msg.seq });
        }
        fn on_timer_batched(&mut self, ctx: &mut Context, id: TimerId) {
            ctx.emit(EventKind::StartSuspect {
                detector: id as u32,
            });
        }
        fn batched_name(&self) -> &str {
            "batched-probe"
        }
    }

    #[test]
    fn batched_children_see_deliveries_without_clone() {
        let mut mux = MultiplexerLayer::new()
            .with_child(Probe::new())
            .with_batched_child(BatchedProbe { seen: Vec::new() });
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_deliver(&mut ctx, hb(3));
        mux.on_deliver(&mut ctx, hb(4));
        assert_eq!(mux.fanned_out(), 4);
        assert_eq!(mux.child_count(), 2);
        assert_eq!(mux.child_name(0), "probe");
        assert_eq!(mux.child_name(1), "batched-probe");
        // Both the fan-out and the batched child emitted one Received each.
        let emits = ctx
            .take_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Emit(EventKind::Received { .. })))
            .count();
        assert_eq!(emits, 4);
    }

    #[test]
    fn batched_child_timers_are_namespaced_and_routed_back() {
        let mut mux = MultiplexerLayer::new()
            .with_child(Probe::new())
            .with_batched_child(BatchedProbe { seen: Vec::new() });
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_start(&mut ctx);
        let timer_ids: Vec<TimerId> = ctx
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::SetTimer { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(timer_ids.len(), 2);
        // The batched child's timer carries its child index in the high bits
        // and fires back with the namespace stripped (id 7 → detector 7).
        let mut ctx2 = Context::new(SimTime::from_secs(2), ProcessId(0));
        mux.on_timer(&mut ctx2, timer_ids[1]);
        let fired: Vec<_> = ctx2
            .take_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Emit(EventKind::StartSuspect { detector }) => Some(detector),
                _ => None,
            })
            .collect();
        assert_eq!(fired, vec![7]);
    }

    /// A child that panics on a given sequence number.
    struct Grenade {
        fuse: u64,
    }
    impl Layer for Grenade {
        fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
            assert!(msg.seq != self.fuse, "boom at seq {}", msg.seq);
            ctx.emit(EventKind::Received { seq: msg.seq });
        }
        fn name(&self) -> &str {
            "grenade"
        }
    }

    #[test]
    fn panicking_child_is_poisoned_and_siblings_survive() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test output clean
        let mut mux = MultiplexerLayer::new()
            .with_child(Probe::new())
            .with_child(Grenade { fuse: 1 })
            .with_child(Probe::new());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_deliver(&mut ctx, hb(0));
        assert_eq!(mux.poisoned_children(), 0);

        // seq 1 detonates child 1; the parent does not panic.
        mux.on_deliver(&mut ctx, hb(1));
        std::panic::set_hook(prev_hook);
        assert_eq!(mux.poisoned_children(), 1);
        assert!(!mux.is_poisoned(0) && mux.is_poisoned(1) && !mux.is_poisoned(2));

        // Subsequent deliveries skip the poisoned child but feed siblings.
        mux.on_deliver(&mut ctx, hb(2));
        let actions = ctx.take_actions();
        let received: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Emit(EventKind::Received { seq }) => Some(*seq),
                _ => None,
            })
            .collect();
        // seq 0: all 3 children; seq 1: probes only (grenade died before
        // emitting); seq 2: probes only.
        assert_eq!(received, vec![0, 0, 0, 1, 1, 2, 2]);
        // The poisoning itself is visible in the event stream.
        let poisoned: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Emit(EventKind::App { code, value })
                    if *code == MUX_EVENT_CHILD_POISONED =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .collect();
        assert_eq!(poisoned, vec![1]);

        // Timers routed to the poisoned child are ignored, siblings' fire.
        let mut ctx2 = Context::new(SimTime::from_secs(1), ProcessId(0));
        mux.on_timer(&mut ctx2, (1_u64 << CHILD_TIMER_BITS) | 3);
        assert!(ctx2.take_actions().is_empty());
    }

    #[test]
    #[should_panic(expected = "is batched")]
    fn child_mut_rejects_batched_children() {
        let mut mux = MultiplexerLayer::new().with_batched_child(BatchedProbe { seen: Vec::new() });
        let _ = mux.child_mut(0);
    }

    #[test]
    fn empty_multiplexer_is_inert() {
        let mut mux = MultiplexerLayer::default();
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        mux.on_deliver(&mut ctx, hb(0));
        assert!(ctx.take_actions().is_empty());
        assert_eq!(mux.child_count(), 0);
        assert_eq!(mux.name(), "multiplexer");
    }
}
