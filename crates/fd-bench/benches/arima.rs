//! ARIMA estimation costs: fit time by order and window length, and the
//! identification grid (the paper's Table 2 procedure).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_arima::{select_best_model, ArimaModel, ArimaSpec};
use fd_net::{DelayTrace, WanProfile};
use fd_sim::SimDuration;

fn delays(n: usize) -> Vec<f64> {
    DelayTrace::record(&WanProfile::italy_japan(), n, SimDuration::from_secs(1), 9).delays_ms()
}

fn bench_fit_by_order(c: &mut Criterion) {
    let data = delays(2_048);
    let mut group = c.benchmark_group("arima_fit_by_order");
    group.sample_size(10);
    for (p, d, q) in [(0, 1, 1), (1, 0, 0), (2, 1, 1), (3, 1, 2)] {
        let spec = ArimaSpec::new(p, d, q);
        group.bench_with_input(BenchmarkId::from_parameter(spec), &spec, |b, &spec| {
            b.iter(|| black_box(ArimaModel::fit(&data, spec).expect("fit")));
        });
    }
    group.finish();
}

fn bench_fit_by_window(c: &mut Criterion) {
    let spec = ArimaSpec::new(2, 1, 1);
    let mut group = c.benchmark_group("arima_fit_by_window");
    group.sample_size(10);
    for n in [512usize, 2_048, 8_192] {
        let data = delays(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(ArimaModel::fit(data, spec).expect("fit")));
        });
    }
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let data = delays(2_048);
    let model = ArimaModel::fit(&data, ArimaSpec::new(2, 1, 1)).expect("fit");
    c.bench_function("arima_one_step_forecast_pass", |b| {
        b.iter(|| black_box(model.one_step_forecasts(&data).len()));
    });
}

fn bench_selection_grid(c: &mut Criterion) {
    // The Table 2 identification on a reduced grid (the full [0,10]³ search
    // is the same loop, 1331 candidates instead of 12).
    let data = delays(1_024);
    let mut group = c.benchmark_group("table2_identification");
    group.sample_size(10);
    group.bench_function("grid_3x1x2", |b| {
        b.iter(|| black_box(select_best_model(&data, 2, 1, 1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_by_order,
    bench_fit_by_window,
    bench_forecast,
    bench_selection_grid
);
criterion_main!(benches);
