//! Ablation benches for the design choices called out in DESIGN.md: how the
//! tunables (WINMEAN window, LPF β, ARIMA refit interval) move the runtime
//! cost. (Their *accuracy* impact is reported by
//! `cargo run -p fd-experiments --bin ablations`.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_arima::ArimaSpec;
use fd_core::predictor::{ArimaPredictor, Lpf, Predictor, WinMean};
use fd_net::{DelayTrace, WanProfile};
use fd_sim::SimDuration;

fn delays(n: usize) -> Vec<f64> {
    DelayTrace::record(&WanProfile::italy_japan(), n, SimDuration::from_secs(1), 13).delays_ms()
}

fn bench_winmean_window(c: &mut Criterion) {
    let data = delays(4_096);
    let mut group = c.benchmark_group("ablation_winmean_window");
    for window in [2usize, 10, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let mut p = WinMean::new(w);
            let mut i = 0;
            b.iter(|| {
                p.observe(data[i % data.len()]);
                i += 1;
                black_box(p.predict())
            });
        });
    }
    group.finish();
}

fn bench_lpf_beta(c: &mut Criterion) {
    let data = delays(4_096);
    let mut group = c.benchmark_group("ablation_lpf_beta");
    for beta in [0.05f64, 0.125, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            let mut p = Lpf::new(beta);
            let mut i = 0;
            b.iter(|| {
                p.observe(data[i % data.len()]);
                i += 1;
                black_box(p.predict())
            });
        });
    }
    group.finish();
}

fn bench_arima_refit_interval(c: &mut Criterion) {
    // Whole-trace pass: the refit interval trades amortised cost against
    // adaptivity (accuracy side in the `ablations` binary).
    let data = delays(3_000);
    let mut group = c.benchmark_group("ablation_arima_refit");
    group.sample_size(10);
    for refit in [250usize, 1_000, 4_000] {
        group.bench_with_input(BenchmarkId::from_parameter(refit), &refit, |b, &refit| {
            b.iter(|| {
                let mut p = ArimaPredictor::new(ArimaSpec::new(2, 1, 1), refit);
                for &d in &data {
                    p.observe(d);
                }
                black_box(p.predict())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_winmean_window,
    bench_lpf_beta,
    bench_arima_refit_interval
);
criterion_main!(benches);
