//! Runtime substrate costs: layer dispatch, event-queue throughput and a
//! consensus decision round.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fd_consensus::{run_consensus_experiment, ConsensusSetup};
use fd_runtime::{Context, Layer, Message, Process, ProcessId};
use fd_sim::{EventQueue, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q = EventQueue::with_capacity(1024);
        let mut i = 0u64;
        b.iter(|| {
            // Keep a rolling population of ~512 events.
            q.push(SimTime::from_micros(i % 1_000), i);
            i += 1;
            if q.len() > 512 {
                black_box(q.pop());
            }
        });
    });
}

fn bench_layer_dispatch(c: &mut Criterion) {
    // A 4-layer pass-through stack: the per-message routing overhead of the
    // Neko-style runtime.
    struct Transparent;
    impl Layer for Transparent {}
    struct Sink {
        count: u64,
    }
    impl Layer for Sink {
        fn on_deliver(&mut self, _ctx: &mut Context, _msg: Message) {
            self.count += 1;
        }
    }
    c.bench_function("layer_stack_delivery_4deep", |b| {
        let mut p = Process::new(ProcessId(0))
            .with_layer(Transparent)
            .with_layer(Transparent)
            .with_layer(Transparent)
            .with_layer(Sink { count: 0 });
        let msg = Message::heartbeat(ProcessId(1), ProcessId(0), 0, SimTime::ZERO);
        b.iter(|| black_box(p.deliver_from_network(SimTime::ZERO, msg.clone())));
    });
}

fn bench_consensus_round(c: &mut Criterion) {
    // One full failure-free consensus execution (3 processes, WAN links).
    let mut group = c.benchmark_group("consensus");
    group.sample_size(10);
    group.bench_function("failure_free_3_processes", |b| {
        b.iter(|| {
            let setup = ConsensusSetup {
                horizon: SimDuration::from_secs(10),
                ..ConsensusSetup::default_wan(1)
            };
            black_box(run_consensus_experiment(&setup).deciders())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_layer_dispatch,
    bench_consensus_round
);
criterion_main!(benches);
