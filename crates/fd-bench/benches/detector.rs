//! Failure-detector step costs: a single heartbeat through one detector,
//! through each margin type, through the full 30-detector monitor (the
//! multiplexed configuration of the experiments), and through the
//! shared-computation [`DetectorBank`] that replaces the boxed loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fd_core::{all_combinations, ConfidenceMargin, DetectorBank, JacobsonMargin, SafetyMargin};
use fd_sim::{SimDuration, SimTime};

fn bench_margin_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("margin_update");
    group.bench_function("SM_CI", |b| {
        let mut m = ConfidenceMargin::new(2.0);
        let mut i = 0u64;
        b.iter(|| {
            m.update(200.0 + (i % 13) as f64, (i % 7) as f64 - 3.0);
            i += 1;
            black_box(m.margin())
        });
    });
    group.bench_function("SM_JAC", |b| {
        let mut m = JacobsonMargin::new(2.0);
        let mut i = 0u64;
        b.iter(|| {
            m.update(200.0 + (i % 13) as f64, (i % 7) as f64 - 3.0);
            i += 1;
            black_box(m.margin())
        });
    });
    group.finish();
}

fn bench_detector_heartbeat(c: &mut Criterion) {
    let eta = SimDuration::from_secs(1);
    let mut group = c.benchmark_group("detector_heartbeat");

    // The paper's recommended cheap combination.
    group.bench_function("LAST+SM_JAC", |b| {
        let combo = &all_combinations()[9]; // LAST × JAC_low
        let mut fd = combo.build(eta);
        let mut seq = 0u64;
        b.iter(|| {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            black_box(fd.on_heartbeat(seq, arrival));
            seq += 1;
        });
    });

    // All 30 detectors fed the same heartbeat — one monitor step.
    group.bench_function("all_30_multiplexed", |b| {
        let mut detectors: Vec<_> = all_combinations().iter().map(|c| c.build(eta)).collect();
        // Warm the ARIMA detectors past their first fit.
        for seq in 0..512u64 {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for fd in &mut detectors {
                fd.on_heartbeat(seq, arrival);
            }
        }
        let mut seq = 512u64;
        b.iter(|| {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for fd in &mut detectors {
                black_box(fd.on_heartbeat(seq, arrival));
            }
            seq += 1;
        });
    });
    group.finish();
}

fn bench_detector_bank(c: &mut Criterion) {
    let eta = SimDuration::from_secs(1);
    let mut group = c.benchmark_group("detector_bank");

    // The tentpole comparison: one heartbeat through all 30 combinations.
    // `boxed_30_step` runs 30 independent detectors (ARIMA observed 6×,
    // Welford 3× per γ family); `bank_30_step` runs the shared-computation
    // bank (5 distinct predictors, one Welford core). Both are warmed past
    // the ARIMA first fit so the steady state is measured.
    group.bench_function("boxed_30_step", |b| {
        let mut detectors: Vec<_> = all_combinations().iter().map(|c| c.build(eta)).collect();
        for seq in 0..512u64 {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for fd in &mut detectors {
                fd.on_heartbeat(seq, arrival);
            }
        }
        let mut seq = 512u64;
        b.iter(|| {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for fd in &mut detectors {
                black_box(fd.on_heartbeat(seq, arrival));
            }
            seq += 1;
        });
    });
    group.bench_function("bank_30_step", |b| {
        let mut bank = DetectorBank::paper_grid(eta);
        for seq in 0..512u64 {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            bank.observe_heartbeat(seq, arrival);
        }
        let mut seq = 512u64;
        b.iter(|| {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            black_box(bank.observe_heartbeat(seq, arrival));
            seq += 1;
        });
    });

    // The scaling point of the refactor: a monitor watching 1000 sources,
    // each with its own 30-combination bank, advancing one heartbeat cycle.
    group.sample_size(10);
    group.bench_function("bank_1000_sources_cycle", |b| {
        let mut banks: Vec<DetectorBank> =
            (0..1_000).map(|_| DetectorBank::paper_grid(eta)).collect();
        // A short warmup only: 1000 ARIMA first fits at seq 300 would
        // otherwise dominate setup. The steady pre-fit path is what scales.
        for seq in 0..64u64 {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for bank in &mut banks {
                bank.observe_heartbeat(seq, arrival);
            }
        }
        let mut seq = 64u64;
        b.iter(|| {
            let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(200);
            for bank in &mut banks {
                black_box(bank.observe_heartbeat(seq, arrival));
            }
            seq += 1;
        });
    });
    group.finish();
}

fn bench_detector_check(c: &mut Criterion) {
    let eta = SimDuration::from_secs(1);
    c.bench_function("detector_check", |b| {
        let combo = &all_combinations()[9];
        let mut fd = combo.build(eta);
        fd.on_heartbeat(0, SimTime::from_millis(200));
        let now = SimTime::from_millis(500); // before the deadline
        b.iter(|| black_box(fd.check(now)));
    });
}

criterion_group!(
    benches,
    bench_margin_update,
    bench_detector_heartbeat,
    bench_detector_bank,
    bench_detector_check
);
criterion_main!(benches);
