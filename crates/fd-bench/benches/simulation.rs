//! End-to-end costs: simulation-engine throughput and scaled-down runs of
//! every experiment (one bench per paper table/figure).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fd_experiments::{
    arima_selection_experiment, predictor_accuracy_experiment, run_qos_experiment, run_qos_single,
    AccuracyParams, ExperimentParams, Metric,
};
use fd_net::{DelayTrace, WanProfile};

fn bench_engine_throughput(c: &mut Criterion) {
    // One QoS run at small scale: measures engine + 30 detectors together.
    let profile = WanProfile::italy_japan();
    let params = ExperimentParams {
        num_cycles: 300,
        ..ExperimentParams::quick()
    };
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    group.bench_function("qos_run_300_cycles_30_detectors", |b| {
        b.iter(|| black_box(run_qos_single(&profile, &params, 0).0.len()));
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let profile = WanProfile::italy_japan();
    let params = AccuracyParams {
        n_one_way: 3_000,
        ..AccuracyParams::quick()
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table3_predictor_accuracy_3k", |b| {
        b.iter(|| black_box(predictor_accuracy_experiment(&profile, &params)));
    });
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    let profile = WanProfile::italy_japan();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table4_link_characterisation_10k", |b| {
        b.iter(|| {
            let trace = DelayTrace::record(&profile, 10_000, fd_sim::SimDuration::from_secs(1), 11);
            black_box(trace.characteristics())
        });
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let profile = WanProfile::italy_japan();
    let params = AccuracyParams {
        n_one_way: 1_500,
        ..AccuracyParams::quick()
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table2_arima_identification_small", |b| {
        b.iter(|| black_box(arima_selection_experiment(&profile, &params, 2, 1, 1)));
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    // The full Figures 4–8 pipeline at reduced scale (all five figures share
    // one experiment, exactly as in the paper).
    let profile = WanProfile::italy_japan();
    let params = ExperimentParams {
        num_cycles: 400,
        runs: 1,
        ..ExperimentParams::quick()
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("figures4to8_one_run_400_cycles", |b| {
        b.iter(|| {
            let results = run_qos_experiment(&profile, &params);
            for m in Metric::all() {
                black_box(results.figure(m));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_figures
);
criterion_main!(benches);
