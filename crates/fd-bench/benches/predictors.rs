//! Per-observation cost of each predictor.
//!
//! The paper's final remarks: "all the calculation methods seen have
//! constant execution complexity, O(1), though different complexity for the
//! realization". These benches quantify the constants.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_arima::ArimaSpec;
use fd_core::predictor::{ArimaPredictor, Last, Lpf, Mean, Predictor, WinMean};
use fd_core::PredictorKind;
use fd_net::{DelayTrace, WanProfile};
use fd_sim::SimDuration;

fn delays(n: usize) -> Vec<f64> {
    DelayTrace::record(&WanProfile::italy_japan(), n, SimDuration::from_secs(1), 7).delays_ms()
}

fn bench_observe_predict(c: &mut Criterion) {
    let data = delays(4_096);
    let mut group = c.benchmark_group("predictor_step");
    group.bench_function("LAST", |b| {
        let mut p = Last::new();
        let mut i = 0;
        b.iter(|| {
            p.observe(data[i % data.len()]);
            i += 1;
            black_box(p.predict())
        });
    });
    group.bench_function("MEAN", |b| {
        let mut p = Mean::new();
        let mut i = 0;
        b.iter(|| {
            p.observe(data[i % data.len()]);
            i += 1;
            black_box(p.predict())
        });
    });
    group.bench_function("WINMEAN(10)", |b| {
        let mut p = WinMean::new(10);
        let mut i = 0;
        b.iter(|| {
            p.observe(data[i % data.len()]);
            i += 1;
            black_box(p.predict())
        });
    });
    group.bench_function("LPF(1/8)", |b| {
        let mut p = Lpf::new(0.125);
        let mut i = 0;
        b.iter(|| {
            p.observe(data[i % data.len()]);
            i += 1;
            black_box(p.predict())
        });
    });
    // ARIMA's amortised step: the refit every 1000 observations is inside.
    group.bench_function("ARIMA(2,1,1)-amortised", |b| {
        let mut p = ArimaPredictor::new(ArimaSpec::new(2, 1, 1), 1_000);
        // Warm past the first fit so the steady-state cost is measured.
        for &d in &data {
            p.observe(d);
        }
        let mut i = 0;
        b.iter(|| {
            p.observe(data[i % data.len()]);
            i += 1;
            black_box(p.predict())
        });
    });
    group.finish();
}

fn bench_batch_accuracy_run(c: &mut Criterion) {
    // The cost of the whole Table 3 scoring pass per predictor, scaled down.
    let data = delays(2_000);
    let mut group = c.benchmark_group("table3_scoring_pass");
    group.sample_size(10);
    for name in ["LAST", "MEAN", "WINMEAN", "LPF", "ARIMA"] {
        let kind = PredictorKind::paper_default(name).expect("paper predictor family");
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, kind| {
            b.iter(|| {
                let mut p: Box<dyn Predictor> = kind.build();
                let preds = fd_core::predictor::one_step_predictions(&mut *p, &data);
                black_box(preds.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe_predict, bench_batch_accuracy_run);
criterion_main!(benches);
