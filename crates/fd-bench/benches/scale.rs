//! Scaling micro-costs: the hierarchical timer wheel against the binary
//! heap at small and large pending-set sizes, and the `SourceBank`'s
//! batched observation path against looping independent `DetectorBank`s.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fd_core::{DetectorBank, HeartbeatObs, SourceBank};
use fd_sim::{EventQueue, SimDuration, SimTime, TimerWheel};

/// A near-periodic deadline workload with `pending` timers in flight: each
/// pop reschedules one period ahead with a small deterministic stagger —
/// the steady state of a many-source monitor.
fn churn_wheel(pending: u64, rounds: u64) -> u64 {
    let mut w = TimerWheel::new();
    let period = SimDuration::from_secs(1);
    for i in 0..pending {
        w.push(
            SimTime::ZERO + SimDuration::from_micros(i * 997 % 1_000_000),
            i,
        );
    }
    let mut acc = 0;
    for _ in 0..rounds {
        let (at, src) = w.pop().expect("wheel never drains");
        acc ^= at.as_micros().wrapping_add(src);
        w.push(at + period, src);
    }
    acc
}

fn churn_heap(pending: u64, rounds: u64) -> u64 {
    let mut q = EventQueue::new();
    let period = SimDuration::from_secs(1);
    for i in 0..pending {
        q.push(
            SimTime::ZERO + SimDuration::from_micros(i * 997 % 1_000_000),
            i,
        );
    }
    let mut acc = 0;
    for _ in 0..rounds {
        let (at, src) = q.pop().expect("queue never drains");
        acc ^= at.as_micros().wrapping_add(src);
        q.push(at + period, src);
    }
    acc
}

fn bench_timer_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_backends");
    for pending in [1_000u64, 100_000] {
        let rounds = 4 * pending;
        group.bench_function(format!("wheel_churn_{pending}_pending"), |b| {
            b.iter(|| black_box(churn_wheel(pending, rounds)));
        });
        group.bench_function(format!("heap_churn_{pending}_pending"), |b| {
            b.iter(|| black_box(churn_heap(pending, rounds)));
        });
    }
    group.finish();
}

fn bench_source_bank_batch(c: &mut Criterion) {
    const SOURCES: usize = 256;
    let eta = SimDuration::from_secs(1);
    let arrival = |seq: u64| SimTime::ZERO + eta * seq + SimDuration::from_millis(200);

    let mut group = c.benchmark_group("source_bank");
    group.sample_size(10);
    group.bench_function("observe_all_256_sources_cycle", |b| {
        let mut bank = SourceBank::paper_grid(eta, SOURCES);
        let mut batch = Vec::with_capacity(SOURCES);
        let mut seq = 0u64;
        b.iter(|| {
            batch.clear();
            for s in 0..SOURCES {
                batch.push(HeartbeatObs {
                    source: s as u32,
                    seq,
                    arrival: arrival(seq),
                });
            }
            black_box(bank.observe_all(&batch));
            seq += 1;
        });
    });
    group.bench_function("looped_detector_banks_256_cycle", |b| {
        let mut banks: Vec<DetectorBank> = (0..SOURCES)
            .map(|_| DetectorBank::paper_grid(eta))
            .collect();
        let mut seq = 0u64;
        b.iter(|| {
            for bank in &mut banks {
                black_box(bank.observe_heartbeat(seq, arrival(seq)));
            }
            seq += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_timer_backends, bench_source_bank_batch);
criterion_main!(benches);
