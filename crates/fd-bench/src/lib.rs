//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `predictors` — per-observation cost of each predictor (the paper's
//!   O(1) complexity remark) and ARIMA refit cost;
//! * `detector` — failure-detector step cost, alone and 30-multiplexed;
//! * `arima` — fit cost by order and window length, selection grid cost;
//! * `simulation` — simulation-engine throughput and scaled end-to-end
//!   experiment runs (one per table/figure);
//! * `ablation` — parameter sweeps behind the design choices (WINMEAN
//!   window, LPF β, ARIMA refit interval, margin parameters).
