//! Client side of the serving plane: a blocking UDP query client and the
//! bridge that feeds a [`ShardedEngine`](fd_runtime::ShardedEngine)'s
//! publish hook into a [`SuspectView`].

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fd_core::SourceBank;
use fd_runtime::{backoff_us, ShardPublisher};
use fd_sim::SimTime;

use crate::view::{SegmentWriter, SuspectView};
use crate::wire::{Request, Response};

/// Retry/failover policy of a [`ServeClient`] query: attempts rotate
/// across the configured server addresses with jittered exponential
/// backoff between them, all bounded by one overall per-query deadline
/// budget. The exponential ladder reuses the shard supervisor's
/// overflow-audited [`backoff_us`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum send attempts per query, including the first (≥ 1;
    /// 1 = no retry).
    pub attempts: u32,
    /// Base backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Clamp on the exponential backoff.
    pub max_backoff: Duration,
    /// Overall wall-clock budget per query, covering every attempt,
    /// backoff and failover. A query never blocks its caller longer than
    /// roughly this (one attempt's receive wait is truncated to fit).
    pub deadline: Duration,
    /// Seed of the deterministic jitter stream (half-jitter: each pause
    /// is 50–100 % of the exponential value, decorrelating clients that
    /// fail over together).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            deadline: Duration::from_secs(5),
            jitter_seed: 0x5eed_c11e_47f0_1a2b,
        }
    }
}

/// A blocking UDP client for the serving plane. One socket, sequential
/// request/response; spin up one client per load-generator thread.
///
/// A client built with [`connect_with`](Self::connect_with) holds several
/// server addresses: a failed attempt rotates to the next address, so a
/// degraded or unreachable server costs one attempt timeout, not the
/// query.
pub struct ServeClient {
    socket: UdpSocket,
    servers: Vec<SocketAddr>,
    current: usize,
    policy: RetryPolicy,
    attempt_timeout: Duration,
    jitter: u64,
    next_token: u32,
    buf: Box<[u8; 65_536]>,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("servers", &self.servers)
            .field("attempts", &self.policy.attempts)
            .finish()
    }
}

impl ServeClient {
    /// Connects (binds an ephemeral local port) to a server with the
    /// given receive timeout. Single address, no retry — the historical
    /// behaviour; use [`connect_with`](Self::connect_with) for retry and
    /// failover.
    pub fn connect(server: impl ToSocketAddrs, timeout: Duration) -> io::Result<ServeClient> {
        Self::connect_with(
            server,
            timeout,
            RetryPolicy {
                attempts: 1,
                // One attempt: the budget only needs to cover it.
                deadline: timeout.saturating_mul(2),
                ..RetryPolicy::default()
            },
        )
    }

    /// Connects to one or more servers (tried in order, rotating on
    /// failure) with a per-attempt receive timeout and a retry policy.
    pub fn connect_with(
        servers: impl ToSocketAddrs,
        attempt_timeout: Duration,
        policy: RetryPolicy,
    ) -> io::Result<ServeClient> {
        let servers: Vec<SocketAddr> = servers.to_socket_addrs()?.collect();
        if servers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no server address",
            ));
        }
        if policy.attempts == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "retry policy needs at least one attempt",
            ));
        }
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(attempt_timeout))?;
        let jitter = policy.jitter_seed;
        Ok(ServeClient {
            socket,
            servers,
            current: 0,
            policy,
            attempt_timeout,
            jitter,
            next_token: 1,
            buf: Box::new([0u8; 65_536]),
        })
    }

    fn token(&mut self) -> u32 {
        let t = self.next_token;
        self.next_token = self.next_token.wrapping_add(1).max(1);
        t
    }

    /// One splitmix64 draw in `[0, span)` (0 for an empty span).
    fn jitter_draw(&mut self, span: u64) -> u64 {
        self.jitter = self.jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if span == 0 {
            0
        } else {
            z % span
        }
    }

    /// The jittered pause before retry number `retry` (1-based):
    /// 50–100 % of the clamped exponential value.
    fn retry_backoff(&mut self, retry: u32) -> Duration {
        let full = backoff_us(
            self.policy.base_backoff.as_micros() as u64,
            retry,
            self.policy.max_backoff.as_micros() as u64,
        );
        Duration::from_micros(full / 2 + self.jitter_draw(full / 2 + 1))
    }

    /// Sends a request and waits for the response carrying its token,
    /// discarding unrelated frames (e.g. late answers to a timed-out
    /// earlier query, or subscription pushes). A failed attempt fails
    /// over to the next server address and retries with jittered
    /// exponential backoff, all inside the policy's deadline budget.
    fn roundtrip(&mut self, req: Request) -> io::Result<Response> {
        let token = req.token();
        let started = Instant::now();
        let mut last_err: Option<io::Error> = None;
        for attempt in 1..=self.policy.attempts {
            if attempt > 1 {
                // Failover: the address that just failed goes to the back
                // of the rotation for this and subsequent queries.
                self.current = (self.current + 1) % self.servers.len();
                let pause = self.retry_backoff(attempt - 1);
                let remaining = self.policy.deadline.saturating_sub(started.elapsed());
                if remaining.is_zero() {
                    break;
                }
                std::thread::sleep(pause.min(remaining));
            }
            let remaining = self.policy.deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            match self.attempt_once(&req, token, remaining) {
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "query deadline budget exhausted")
        }))
    }

    /// One send/receive attempt against the current server, its receive
    /// wait truncated to the remaining deadline budget.
    fn attempt_once(
        &mut self,
        req: &Request,
        token: u32,
        remaining: Duration,
    ) -> io::Result<Response> {
        let server = self.servers[self.current];
        let wait = self
            .attempt_timeout
            .min(remaining)
            .max(Duration::from_millis(1));
        self.socket.set_read_timeout(Some(wait))?;
        self.socket.send_to(&req.encode(), server)?;
        let deadline = Instant::now() + wait;
        loop {
            let (len, _) = self.socket.recv_from(&mut self.buf[..])?;
            match Response::decode(&self.buf[..len]) {
                Ok(resp) if resp.token() == token => return Ok(resp),
                _ => {
                    // Unrelated frame: keep draining, but do not let a
                    // chatty socket extend the attempt past its window.
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "attempt window exhausted",
                        ));
                    }
                    continue;
                }
            }
        }
    }

    /// Point query: the latest published suspicion bit of
    /// `(source, combo)`.
    pub fn point(&mut self, source: u32, combo: u16) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::Point {
            token,
            source,
            combo,
        })
    }

    /// Bulk query: up to `max_words` bitmap words of `combo` from the
    /// word containing `first_source`. The server clamps `max_words` to
    /// [`crate::wire::MAX_RANGE_WORDS`] so the reply fits one UDP
    /// datagram; page a larger snapshot by advancing `first_source` past
    /// the words received.
    pub fn range(&mut self, combo: u16, first_source: u32, max_words: u16) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::Range {
            token,
            combo,
            first_source,
            max_words,
        })
    }

    /// One-shot delta query on a segment.
    pub fn delta_since(&mut self, segment: u16, since_epoch: u64) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::DeltaSince {
            token,
            segment,
            since_epoch,
        })
    }

    /// Registers a standing delta subscription on `segment`; pushes
    /// arrive via [`recv_push`](Self::recv_push). Fire-and-forget (UDP).
    /// Returns the subscription token the server will echo in pushes.
    pub fn subscribe(&mut self, segment: u16, since_epoch: u64) -> io::Result<u32> {
        let token = self.token();
        self.subscribe_as(token, segment, since_epoch)?;
        Ok(token)
    }

    /// Like [`subscribe`](Self::subscribe) with a caller-chosen token.
    /// The server keys subscriptions by `(peer, segment, token)`, so a
    /// re-send with the same token *replaces* the entry (idempotent
    /// registration) and one socket can hold many logical subscribers.
    pub fn subscribe_as(&mut self, token: u32, segment: u16, since_epoch: u64) -> io::Result<()> {
        self.socket.send_to(
            &Request::Subscribe {
                token,
                segment,
                since_epoch,
            }
            .encode(),
            self.servers[self.current],
        )?;
        Ok(())
    }

    /// Queries the shape of the served view (sources, combos, segments).
    pub fn info(&mut self) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::Info { token })
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&mut self, segment: u16) -> io::Result<()> {
        let token = self.token();
        self.socket.send_to(
            &Request::Unsubscribe { token, segment }.encode(),
            self.servers[self.current],
        )?;
        Ok(())
    }

    /// Waits for the next subscription push (a `DeltaResp` or `Resync`
    /// frame), or times out with the per-attempt receive timeout.
    pub fn recv_push(&mut self) -> io::Result<Response> {
        // `roundtrip` may have shortened the socket timeout to fit a
        // deadline budget; pushes wait the full configured window.
        self.socket.set_read_timeout(Some(self.attempt_timeout))?;
        loop {
            let (len, _) = self.socket.recv_from(&mut self.buf[..])?;
            match Response::decode(&self.buf[..len]) {
                Ok(resp @ (Response::DeltaResp { .. } | Response::Resync { .. })) => {
                    return Ok(resp)
                }
                _ => continue,
            }
        }
    }
}

/// Adapts a [`SuspectView`] to the sharded engine's
/// [`ShardPublisher`] hook: shard `i` publishes into segment `i`.
///
/// The hook takes `&self` from concurrent shard threads, so each
/// segment's writer sits behind its own mutex — uncontended in practice,
/// because exactly one shard thread ever touches each segment.
pub struct EnginePublisher {
    view: std::sync::Arc<SuspectView>,
    writers: Vec<Mutex<SegmentWriter>>,
}

impl std::fmt::Debug for EnginePublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePublisher")
            .field("segments", &self.writers.len())
            .finish()
    }
}

impl EnginePublisher {
    /// Claims every segment writer of `view`. The view's partition must
    /// match the engine's (same source count, same shard count — build
    /// both from [`fd_runtime::sharded::partition`]).
    pub fn new(view: &std::sync::Arc<SuspectView>) -> EnginePublisher {
        EnginePublisher {
            view: std::sync::Arc::clone(view),
            writers: (0..view.segments())
                .map(|seg| Mutex::new(view.writer(seg)))
                .collect(),
        }
    }
}

impl ShardPublisher for EnginePublisher {
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime) {
        debug_assert_eq!(
            self.view.segment_block(shard).0,
            start,
            "engine partition diverged from the view's"
        );
        let mut writer = self.writers[shard].lock().expect("segment writer poisoned");
        // Incremental: only the bank's dirty words are copied and
        // diffed. The engine clears the bitmap after this hook returns,
        // so the dirty set always covers everything since the previous
        // publication (and a restarted shard's bank starts all-dirty).
        writer.publish_dirty(bank, now);
    }

    fn mark_degraded(&self, shard: usize, start: usize, _len: usize) {
        debug_assert_eq!(
            self.view.segment_block(shard).0,
            start,
            "engine partition diverged from the view's"
        );
        self.view.mark_degraded(shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, ServeServer};
    use std::sync::Arc;

    #[test]
    fn client_queries_a_live_server_over_loopback() {
        let view = SuspectView::new(2, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[0b100, 0], SimTime::from_secs(3));
        let server = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let mut client =
            ServeClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connect");

        match client.point(2, 0).expect("point") {
            Response::PointResp { epoch, flags, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(
                    flags & crate::wire::FLAG_SUSPECTING,
                    crate::wire::FLAG_SUSPECTING
                );
            }
            other => panic!("expected point response, got {other:?}"),
        }
        match client.range(0, 0, 4).expect("range") {
            Response::RangeResp { words, .. } => assert_eq!(words, vec![0b100]),
            other => panic!("expected range response, got {other:?}"),
        }
    }

    #[test]
    fn retry_fails_over_from_a_dead_server_within_the_deadline_budget() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[0b10], SimTime::from_secs(1));
        // A "degraded" server: bound but never answering. The client's
        // first attempt lands here and must burn only one attempt window.
        let dead = UdpSocket::bind("127.0.0.1:0").expect("bind dead server");
        let dead_addr = dead.local_addr().unwrap();
        let live = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let budget = Duration::from_secs(10);
        let mut client = ServeClient::connect_with(
            &[dead_addr, live.local_addr()][..],
            Duration::from_millis(150),
            RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(40),
                deadline: budget,
                ..RetryPolicy::default()
            },
        )
        .expect("connect");
        let started = std::time::Instant::now();
        match client.point(1, 0).expect("failover answers") {
            Response::PointResp { epoch, flags, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(
                    flags & crate::wire::FLAG_SUSPECTING,
                    crate::wire::FLAG_SUSPECTING
                );
            }
            other => panic!("expected point response, got {other:?}"),
        }
        assert!(
            started.elapsed() < budget,
            "query blew its deadline budget: {:?}",
            started.elapsed()
        );
        // The failed address rotated to the back: the next query goes
        // straight to the live server, no retry needed.
        let started = std::time::Instant::now();
        client.point(1, 0).expect("second query served directly");
        assert!(started.elapsed() < Duration::from_millis(150));
    }

    #[test]
    fn deadline_budget_bounds_a_query_against_only_dead_servers() {
        let dead_a = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let dead_b = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let mut client = ServeClient::connect_with(
            &[dead_a.local_addr().unwrap(), dead_b.local_addr().unwrap()][..],
            Duration::from_millis(80),
            RetryPolicy {
                attempts: 32,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(50),
                deadline: Duration::from_millis(250),
                ..RetryPolicy::default()
            },
        )
        .expect("connect");
        let started = std::time::Instant::now();
        assert!(client.point(0, 0).is_err(), "no server could answer");
        // The budget, not attempts × timeout (32 × 80 ms ≈ 2.6 s), bounds
        // the caller's wait; allow generous slack for a loaded machine.
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "deadline budget not enforced: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn subscription_pushes_deltas_and_resyncs_laggards() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[1], SimTime::from_secs(1));
        let server = ServeServer::start(
            Arc::clone(&view),
            ServeConfig {
                max_sub_lag: 4,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let mut client =
            ServeClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connect");
        client.subscribe(0, 0).expect("subscribe");

        // The pusher delivers the catch-up delta for epoch 1.
        match client.recv_push().expect("push") {
            Response::DeltaResp {
                to_epoch, changes, ..
            } => {
                assert_eq!(to_epoch, 1);
                assert_eq!(changes, vec![(0, 1)]);
            }
            other => panic!("expected delta push, got {other:?}"),
        }

        // New epochs keep flowing.
        w.publish_words(&[3], SimTime::from_secs(2));
        match client.recv_push().expect("push") {
            Response::DeltaResp {
                from_epoch,
                to_epoch,
                changes,
                ..
            } => {
                assert_eq!((from_epoch, to_epoch), (1, 2));
                assert_eq!(changes, vec![(0, 3)]);
            }
            other => panic!("expected delta push, got {other:?}"),
        }
        client.unsubscribe(0).expect("unsubscribe");
    }
}
