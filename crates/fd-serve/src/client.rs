//! Client side of the serving plane: a blocking UDP query client and the
//! bridge that feeds a [`ShardedEngine`](fd_runtime::ShardedEngine)'s
//! publish hook into a [`SuspectView`].

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::Mutex;
use std::time::Duration;

use fd_core::SourceBank;
use fd_runtime::ShardPublisher;
use fd_sim::SimTime;

use crate::view::{SegmentWriter, SuspectView};
use crate::wire::{Request, Response};

/// A blocking UDP client for the serving plane. One socket, sequential
/// request/response; spin up one client per load-generator thread.
pub struct ServeClient {
    socket: UdpSocket,
    server: SocketAddr,
    next_token: u32,
    buf: Box<[u8; 65_536]>,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient")
            .field("server", &self.server)
            .finish()
    }
}

impl ServeClient {
    /// Connects (binds an ephemeral local port) to a server with the
    /// given receive timeout.
    pub fn connect(server: impl ToSocketAddrs, timeout: Duration) -> io::Result<ServeClient> {
        let server = server
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no server address"))?;
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(ServeClient {
            socket,
            server,
            next_token: 1,
            buf: Box::new([0u8; 65_536]),
        })
    }

    fn token(&mut self) -> u32 {
        let t = self.next_token;
        self.next_token = self.next_token.wrapping_add(1).max(1);
        t
    }

    /// Sends a request and waits for the response carrying its token,
    /// discarding unrelated frames (e.g. late answers to a timed-out
    /// earlier query, or subscription pushes).
    fn roundtrip(&mut self, req: Request) -> io::Result<Response> {
        let token = req.token();
        self.socket.send_to(&req.encode(), self.server)?;
        loop {
            let (len, _) = self.socket.recv_from(&mut self.buf[..])?;
            match Response::decode(&self.buf[..len]) {
                Ok(resp) if resp.token() == token => return Ok(resp),
                _ => continue,
            }
        }
    }

    /// Point query: the latest published suspicion bit of
    /// `(source, combo)`.
    pub fn point(&mut self, source: u32, combo: u16) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::Point {
            token,
            source,
            combo,
        })
    }

    /// Bulk query: up to `max_words` bitmap words of `combo` from the
    /// word containing `first_source`. The server clamps `max_words` to
    /// [`crate::wire::MAX_RANGE_WORDS`] so the reply fits one UDP
    /// datagram; page a larger snapshot by advancing `first_source` past
    /// the words received.
    pub fn range(&mut self, combo: u16, first_source: u32, max_words: u16) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::Range {
            token,
            combo,
            first_source,
            max_words,
        })
    }

    /// One-shot delta query on a segment.
    pub fn delta_since(&mut self, segment: u16, since_epoch: u64) -> io::Result<Response> {
        let token = self.token();
        self.roundtrip(Request::DeltaSince {
            token,
            segment,
            since_epoch,
        })
    }

    /// Registers a standing delta subscription on `segment`; pushes
    /// arrive via [`recv_push`](Self::recv_push). Fire-and-forget (UDP).
    pub fn subscribe(&mut self, segment: u16, since_epoch: u64) -> io::Result<()> {
        let token = self.token();
        self.socket.send_to(
            &Request::Subscribe {
                token,
                segment,
                since_epoch,
            }
            .encode(),
            self.server,
        )?;
        Ok(())
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&mut self, segment: u16) -> io::Result<()> {
        let token = self.token();
        self.socket.send_to(
            &Request::Unsubscribe { token, segment }.encode(),
            self.server,
        )?;
        Ok(())
    }

    /// Waits for the next subscription push (a `DeltaResp` or `Resync`
    /// frame), or times out with the socket's read timeout.
    pub fn recv_push(&mut self) -> io::Result<Response> {
        loop {
            let (len, _) = self.socket.recv_from(&mut self.buf[..])?;
            match Response::decode(&self.buf[..len]) {
                Ok(resp @ (Response::DeltaResp { .. } | Response::Resync { .. })) => {
                    return Ok(resp)
                }
                _ => continue,
            }
        }
    }
}

/// Adapts a [`SuspectView`] to the sharded engine's
/// [`ShardPublisher`] hook: shard `i` publishes into segment `i`.
///
/// The hook takes `&self` from concurrent shard threads, so each
/// segment's writer sits behind its own mutex — uncontended in practice,
/// because exactly one shard thread ever touches each segment.
pub struct EnginePublisher {
    view: std::sync::Arc<SuspectView>,
    writers: Vec<Mutex<SegmentWriter>>,
}

impl std::fmt::Debug for EnginePublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePublisher")
            .field("segments", &self.writers.len())
            .finish()
    }
}

impl EnginePublisher {
    /// Claims every segment writer of `view`. The view's partition must
    /// match the engine's (same source count, same shard count — build
    /// both from [`fd_runtime::sharded::partition`]).
    pub fn new(view: &std::sync::Arc<SuspectView>) -> EnginePublisher {
        EnginePublisher {
            view: std::sync::Arc::clone(view),
            writers: (0..view.segments())
                .map(|seg| Mutex::new(view.writer(seg)))
                .collect(),
        }
    }
}

impl ShardPublisher for EnginePublisher {
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime) {
        debug_assert_eq!(
            self.view.segment_block(shard).0,
            start,
            "engine partition diverged from the view's"
        );
        let mut writer = self.writers[shard].lock().expect("segment writer poisoned");
        writer.publish(bank, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, ServeServer};
    use std::sync::Arc;

    #[test]
    fn client_queries_a_live_server_over_loopback() {
        let view = SuspectView::new(2, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[0b100, 0], SimTime::from_secs(3));
        let server = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let mut client =
            ServeClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connect");

        match client.point(2, 0).expect("point") {
            Response::PointResp { epoch, flags, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(flags & crate::wire::FLAG_SUSPECTING, crate::wire::FLAG_SUSPECTING);
            }
            other => panic!("expected point response, got {other:?}"),
        }
        match client.range(0, 0, 4).expect("range") {
            Response::RangeResp { words, .. } => assert_eq!(words, vec![0b100]),
            other => panic!("expected range response, got {other:?}"),
        }
    }

    #[test]
    fn subscription_pushes_deltas_and_resyncs_laggards() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[1], SimTime::from_secs(1));
        let server = ServeServer::start(
            Arc::clone(&view),
            ServeConfig {
                max_sub_lag: 4,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let mut client =
            ServeClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connect");
        client.subscribe(0, 0).expect("subscribe");

        // The pusher delivers the catch-up delta for epoch 1.
        match client.recv_push().expect("push") {
            Response::DeltaResp {
                to_epoch, changes, ..
            } => {
                assert_eq!(to_epoch, 1);
                assert_eq!(changes, vec![(0, 1)]);
            }
            other => panic!("expected delta push, got {other:?}"),
        }

        // New epochs keep flowing.
        w.publish_words(&[3], SimTime::from_secs(2));
        match client.recv_push().expect("push") {
            Response::DeltaResp {
                from_epoch,
                to_epoch,
                changes,
                ..
            } => {
                assert_eq!((from_epoch, to_epoch), (1, 2));
                assert_eq!(changes, vec![(0, 3)]);
            }
            other => panic!("expected delta push, got {other:?}"),
        }
        client.unsubscribe(0).expect("unsubscribe");
    }
}
