//! The serving-plane wire protocol: compact binary query/response frames
//! over UDP, built on the shared [`fd_net::framing`] header helpers.
//!
//! Every frame is `magic(4) version(1) tag(1) token(4) body`. The magic
//! distinguishes query traffic from heartbeat traffic (`"FDSV"` vs the
//! heartbeat plane's `"FDQS"`); the `token` is an opaque client value
//! echoed verbatim in the response, so a client firing pipelined queries
//! over one socket can match answers to requests (and clock per-query
//! latency) without sequencing assumptions.
//!
//! Malformed frames decode to a typed [`FrameError`] and are *counted and
//! dropped* by the server — the same policy `Heartbeat::decode` applies
//! to corrupted heartbeats: a hostile or buggy client must not be able to
//! crash or stall the serving plane.

use bytes::{Buf, BufMut};
use fd_net::framing::{self, FrameError};

/// Frame magic: `"FDSV"`.
pub const MAGIC: u32 = 0x4644_5356;
/// Protocol version.
pub const VERSION: u8 = 1;

/// Bytes of the fixed prefix shared by every frame: framing header plus
/// tag and token.
pub const PREFIX_SIZE: usize = framing::HEADER_SIZE + 1 + 4;

const TAG_POINT: u8 = 1;
const TAG_RANGE: u8 = 2;
const TAG_DELTA_SINCE: u8 = 3;
const TAG_SUBSCRIBE: u8 = 4;
const TAG_UNSUBSCRIBE: u8 = 5;
const TAG_INFO: u8 = 6;

const TAG_POINT_RESP: u8 = 128;
const TAG_RANGE_RESP: u8 = 129;
const TAG_DELTA_RESP: u8 = 130;
const TAG_RESYNC: u8 = 131;
const TAG_ERR: u8 = 132;
const TAG_INFO_RESP: u8 = 133;

/// [`PointResp`](Response::PointResp) flag: the queried bit is set.
pub const FLAG_SUSPECTING: u8 = 0b01;
/// [`PointResp`](Response::PointResp) flag: the owning segment has
/// published at least once (clear ⇒ `suspecting` is a placeholder).
pub const FLAG_PUBLISHED: u8 = 0b10;
/// [`PointResp`](Response::PointResp) / [`RangeResp`](Response::RangeResp)
/// flag: the owning segment is **degraded** — its publishing shard was
/// declared dead by the supervisor after exhausting its restart budget.
/// The answer is real but frozen at the segment's last published epoch;
/// `age_us` bounds its staleness. Readers get stale-with-bound answers
/// instead of silence.
pub const FLAG_SEGMENT_DEGRADED: u8 = 0b100;

/// [`Err`](Response::Err) code: source or combination out of range.
pub const ERR_OUT_OF_RANGE: u8 = 1;
/// [`Err`](Response::Err) code: unknown segment.
pub const ERR_BAD_SEGMENT: u8 = 2;
/// [`Err`](Response::Err) code: the server's subscription table is full.
pub const ERR_SUB_LIMIT: u8 = 3;

/// Server-side cap on [`Request::Range`] `max_words`. The wire field is
/// `u16`, but a 65 535-word reply would be ~524 KB — far past the
/// ~65 507-byte UDP payload limit, so `send_to` would fail with
/// `EMSGSIZE` and the client would see only a timeout. 8 000 words is
/// 64 000 bytes of bitmap plus the fixed `RangeResp` header, safely
/// inside one datagram; servers clamp larger requests to this bound and
/// clients page by advancing `first_source` past the words received.
pub const MAX_RANGE_WORDS: usize = 8_000;

/// A client → server query frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// "Do you suspect `source` under combination `combo` right now?"
    Point { token: u32, source: u32, combo: u16 },
    /// Bulk read: up to `max_words` bitmap words of `combo` starting at
    /// the word containing `first_source` (clipped to one segment).
    Range {
        token: u32,
        combo: u16,
        first_source: u32,
        max_words: u16,
    },
    /// One-shot delta: the word changes of `segment` since `since_epoch`.
    DeltaSince {
        token: u32,
        segment: u16,
        since_epoch: u64,
    },
    /// Standing delta subscription on `segment`, starting from
    /// `since_epoch`; pushes arrive as [`Response::DeltaResp`] frames.
    Subscribe {
        token: u32,
        segment: u16,
        since_epoch: u64,
    },
    /// Cancels the sender's subscriptions on `segment` (every token).
    Unsubscribe { token: u32, segment: u16 },
    /// "Describe the view you serve": source count, combination count
    /// and segment layout. A relay bootstraps its replica from this.
    Info { token: u32 },
}

/// A server → client answer or push frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Point`].
    PointResp {
        token: u32,
        /// Epoch of the answer (0 with [`FLAG_PUBLISHED`] clear).
        epoch: u64,
        /// [`FLAG_SUSPECTING`] | [`FLAG_PUBLISHED`].
        flags: u8,
        /// Wall-clock age of the served snapshot, microseconds —
        /// accumulated across every relay hop the answer crossed.
        age_us: u64,
        /// Relay hops between the publishing engine and the answering
        /// server (0 = origin).
        hops: u8,
    },
    /// Answer to [`Request::Range`].
    RangeResp {
        token: u32,
        segment: u16,
        epoch: u64,
        combo: u16,
        /// [`FLAG_PUBLISHED`] | [`FLAG_SEGMENT_DEGRADED`].
        flags: u8,
        /// Wall-clock age of the served snapshot, microseconds — the
        /// staleness bound of a degraded answer, accumulated per hop.
        age_us: u64,
        /// Relay hops between publisher and answerer (0 = origin).
        hops: u8,
        /// Global id of the first source covered by `words[0]` bit 0.
        first_word_source: u32,
        words: Vec<u64>,
    },
    /// Answer to [`Request::DeltaSince`], and the push frame of a
    /// subscription. Applying `changes` in order to the `from_epoch`
    /// bitmap yields the `to_epoch` bitmap.
    DeltaResp {
        token: u32,
        segment: u16,
        from_epoch: u64,
        to_epoch: u64,
        /// Virtual publication instant of `to_epoch`, microseconds — a
        /// relay republishes its replica at this same virtual time, so
        /// virtual timestamps never drift across hops.
        virtual_us: u64,
        /// Wall-clock age of `to_epoch` at send time, microseconds,
        /// accumulated across hops: a relay adds its own replica age on
        /// top of this base when it re-serves.
        age_us: u64,
        /// Relay hops between publisher and sender (0 = origin).
        hops: u8,
        /// Segment-health flags ([`FLAG_SEGMENT_DEGRADED`]), so a relay
        /// replicating from the delta stream learns the origin marked the
        /// segment degraded — a dead shard publishes no further epochs, so
        /// health must ride the push channel itself. A flagged frame with
        /// `from_epoch == to_epoch` and no changes is a pure
        /// health-transition push.
        flags: u8,
        /// `(word_index, new_value)` pairs, word index combo-major.
        changes: Vec<(u32, u64)>,
    },
    /// The requested delta window is gone (client too far behind) — the
    /// client must re-snapshot with range queries. Also ends a
    /// subscription that exceeded the server's lag bound.
    Resync {
        token: u32,
        segment: u16,
        current_epoch: u64,
    },
    /// The request was well-formed but unanswerable.
    Err { token: u32, code: u8 },
    /// Answer to [`Request::Info`]: the shape of the served view.
    InfoResp {
        token: u32,
        /// Total sources the view covers.
        sources: u64,
        /// Combination count.
        combos: u16,
        /// Per-segment source counts, in segment order (segments are
        /// contiguous from source 0, so lengths determine the layout).
        /// A relay rebuilds its replica from these rather than assuming
        /// the engine partition — custom layouts replicate exactly.
        seg_lens: Vec<u32>,
    },
}

fn put_prefix(buf: &mut Vec<u8>, tag: u8, token: u32) {
    framing::put_header(buf, MAGIC, VERSION);
    buf.put_u8(tag);
    buf.put_u32(token);
}

impl Request {
    /// The echo token of the request.
    pub fn token(&self) -> u32 {
        match *self {
            Request::Point { token, .. }
            | Request::Range { token, .. }
            | Request::DeltaSince { token, .. }
            | Request::Subscribe { token, .. }
            | Request::Unsubscribe { token, .. }
            | Request::Info { token } => token,
        }
    }

    /// Encodes the request into a datagram.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PREFIX_SIZE + 16);
        match *self {
            Request::Point {
                token,
                source,
                combo,
            } => {
                put_prefix(&mut buf, TAG_POINT, token);
                buf.put_u32(source);
                buf.put_u16(combo);
            }
            Request::Range {
                token,
                combo,
                first_source,
                max_words,
            } => {
                put_prefix(&mut buf, TAG_RANGE, token);
                buf.put_u16(combo);
                buf.put_u32(first_source);
                buf.put_u16(max_words);
            }
            Request::DeltaSince {
                token,
                segment,
                since_epoch,
            } => {
                put_prefix(&mut buf, TAG_DELTA_SINCE, token);
                buf.put_u16(segment);
                buf.put_u64(since_epoch);
            }
            Request::Subscribe {
                token,
                segment,
                since_epoch,
            } => {
                put_prefix(&mut buf, TAG_SUBSCRIBE, token);
                buf.put_u16(segment);
                buf.put_u64(since_epoch);
            }
            Request::Unsubscribe { token, segment } => {
                put_prefix(&mut buf, TAG_UNSUBSCRIBE, token);
                buf.put_u16(segment);
            }
            Request::Info { token } => {
                put_prefix(&mut buf, TAG_INFO, token);
            }
        }
        buf
    }

    /// Decodes a datagram into a request, rejecting bad magic/version,
    /// unknown tags and truncated bodies with a typed [`FrameError`].
    pub fn decode(mut data: &[u8]) -> Result<Request, FrameError> {
        framing::need(data, PREFIX_SIZE)?;
        framing::take_header(&mut data, MAGIC, VERSION)?;
        let tag = data.get_u8();
        let token = data.get_u32();
        let body = |n: usize| framing::need(data, n);
        match tag {
            TAG_POINT => {
                body(6)?;
                Ok(Request::Point {
                    token,
                    source: data.get_u32(),
                    combo: data.get_u16(),
                })
            }
            TAG_RANGE => {
                body(8)?;
                Ok(Request::Range {
                    token,
                    combo: data.get_u16(),
                    first_source: data.get_u32(),
                    max_words: data.get_u16(),
                })
            }
            TAG_DELTA_SINCE => {
                body(10)?;
                Ok(Request::DeltaSince {
                    token,
                    segment: data.get_u16(),
                    since_epoch: data.get_u64(),
                })
            }
            TAG_SUBSCRIBE => {
                body(10)?;
                Ok(Request::Subscribe {
                    token,
                    segment: data.get_u16(),
                    since_epoch: data.get_u64(),
                })
            }
            TAG_UNSUBSCRIBE => {
                body(2)?;
                Ok(Request::Unsubscribe {
                    token,
                    segment: data.get_u16(),
                })
            }
            TAG_INFO => Ok(Request::Info { token }),
            found => Err(FrameError::BadTag { found }),
        }
    }
}

impl Response {
    /// The echoed request token.
    pub fn token(&self) -> u32 {
        match *self {
            Response::PointResp { token, .. }
            | Response::RangeResp { token, .. }
            | Response::DeltaResp { token, .. }
            | Response::Resync { token, .. }
            | Response::Err { token, .. }
            | Response::InfoResp { token, .. } => token,
        }
    }

    /// Encodes the response into a datagram.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PREFIX_SIZE + 32);
        match *self {
            Response::PointResp {
                token,
                epoch,
                flags,
                age_us,
                hops,
            } => {
                put_prefix(&mut buf, TAG_POINT_RESP, token);
                buf.put_u64(epoch);
                buf.put_u8(flags);
                buf.put_u64(age_us);
                buf.put_u8(hops);
            }
            Response::RangeResp {
                token,
                segment,
                epoch,
                combo,
                flags,
                age_us,
                hops,
                first_word_source,
                ref words,
            } => {
                put_prefix(&mut buf, TAG_RANGE_RESP, token);
                buf.put_u16(segment);
                buf.put_u64(epoch);
                buf.put_u16(combo);
                buf.put_u8(flags);
                buf.put_u64(age_us);
                buf.put_u8(hops);
                buf.put_u32(first_word_source);
                buf.put_u16(words.len() as u16);
                for &w in words {
                    buf.put_u64(w);
                }
            }
            Response::DeltaResp {
                token,
                segment,
                from_epoch,
                to_epoch,
                virtual_us,
                age_us,
                hops,
                flags,
                ref changes,
            } => {
                put_prefix(&mut buf, TAG_DELTA_RESP, token);
                buf.put_u16(segment);
                buf.put_u64(from_epoch);
                buf.put_u64(to_epoch);
                buf.put_u64(virtual_us);
                buf.put_u64(age_us);
                buf.put_u8(hops);
                buf.put_u8(flags);
                buf.put_u16(changes.len() as u16);
                for &(index, value) in changes {
                    buf.put_u32(index);
                    buf.put_u64(value);
                }
            }
            Response::Resync {
                token,
                segment,
                current_epoch,
            } => {
                put_prefix(&mut buf, TAG_RESYNC, token);
                buf.put_u16(segment);
                buf.put_u64(current_epoch);
            }
            Response::Err { token, code } => {
                put_prefix(&mut buf, TAG_ERR, token);
                buf.put_u8(code);
            }
            Response::InfoResp {
                token,
                sources,
                combos,
                ref seg_lens,
            } => {
                put_prefix(&mut buf, TAG_INFO_RESP, token);
                buf.put_u64(sources);
                buf.put_u16(combos);
                buf.put_u16(seg_lens.len() as u16);
                for &len in seg_lens {
                    buf.put_u32(len);
                }
            }
        }
        buf
    }

    /// Decodes a datagram into a response.
    pub fn decode(mut data: &[u8]) -> Result<Response, FrameError> {
        framing::need(data, PREFIX_SIZE)?;
        framing::take_header(&mut data, MAGIC, VERSION)?;
        let tag = data.get_u8();
        let token = data.get_u32();
        match tag {
            TAG_POINT_RESP => {
                framing::need(data, 18)?;
                Ok(Response::PointResp {
                    token,
                    epoch: data.get_u64(),
                    flags: data.get_u8(),
                    age_us: data.get_u64(),
                    hops: data.get_u8(),
                })
            }
            TAG_RANGE_RESP => {
                framing::need(data, 26)?;
                let segment = data.get_u16();
                let epoch = data.get_u64();
                let combo = data.get_u16();
                let flags = data.get_u8();
                let age_us = data.get_u64();
                let hops = data.get_u8();
                let first_word_source = data.get_u32();
                framing::need(data, 2)?;
                let n = data.get_u16() as usize;
                framing::need_counted(data, n, 8)?;
                let words = (0..n).map(|_| data.get_u64()).collect();
                Ok(Response::RangeResp {
                    token,
                    segment,
                    epoch,
                    combo,
                    flags,
                    age_us,
                    hops,
                    first_word_source,
                    words,
                })
            }
            TAG_DELTA_RESP => {
                framing::need(data, 36)?;
                let segment = data.get_u16();
                let from_epoch = data.get_u64();
                let to_epoch = data.get_u64();
                let virtual_us = data.get_u64();
                let age_us = data.get_u64();
                let hops = data.get_u8();
                let flags = data.get_u8();
                framing::need(data, 2)?;
                let n = data.get_u16() as usize;
                framing::need_counted(data, n, 12)?;
                let changes = (0..n).map(|_| (data.get_u32(), data.get_u64())).collect();
                Ok(Response::DeltaResp {
                    token,
                    segment,
                    from_epoch,
                    to_epoch,
                    virtual_us,
                    age_us,
                    hops,
                    flags,
                    changes,
                })
            }
            TAG_RESYNC => {
                framing::need(data, 10)?;
                Ok(Response::Resync {
                    token,
                    segment: data.get_u16(),
                    current_epoch: data.get_u64(),
                })
            }
            TAG_ERR => {
                framing::need(data, 1)?;
                Ok(Response::Err {
                    token,
                    code: data.get_u8(),
                })
            }
            TAG_INFO_RESP => {
                framing::need(data, 12)?;
                let sources = data.get_u64();
                let combos = data.get_u16();
                let segments = usize::from(data.get_u16());
                framing::need(data, segments * 4)?;
                let seg_lens = (0..segments).map(|_| data.get_u32()).collect();
                Ok(Response::InfoResp {
                    token,
                    sources,
                    combos,
                    seg_lens,
                })
            }
            found => Err(FrameError::BadTag { found }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Point {
                token: 7,
                source: 123_456,
                combo: 29,
            },
            Request::Range {
                token: 8,
                combo: 3,
                first_source: 64,
                max_words: 16,
            },
            Request::DeltaSince {
                token: 9,
                segment: 2,
                since_epoch: 41,
            },
            Request::Subscribe {
                token: 10,
                segment: 0,
                since_epoch: 0,
            },
            Request::Unsubscribe {
                token: 11,
                segment: 1,
            },
            Request::Info { token: 12 },
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes), Ok(req), "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::PointResp {
                token: 7,
                epoch: 12,
                flags: FLAG_SUSPECTING | FLAG_PUBLISHED,
                age_us: 1500,
                hops: 2,
            },
            Response::RangeResp {
                token: 8,
                segment: 1,
                epoch: 12,
                combo: 3,
                flags: FLAG_PUBLISHED | FLAG_SEGMENT_DEGRADED,
                age_us: 2750,
                hops: 1,
                first_word_source: 64,
                words: vec![0xAA, 0, u64::MAX],
            },
            Response::DeltaResp {
                token: 9,
                segment: 2,
                from_epoch: 10,
                to_epoch: 12,
                virtual_us: 777_000,
                age_us: 431,
                hops: 3,
                flags: FLAG_SEGMENT_DEGRADED,
                changes: vec![(5, 0xF0), (901, 1)],
            },
            Response::Resync {
                token: 10,
                segment: 2,
                current_epoch: 99,
            },
            Response::Err {
                token: 11,
                code: ERR_OUT_OF_RANGE,
            },
            Response::InfoResp {
                token: 12,
                sources: 1_000_000,
                combos: 29,
                seg_lens: (0..64).map(|s| 15_625 + s).collect(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn malformed_frames_are_typed_rejections() {
        // Too short for even the prefix.
        assert_eq!(
            Request::decode(&[1, 2, 3]),
            Err(FrameError::Truncated {
                len: 3,
                need: PREFIX_SIZE
            })
        );
        // Heartbeat-plane magic is not query-plane magic.
        let mut hb = Vec::new();
        framing::put_header(&mut hb, fd_net::wire::MAGIC, 1);
        hb.extend_from_slice(&[TAG_POINT, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            Request::decode(&hb),
            Err(FrameError::BadMagic {
                found: fd_net::wire::MAGIC
            })
        );
        // Unknown tag.
        let mut bad = Vec::new();
        put_prefix(&mut bad, 42, 0);
        bad.extend_from_slice(&[0; 8]);
        assert_eq!(Request::decode(&bad), Err(FrameError::BadTag { found: 42 }));
        // Truncated body: a Point request missing its combo.
        let mut short = Request::Point {
            token: 1,
            source: 2,
            combo: 3,
        }
        .encode();
        short.truncate(short.len() - 2);
        assert_eq!(
            Request::decode(&short),
            Err(FrameError::Truncated { len: 4, need: 6 })
        );
        // Version bump is rejected.
        let mut wrong_ver = Request::Unsubscribe {
            token: 0,
            segment: 0,
        }
        .encode();
        wrong_ver[4] = 2;
        assert_eq!(
            Request::decode(&wrong_ver),
            Err(FrameError::BadVersion { found: 2 })
        );
    }
}
