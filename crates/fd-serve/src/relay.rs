//! A relay node of the serve-plane fan-out tree: subscribes upstream
//! (to the origin server or to another relay), reconstructs a full
//! [`SuspectView`] replica from delta pushes, and re-serves
//! point/range/delta/subscribe downstream through an ordinary
//! [`ServeServer`]. k-ary trees of relays turn one publisher into
//! ≥100k-subscriber fan-out without the origin pusher walking a
//! 100k-entry table.
//!
//! # Staleness accounting contract
//!
//! Every answer a relay serves carries an **honest accumulated age**:
//! the upstream push stamps the epoch's `virtual_us` (the publishing
//! shard's virtual instant — identical at every depth, so virtual
//! timestamps never drift), its wall `age_us` at send time, and its
//! `hops`. The relay republishes the replica with `base_age_us` set to
//! that upstream age and `hops + 1`; a downstream read then reports
//! `base_age_us` plus the replica's own local age. The per-hop error is
//! only the network transit of the push frame itself (microseconds on a
//! LAN), which is unmeasurable without synchronized clocks and bounded
//! in practice by the upstream push interval.
//!
//! # Sync protocol
//!
//! Two upstream sockets, deliberately split:
//!
//! * the **push** socket holds one standing subscription per segment
//!   (token = segment index, so a re-subscribe *replaces* rather than
//!   stacks) and only ever receives;
//! * the **control** socket does request/response catch-up (info,
//!   one-shot deltas, range paging) so a catch-up roundtrip can never
//!   eat a concurrent push off the push socket's queue.
//!
//! A push whose `from_epoch` does not match the replica (a lost or
//! reordered UDP frame) triggers a control-plane catch-up: first a
//! one-shot delta from the epoch the replica holds, and only if that
//! window already left the upstream delta ring a paged full-range
//! snapshot — the replica is **never** silently wrong, it either
//! applies a delta chain rooted at its own epoch or rebuilds from a
//! consistent snapshot.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fd_sim::SimTime;

use crate::client::{RetryPolicy, ServeClient};
use crate::server::{ServeConfig, ServeServer};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::view::{SegmentWriter, SuspectView};
use crate::wire::{Response, FLAG_SEGMENT_DEGRADED, MAX_RANGE_WORDS};

/// Relay tuning knobs.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Downstream server configuration (bind address, workers, pusher).
    pub serve: ServeConfig,
    /// Push-socket receive window. On expiry the relay re-subscribes
    /// every segment (idempotent by token), healing lost subscribe
    /// datagrams and upstream pusher drops.
    pub push_timeout: Duration,
    /// Control-socket per-attempt roundtrip timeout.
    pub ctl_timeout: Duration,
    /// Bounded attempts per catch-up (delta chain or snapshot + delta
    /// reconcile) before the relay gives up until the next push.
    pub resync_attempts: u32,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            serve: ServeConfig::default(),
            push_timeout: Duration::from_millis(100),
            ctl_timeout: Duration::from_secs(2),
            resync_attempts: 8,
        }
    }
}

/// Relay sync counters, all monotone.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Delta pushes applied in-order to the replica.
    pub deltas_applied: AtomicU64,
    /// Pushes whose `from_epoch` missed the replica's epoch (lost or
    /// reordered frames) — each one triggers a control-plane catch-up.
    pub stale_pushes: AtomicU64,
    /// Control-plane catch-ups started (stale push, upstream `Resync`,
    /// or push-window timeout with lag).
    pub catch_ups: AtomicU64,
    /// Full range-paged snapshots (the delta window had left the
    /// upstream ring).
    pub snapshots: AtomicU64,
    /// Push-socket receive windows that expired without a frame.
    pub push_timeouts: AtomicU64,
    /// Upstream frames that marked a replica segment degraded (flag set
    /// on a delta/snapshot while the replica was healthy).
    pub degraded_marked: AtomicU64,
}

/// One segment's replica state inside the sync thread.
struct SegReplica {
    writer: SegmentWriter,
    /// Shadow bitmap, combo-major, exactly the segment's buffer layout.
    shadow: Vec<u64>,
    /// Epoch the shadow holds (0 = nothing applied yet).
    applied: u64,
}

/// A running relay: downstream [`ServeServer`] plus the upstream sync
/// thread. Dropping it stops and joins everything.
pub struct Relay {
    server: ServeServer,
    view: Arc<SuspectView>,
    stats: Arc<RelayStats>,
    stop: Arc<AtomicBool>,
    sync_handle: Option<JoinHandle<()>>,
}

impl Relay {
    /// Connects to `upstream`, bootstraps the replica layout from an
    /// `Info` query, starts the downstream server and the sync thread.
    pub fn start(upstream: impl ToSocketAddrs, cfg: RelayConfig) -> io::Result<Relay> {
        let upstreams: Vec<SocketAddr> = upstream.to_socket_addrs()?.collect();
        if upstreams.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no upstream address",
            ));
        }
        let mut ctl =
            ServeClient::connect_with(&upstreams[..], cfg.ctl_timeout, RetryPolicy::default())?;
        let (sources, combos, seg_lens) = match ctl.info()? {
            Response::InfoResp {
                sources,
                combos,
                seg_lens,
                ..
            } => (sources as usize, usize::from(combos), seg_lens),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected info reply: {other:?}"),
                ))
            }
        };
        // Rebuild the upstream's exact segment layout so word indices in
        // delta frames line up — assuming the engine partition here would
        // silently corrupt replicas of custom layouts.
        let mut blocks: Vec<(usize, usize)> = Vec::with_capacity(seg_lens.len());
        let mut start = 0usize;
        for len in seg_lens {
            blocks.push((start, len as usize));
            start += len as usize;
        }
        if start != sources || blocks.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "upstream segment layout does not cover its sources",
            ));
        }
        let view = SuspectView::new(combos, &blocks);
        let replicas: Vec<SegReplica> = (0..view.segments())
            .map(|seg| {
                let (_, len) = view.segment_block(seg);
                SegReplica {
                    writer: view.writer(seg),
                    shadow: vec![0u64; combos * len.div_ceil(64)],
                    applied: 0,
                }
            })
            .collect();
        let server = ServeServer::start(Arc::clone(&view), cfg.serve.clone())?;
        let push = ServeClient::connect(&upstreams[..], cfg.push_timeout)?;

        let stats = Arc::new(RelayStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let sync_handle = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let view = Arc::clone(&view);
            let attempts = cfg.resync_attempts.max(1);
            std::thread::Builder::new()
                .name("fd-serve-relay-sync".to_string())
                .spawn(move || sync_loop(ctl, push, &view, replicas, &stop, &stats, attempts))
                .expect("spawn relay sync thread")
        };
        Ok(Relay {
            server,
            view,
            stats,
            stop,
            sync_handle: Some(sync_handle),
        })
    }

    /// The downstream serving address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The replica view (for direct in-process reads in tests/benches).
    pub fn view(&self) -> &Arc<SuspectView> {
        &self.view
    }

    /// The downstream server (its stats and subscription table).
    pub fn server(&self) -> &ServeServer {
        &self.server
    }

    /// The sync counters.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Stops and joins the sync thread and the downstream server.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.sync_handle.take() {
            let _ = h.join();
        }
        self.server.shutdown();
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Applies `changes` to the shadow and republishes the replica
/// incrementally with accumulated age and hop count.
fn apply_changes(
    rep: &mut SegReplica,
    changes: &[(u32, u64)],
    to_epoch: u64,
    virtual_us: u64,
    age_us: u64,
    hops: u8,
) {
    let mut touched: Vec<u32> = Vec::with_capacity(changes.len());
    for &(index, value) in changes {
        if let Some(w) = rep.shadow.get_mut(index as usize) {
            *w = value;
            touched.push(index);
        }
    }
    rep.applied = to_epoch;
    rep.writer.publish_replica_changes(
        &rep.shadow,
        &touched,
        SimTime::from_micros(virtual_us),
        age_us,
        hops.saturating_add(1),
    );
}

/// Folds an upstream frame's health flags into the replica view: a set
/// `FLAG_SEGMENT_DEGRADED` marks the segment (publication already cleared
/// any stale mark while applying, so a clear needs no action here).
fn mark_health(view: &SuspectView, seg: usize, flags: u8, stats: &RelayStats) {
    if flags & FLAG_SEGMENT_DEGRADED != 0 && !view.segment_degraded(seg) {
        view.mark_degraded(seg);
        bump(&stats.degraded_marked);
    }
}

/// Control-plane catch-up for one segment: a one-shot delta rooted at
/// the replica's epoch, falling back to a paged full-range snapshot
/// (plus a reconciling delta for the stamp) when the window left the
/// upstream ring. Returns `true` once the replica is current.
#[allow(clippy::too_many_arguments)]
fn catch_up(
    ctl: &mut ServeClient,
    rep: &mut SegReplica,
    seg: usize,
    block: (usize, usize),
    combos: usize,
    attempts: u32,
    stats: &RelayStats,
    view: &SuspectView,
) -> bool {
    bump(&stats.catch_ups);
    for _ in 0..attempts {
        match ctl.delta_since(seg as u16, rep.applied) {
            Ok(Response::DeltaResp {
                from_epoch,
                to_epoch,
                virtual_us,
                age_us,
                hops,
                flags,
                changes,
                ..
            }) if from_epoch == rep.applied => {
                // Rooted at what we hold: applying lands us on to_epoch.
                // A snapshot immediately before this (`applied` freshly
                // rebuilt) publishes full; otherwise incrementally.
                let full = rep.applied == 0;
                apply_changes(rep, &changes, to_epoch, virtual_us, age_us, hops);
                if full {
                    rep.writer.publish_replica_full(
                        &rep.shadow,
                        SimTime::from_micros(virtual_us),
                        age_us,
                        hops.saturating_add(1),
                    );
                }
                mark_health(view, seg, flags, stats);
                return true;
            }
            Ok(Response::Resync { .. }) | Ok(Response::DeltaResp { .. }) => {
                // Window gone (or the upstream moved underneath the
                // roundtrip): rebuild from a consistent snapshot, then
                // loop to reconcile and stamp via the delta path.
                bump(&stats.snapshots);
                match snapshot(ctl, rep, block, combos) {
                    Ok(epoch) => {
                        rep.applied = epoch;
                        // Publish the snapshot now? Not yet — the next
                        // loop iteration fetches the (possibly empty)
                        // delta from `epoch`, which carries the stamp.
                        continue;
                    }
                    Err(_) => continue,
                }
            }
            // Upstream segment unpublished (or unreachable): nothing to
            // catch up to; the standing subscription covers the future.
            Ok(_) | Err(_) => return false,
        }
    }
    false
}

/// Pages the segment's full bitmap (every combo) through range queries
/// at one consistent epoch; fails if the epoch moves mid-snapshot.
fn snapshot(
    ctl: &mut ServeClient,
    rep: &mut SegReplica,
    (start, len): (usize, usize),
    combos: usize,
) -> io::Result<u64> {
    let words_per = len.div_ceil(64);
    let mut epoch_seen: Option<u64> = None;
    let inconsistent = || io::Error::new(io::ErrorKind::InvalidData, "snapshot epoch moved");
    for combo in 0..combos {
        let mut w = 0usize;
        while w < words_per {
            let first = (start + w * 64) as u32;
            let ask = (words_per - w).min(MAX_RANGE_WORDS) as u16;
            match ctl.range(combo as u16, first, ask)? {
                Response::RangeResp {
                    epoch,
                    first_word_source,
                    words,
                    ..
                } => {
                    if *epoch_seen.get_or_insert(epoch) != epoch {
                        return Err(inconsistent());
                    }
                    if first_word_source != first || words.is_empty() {
                        return Err(inconsistent());
                    }
                    let dst = combo * words_per + w;
                    let n = words.len().min(words_per - w);
                    rep.shadow[dst..dst + n].copy_from_slice(&words[..n]);
                    w += n;
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected range reply: {other:?}"),
                    ))
                }
            }
        }
    }
    epoch_seen.ok_or_else(inconsistent)
}

fn sync_loop(
    mut ctl: ServeClient,
    mut push: ServeClient,
    view: &SuspectView,
    mut replicas: Vec<SegReplica>,
    stop: &AtomicBool,
    stats: &RelayStats,
    attempts: u32,
) {
    let combos = view.combos();
    let blocks: Vec<(usize, usize)> = (0..view.segments())
        .map(|s| view.segment_block(s))
        .collect();
    let subscribe_all = |push: &mut ServeClient, replicas: &[SegReplica]| {
        for (s, rep) in replicas.iter().enumerate() {
            // Token = segment index: a re-send replaces the entry, so
            // the keepalive below can never stack duplicates.
            let _ = push.subscribe_as(s as u32, s as u16, rep.applied);
        }
    };
    subscribe_all(&mut push, &replicas);
    while !stop.load(Ordering::Acquire) {
        match push.recv_push() {
            Ok(Response::DeltaResp {
                segment,
                from_epoch,
                to_epoch,
                virtual_us,
                age_us,
                hops,
                flags,
                changes,
                ..
            }) => {
                let s = usize::from(segment);
                let Some(rep) = replicas.get_mut(s) else {
                    continue;
                };
                if from_epoch == rep.applied && to_epoch == from_epoch {
                    // Pure health-transition push: the origin has no new
                    // epoch (a dead shard publishes nothing), only a
                    // flag. Mark without republishing — a publish would
                    // clear the very mark we are applying.
                    mark_health(view, s, flags, stats);
                } else if from_epoch == rep.applied {
                    apply_changes(rep, &changes, to_epoch, virtual_us, age_us, hops);
                    bump(&stats.deltas_applied);
                    mark_health(view, s, flags, stats);
                } else if to_epoch > rep.applied {
                    // A push got lost or reordered; the chain is broken,
                    // so rebuild through the control plane and re-root
                    // the subscription at what we now hold.
                    bump(&stats.stale_pushes);
                    catch_up(&mut ctl, rep, s, blocks[s], combos, attempts, stats, view);
                    let _ = push.subscribe_as(s as u32, segment, rep.applied);
                    mark_health(view, s, flags, stats);
                }
                // to_epoch <= applied: duplicate/stale frame, ignore.
            }
            Ok(Response::Resync { segment, .. }) => {
                // The upstream pusher dropped us as a laggard. Catch up
                // and re-subscribe (the drop removed the table entry).
                let s = usize::from(segment);
                if let Some(rep) = replicas.get_mut(s) {
                    catch_up(&mut ctl, rep, s, blocks[s], combos, attempts, stats, view);
                    let _ = push.subscribe_as(s as u32, segment, rep.applied);
                }
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Quiet window: refresh every subscription (idempotent)
                // so a lost subscribe frame or an upstream restart heals
                // within one push window.
                bump(&stats.push_timeouts);
                subscribe_all(&mut push, &replicas);
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Origin view (2 segments) → relay → client queries answer
    /// bit-for-bit with hop accounting.
    #[test]
    fn relay_replicates_and_serves_with_hop_accounting() {
        let view = SuspectView::new(2, &[(0, 64), (64, 66)]);
        let mut w0 = view.writer(0);
        let mut w1 = view.writer(1);
        w0.publish_words(&[0b101, 0], SimTime::from_secs(1));
        w1.publish_words(&[0b11, 0, 0, 1], SimTime::from_secs(1));
        let origin = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let mut relay = Relay::start(
            origin.local_addr(),
            RelayConfig {
                push_timeout: Duration::from_millis(20),
                ..RelayConfig::default()
            },
        )
        .expect("relay");

        // Wait for the replica to converge on both segments.
        let deadline = Instant::now() + Duration::from_secs(10);
        while relay.view().epoch(0) < 1 || relay.view().epoch(1) < 1 {
            assert!(Instant::now() < deadline, "relay never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }

        let mut client =
            ServeClient::connect(relay.local_addr(), Duration::from_secs(5)).expect("connect");
        // Bit-for-bit parity with the origin, one extra hop.
        for (source, combo, expect) in [(0u32, 0u16, true), (1, 0, false), (2, 0, true)] {
            match client.point(source, combo).expect("point") {
                Response::PointResp { flags, hops, .. } => {
                    assert_eq!(
                        flags & crate::wire::FLAG_SUSPECTING != 0,
                        expect,
                        "source {source} combo {combo}"
                    );
                    assert_eq!(hops, 1, "relay answers are one hop deep");
                }
                other => panic!("expected point response, got {other:?}"),
            }
        }
        match client.range(0, 64, 4).expect("range") {
            Response::RangeResp { words, hops, .. } => {
                assert_eq!(words, vec![0b11, 0]);
                assert_eq!(hops, 1);
            }
            other => panic!("expected range response, got {other:?}"),
        }

        // New epochs flow through: publish a change at the origin and
        // watch the relay converge to the same bits.
        w0.publish_words(&[0b111, 1], SimTime::from_secs(2));
        let deadline = Instant::now() + Duration::from_secs(10);
        while relay.view().epoch(0) < 2 {
            assert!(Instant::now() < deadline, "delta push never applied");
            std::thread::sleep(Duration::from_millis(2));
        }
        match client.point(1, 0).expect("point") {
            Response::PointResp { flags, epoch, .. } => {
                assert_ne!(flags & crate::wire::FLAG_SUSPECTING, 0);
                assert_eq!(epoch, 2);
            }
            other => panic!("expected point response, got {other:?}"),
        }
        relay.shutdown();
    }

    /// A degraded origin segment is not re-served healthy by a relay:
    /// the health transition rides the push channel even though the dead
    /// segment publishes no new epoch, and the mark clears once the
    /// origin heals by republishing.
    #[test]
    fn relay_propagates_degradation_and_heal() {
        let view = SuspectView::new(1, &[(0, 64), (64, 64)]);
        let mut w0 = view.writer(0);
        let mut w1 = view.writer(1);
        w0.publish_words(&[0b1], SimTime::from_secs(1));
        w1.publish_words(&[0b10], SimTime::from_secs(1));
        let origin = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let mut relay = Relay::start(
            origin.local_addr(),
            RelayConfig {
                push_timeout: Duration::from_millis(20),
                ..RelayConfig::default()
            },
        )
        .expect("relay");
        let deadline = Instant::now() + Duration::from_secs(10);
        while relay.view().epoch(0) < 1 || relay.view().epoch(1) < 1 {
            assert!(Instant::now() < deadline, "relay never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }

        // The origin's segment 1 goes degraded with no further epochs —
        // exactly what a dead shard looks like to the serve plane.
        view.mark_degraded(1);
        let deadline = Instant::now() + Duration::from_secs(10);
        while !relay.view().segment_degraded(1) {
            assert!(
                Instant::now() < deadline,
                "degradation never reached the relay"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            !relay.view().segment_degraded(0),
            "healthy segment must stay unflagged"
        );
        assert!(relay.stats().degraded_marked.load(Ordering::Relaxed) >= 1);
        let mut client =
            ServeClient::connect(relay.local_addr(), Duration::from_secs(5)).expect("connect");
        match client.point(64, 0).expect("point") {
            Response::PointResp { flags, .. } => {
                assert_ne!(
                    flags & crate::wire::FLAG_SEGMENT_DEGRADED,
                    0,
                    "relayed answer for the degraded block must carry the flag"
                );
            }
            other => panic!("expected point response, got {other:?}"),
        }

        // Heal: the origin republishes the segment, which clears its own
        // mark; the epoch push (flags clear) clears the replica's too.
        w1.publish_words(&[0b10], SimTime::from_secs(2));
        let deadline = Instant::now() + Duration::from_secs(10);
        while relay.view().segment_degraded(1) {
            assert!(Instant::now() < deadline, "heal never reached the relay");
            std::thread::sleep(Duration::from_millis(2));
        }
        match client.point(64, 0).expect("point") {
            Response::PointResp { flags, .. } => {
                assert_eq!(flags & crate::wire::FLAG_SEGMENT_DEGRADED, 0);
            }
            other => panic!("expected point response, got {other:?}"),
        }
        relay.shutdown();
    }

    /// A two-level chain accumulates hops and never loses bits.
    #[test]
    fn two_level_relay_chain_accumulates_hops() {
        let view = SuspectView::new(1, &[(0, 100)]);
        let mut w = view.writer(0);
        w.publish_words(&[0xF0F0, 1], SimTime::from_secs(1));
        let origin = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let mut r1 = Relay::start(
            origin.local_addr(),
            RelayConfig {
                push_timeout: Duration::from_millis(20),
                ..RelayConfig::default()
            },
        )
        .expect("relay 1");
        let mut r2 = Relay::start(
            r1.local_addr(),
            RelayConfig {
                push_timeout: Duration::from_millis(20),
                ..RelayConfig::default()
            },
        )
        .expect("relay 2");
        let deadline = Instant::now() + Duration::from_secs(10);
        while r2.view().epoch(0) < 1 {
            assert!(Instant::now() < deadline, "2-hop replica never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut client =
            ServeClient::connect(r2.local_addr(), Duration::from_secs(5)).expect("connect");
        match client.range(0, 0, 4).expect("range") {
            Response::RangeResp {
                words, hops, epoch, ..
            } => {
                assert_eq!(words, vec![0xF0F0, 1]);
                assert_eq!(hops, 2, "two relay hops");
                assert_eq!(epoch, 1);
            }
            other => panic!("expected range response, got {other:?}"),
        }
        r2.shutdown();
        r1.shutdown();
    }
}
