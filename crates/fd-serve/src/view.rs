//! The published suspicion state: an epoch-versioned, seqlock-style
//! double-buffered view of the N×M suspect bitmaps.
//!
//! # Why a seqlock
//!
//! The paper's accuracy metric `P_A` is defined over *queries*: a client
//! asks "do you suspect p right now?". At a million sources × 30
//! combinations the answer lives in ~4 MiB of bitmap; a lock around it
//! would serialise every query against every shard publication, and an
//! RCU-style fresh-allocation-per-epoch would churn megabytes per publish
//! interval. A seqlock gives the two properties the serving plane needs:
//!
//! * **writers never wait** — a shard publishes by bumping a sequence
//!   word, memcpy-ing its bitmap into the inactive buffer and bumping
//!   again; the observe hot path never blocks on readers;
//! * **readers are wait-free in the common case** — a query reads the
//!   sequence word, the bits, and the sequence word again; only a reader
//!   that raced *two* publications (its snapshot buffer got recycled
//!   mid-read) retries. Readers never write shared state, so any number
//!   of query threads scale without contention.
//!
//! Double-buffering is what keeps retries rare: the writer copies into
//! the buffer *not* currently published, so one publication during a read
//! leaves the read buffer intact — a reader only observes a torn epoch if
//! it is delayed across two full publish intervals.
//!
//! # Epoch and staleness semantics
//!
//! Every segment (one per engine shard) carries a monotonically
//! increasing **epoch**, starting at 1 for the first publication
//! (epoch 0 means "nothing published yet"). A validated read is
//! guaranteed to observe the bitmap of exactly one epoch — never a blend
//! of two — along with the virtual time the publishing shard had reached
//! and the wall-clock instant of publication. **Staleness** of an answer
//! is therefore well defined: the age of its epoch at serve time. The
//! view serves the *latest published* state, which trails the engine's
//! live state by at most one publish interval plus the read race window.
//!
//! All word storage is `AtomicU64` with relaxed element ordering;
//! publication ordering comes from a release fence ahead of each epoch's
//! word stores, the release store of the sequence word after them, and
//! the readers' acquire fence before re-validation — so torn *words* are
//! impossible and torn *epochs* are detected and retried. The leading
//! fence is load-bearing: without it the relaxed word stores of epoch
//! `e+2` could become visible before the epoch-`e+1` sequence store, and
//! a reader still validating against epoch `e` would serve a mixed-epoch
//! snapshot (see [`SegmentWriter::publish_words`]).

use std::sync::Arc;
use std::time::Instant;

use crate::sync::{fence, AtomicBool, AtomicU64, Mutex, Ordering};

use fd_core::SourceBank;
use fd_sim::SimTime;

/// How many epochs of per-word deltas each segment retains for
/// delta-since-epoch queries and subscriptions.
pub const DELTA_RING: usize = 64;

/// One word-level change of a publication: `words[index] = value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordDelta {
    /// Index into the segment's combo-major word array
    /// (`combo * words_per_combo + word`).
    pub index: u32,
    /// The new value of that word.
    pub value: u64,
}

/// The changes of one published epoch, kept in the segment's delta ring.
#[derive(Debug, Clone)]
struct DeltaEntry {
    epoch: u64,
    changes: Vec<WordDelta>,
}

/// Per-buffer publication metadata, read under the same seqlock
/// validation as the words.
struct BufMeta {
    /// Virtual time the publishing shard had reached, microseconds.
    virtual_us: AtomicU64,
    /// Wall-clock publication instant, nanoseconds since view creation.
    wall_nanos: AtomicU64,
    /// Staleness already accumulated upstream at publication time,
    /// microseconds. Zero at an origin view; a relay stamps the upstream
    /// answer's `age_us` here so served ages accumulate per hop.
    base_age_us: AtomicU64,
    /// Relay hops between the origin engine and this view (0 = origin).
    hops: AtomicU64,
}

/// One shard's slice of the view: a private seqlock over its own
/// double-buffered bitmap.
struct Segment {
    /// First global source id of the segment.
    start: usize,
    /// Sources in the segment.
    len: usize,
    /// Words per combination row (`ceil(len / 64)`).
    words: usize,
    /// The seqlock word: `2 × epoch` after a publication; never odd (the
    /// double buffer removes the odd "write in progress" state — a
    /// publication becomes visible atomically with the bump).
    seq: AtomicU64,
    /// The two bitmap buffers, `combos × words` words each. Epoch `e`
    /// lives in buffer `e & 1`.
    bufs: [Box<[AtomicU64]>; 2],
    meta: [BufMeta; 2],
    /// Guards the single-writer invariant: `writer()` hands out one
    /// [`SegmentWriter`] per segment.
    writer_taken: AtomicBool,
    /// Ring of the last [`DELTA_RING`] publications' changed words.
    /// Mutex-guarded — the delta path is the control plane, not the
    /// wait-free query path.
    deltas: Mutex<Vec<DeltaEntry>>,
    /// Degradation marker: 0 = healthy; otherwise `1 + epoch`, where
    /// `epoch` is the segment's last published epoch at the instant the
    /// shard supervisor declared the owning shard dead. Not part of the
    /// seqlock: it is an independent monotone health signal, so readers
    /// load it relaxed — the contract is "the bits you got are real but
    /// frozen at `epoch`, and `age_us` bounds how stale they are".
    degraded: AtomicU64,
}

/// A validated point read: one `(source, combo)` bit at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointRead {
    /// Epoch the answer is from (≥ 1).
    pub epoch: u64,
    /// The suspicion bit.
    pub suspecting: bool,
    /// The owning segment is degraded: its publishing shard was declared
    /// dead, so this answer cannot get fresher than `epoch` until the
    /// segment publishes again.
    pub degraded: bool,
    /// Virtual time the publishing shard had reached.
    pub published_at: SimTime,
    /// Age of the epoch at read time, microseconds of wall clock —
    /// including any staleness accumulated upstream when the answer is
    /// served through relays.
    pub age_us: u64,
    /// Relay hops between the origin engine and the serving view
    /// (0 = answered by the origin).
    pub hops: u8,
}

/// A validated bulk read: a run of bitmap words of one combination
/// within one segment, all from the same epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRead {
    /// Epoch the words are from (≥ 1).
    pub epoch: u64,
    /// Global id of the first source covered (64-aligned within the
    /// segment).
    pub first_source: u32,
    /// The bitmap words; bit `i` of word `j` is source
    /// `first_source + 64 j + i` (bits beyond the segment end are zero).
    pub words: Vec<u64>,
    /// The owning segment is degraded: its publishing shard was declared
    /// dead, so these words cannot get fresher than `epoch` until the
    /// segment publishes again.
    pub degraded: bool,
    /// Virtual time the publishing shard had reached.
    pub published_at: SimTime,
    /// Age of the epoch at read time, microseconds of wall clock —
    /// including any staleness accumulated upstream when the answer is
    /// served through relays.
    pub age_us: u64,
    /// Relay hops between the origin engine and the serving view
    /// (0 = answered by the origin).
    pub hops: u8,
}

/// A delta answer: the word changes between two epochs of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaRead {
    /// The requested window is retained: applying `changes` (in order) to
    /// the `from_epoch` bitmap yields the `to_epoch` bitmap.
    Changes {
        /// The epoch the client claimed to hold.
        from_epoch: u64,
        /// The epoch the changes lead to (the segment's current epoch).
        to_epoch: u64,
        /// Word changes, oldest epoch first, deduplicated to the last
        /// write per word.
        changes: Vec<WordDelta>,
    },
    /// The window left the delta ring (client too far behind) — it must
    /// re-snapshot via range reads.
    Resync {
        /// The segment's current epoch.
        current_epoch: u64,
    },
}

/// A validated read of one segment's current publication metadata —
/// what a delta push must carry so a downstream replica can reconstruct
/// the buffer metadata of the epoch it applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicationMeta {
    /// The segment's current epoch (≥ 1).
    pub epoch: u64,
    /// Virtual time the publishing shard had reached.
    pub published_at: SimTime,
    /// Age of the epoch at read time, microseconds of wall clock,
    /// including upstream accumulation.
    pub age_us: u64,
    /// Relay hops between the origin engine and this view (0 = origin).
    pub hops: u8,
}

/// The epoch-versioned published view of every shard's suspect bitmaps.
///
/// Created once per serving deployment with the engine's exact shard
/// partition; shards write through [`SegmentWriter`]s, any number of
/// threads read through `&self`.
pub struct SuspectView {
    combos: usize,
    sources: usize,
    segs: Vec<Segment>,
    /// Wall base for publication timestamps.
    epoch0: Instant,
    /// Validated-read retries across all readers (a retry is a detected
    /// torn epoch that was re-read — never served).
    torn_retries: AtomicU64,
}

impl std::fmt::Debug for SuspectView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuspectView")
            .field("sources", &self.sources)
            .field("combos", &self.combos)
            .field("segments", &self.segs.len())
            .finish()
    }
}

impl SuspectView {
    /// Builds a view over `combos` combinations with one segment per
    /// `(start, len)` partition block — use
    /// [`fd_runtime::sharded::partition`] to match a [`ShardedEngine`]'s
    /// layout exactly.
    ///
    /// [`ShardedEngine`]: fd_runtime::ShardedEngine
    ///
    /// # Panics
    ///
    /// Panics if `combos` is zero, the partition is empty or
    /// non-contiguous from 0, or a block is empty.
    pub fn new(combos: usize, partition: &[(usize, usize)]) -> Arc<SuspectView> {
        assert!(combos > 0, "need at least one combination");
        assert!(!partition.is_empty(), "need at least one segment");
        let mut next = 0usize;
        let segs: Vec<Segment> = partition
            .iter()
            .map(|&(start, len)| {
                assert_eq!(start, next, "partition must be contiguous from 0");
                assert!(len > 0, "empty partition block");
                next = start + len;
                let words = len.div_ceil(64);
                let mk_buf = || -> Box<[AtomicU64]> {
                    (0..combos * words).map(|_| AtomicU64::new(0)).collect()
                };
                let mk_meta = || BufMeta {
                    virtual_us: AtomicU64::new(0),
                    wall_nanos: AtomicU64::new(0),
                    base_age_us: AtomicU64::new(0),
                    hops: AtomicU64::new(0),
                };
                Segment {
                    start,
                    len,
                    words,
                    seq: AtomicU64::new(0),
                    bufs: [mk_buf(), mk_buf()],
                    meta: [mk_meta(), mk_meta()],
                    writer_taken: AtomicBool::new(false),
                    deltas: Mutex::new(Vec::with_capacity(DELTA_RING)),
                    degraded: AtomicU64::new(0),
                }
            })
            .collect();
        Arc::new(SuspectView {
            combos,
            sources: next,
            segs,
            epoch0: Instant::now(),
            torn_retries: AtomicU64::new(0),
        })
    }

    /// Builds a view matching a [`ShardedEngine`](fd_runtime::ShardedEngine)
    /// over `sources` sources split across `shards` shards.
    pub fn for_engine(combos: usize, sources: usize, shards: usize) -> Arc<SuspectView> {
        Self::new(combos, &fd_runtime::sharded::partition(sources, shards))
    }

    /// Total monitored sources across all segments.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Combinations per source.
    pub fn combos(&self) -> usize {
        self.combos
    }

    /// Number of segments (engine shards).
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// The `(start, len)` block of segment `seg`.
    pub fn segment_block(&self, seg: usize) -> (usize, usize) {
        (self.segs[seg].start, self.segs[seg].len)
    }

    /// The current epoch of segment `seg` (0 = nothing published yet).
    pub fn epoch(&self, seg: usize) -> u64 {
        self.segs[seg].seq.load(Ordering::Acquire) / 2
    }

    /// Detected-and-retried torn reads across all readers since creation.
    /// A retry is the seqlock working as designed — the torn snapshot was
    /// discarded, never served.
    pub fn torn_retries(&self) -> u64 {
        self.torn_retries.load(Ordering::Relaxed)
    }

    /// Marks segment `seg` degraded: its publishing shard has been
    /// declared dead (restart budget exhausted), so the segment's state
    /// is frozen at its last published epoch. Readers keep getting that
    /// epoch's bits — stale with a measurable bound (`age_us`) — instead
    /// of silence. Returns the epoch the segment is frozen at (0 if it
    /// never published).
    ///
    /// A later publication (a warm-restarted shard coming back) clears
    /// the mark.
    pub fn mark_degraded(&self, seg: usize) -> u64 {
        let segment = &self.segs[seg];
        let epoch = segment.seq.load(Ordering::Acquire) / 2;
        segment.degraded.store(epoch + 1, Ordering::Release);
        epoch
    }

    /// Whether segment `seg` is currently marked degraded.
    pub fn segment_degraded(&self, seg: usize) -> bool {
        self.segs[seg].degraded.load(Ordering::Relaxed) != 0
    }

    /// The epoch segment `seg` was frozen at when it was marked degraded,
    /// or `None` while the segment is healthy.
    pub fn degraded_since(&self, seg: usize) -> Option<u64> {
        match self.segs[seg].degraded.load(Ordering::Relaxed) {
            0 => None,
            stamp => Some(stamp - 1),
        }
    }

    /// The segment owning global source `source`, or `None` out of range.
    pub fn segment_of(&self, source: u32) -> Option<usize> {
        let s = source as usize;
        if s >= self.sources {
            return None;
        }
        // Blocks are contiguous and sorted: first block starting after s,
        // minus one.
        let idx = self.segs.partition_point(|seg| seg.start <= s);
        Some(idx - 1)
    }

    /// Claims the single writer handle of segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if the segment's writer was already claimed (the seqlock is
    /// single-writer per segment; one engine shard owns one segment).
    pub fn writer(self: &Arc<Self>, seg: usize) -> SegmentWriter {
        assert!(seg < self.segs.len(), "segment {seg} out of range");
        assert!(
            !self.segs[seg].writer_taken.swap(true, Ordering::AcqRel),
            "segment {seg} writer already claimed"
        );
        SegmentWriter {
            view: Arc::clone(self),
            seg,
            prev_changed: Vec::new(),
        }
    }

    /// Wait-free point query: the suspicion bit of `(source, combo)` at
    /// the latest published epoch. `None` while the owning segment has
    /// not published, or for an out-of-range pair.
    pub fn point(&self, source: u32, combo: u32) -> Option<PointRead> {
        if combo as usize >= self.combos {
            return None;
        }
        let seg = &self.segs[self.segment_of(source)?];
        let local = source as usize - seg.start;
        let widx = combo as usize * seg.words + local / 64;
        let bit = 1u64 << (local % 64);
        loop {
            let s0 = seg.seq.load(Ordering::Acquire);
            if s0 == 0 {
                return None;
            }
            let epoch = s0 / 2;
            let b = (epoch & 1) as usize;
            let word = seg.bufs[b][widx].load(Ordering::Relaxed);
            let virtual_us = seg.meta[b].virtual_us.load(Ordering::Relaxed);
            let wall_nanos = seg.meta[b].wall_nanos.load(Ordering::Relaxed);
            let base_age_us = seg.meta[b].base_age_us.load(Ordering::Relaxed);
            let hops = seg.meta[b].hops.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if seg.seq.load(Ordering::Relaxed) == s0 {
                return Some(PointRead {
                    epoch,
                    suspecting: word & bit != 0,
                    degraded: seg.degraded.load(Ordering::Relaxed) != 0,
                    published_at: SimTime::from_micros(virtual_us),
                    age_us: base_age_us.saturating_add(self.age_us(wall_nanos)),
                    hops: hops.min(u64::from(u8::MAX)) as u8,
                });
            }
            self.torn_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wait-free bulk query: up to `max_words` bitmap words of `combo`
    /// starting at the word containing `first_source`, clipped to the
    /// segment owning `first_source`. All words are validated against one
    /// epoch — a mixed-epoch result is impossible.
    pub fn range(&self, combo: u32, first_source: u32, max_words: usize) -> Option<RangeRead> {
        if combo as usize >= self.combos || max_words == 0 {
            return None;
        }
        let seg = &self.segs[self.segment_of(first_source)?];
        let local = first_source as usize - seg.start;
        let w0 = local / 64;
        let n = max_words.min(seg.words - w0);
        let base = combo as usize * seg.words + w0;
        let mut words = vec![0u64; n];
        loop {
            let s0 = seg.seq.load(Ordering::Acquire);
            if s0 == 0 {
                return None;
            }
            let epoch = s0 / 2;
            let b = (epoch & 1) as usize;
            for (i, w) in words.iter_mut().enumerate() {
                *w = seg.bufs[b][base + i].load(Ordering::Relaxed);
            }
            let virtual_us = seg.meta[b].virtual_us.load(Ordering::Relaxed);
            let wall_nanos = seg.meta[b].wall_nanos.load(Ordering::Relaxed);
            let base_age_us = seg.meta[b].base_age_us.load(Ordering::Relaxed);
            let hops = seg.meta[b].hops.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if seg.seq.load(Ordering::Relaxed) == s0 {
                return Some(RangeRead {
                    epoch,
                    first_source: (seg.start + w0 * 64) as u32,
                    words,
                    degraded: seg.degraded.load(Ordering::Relaxed) != 0,
                    published_at: SimTime::from_micros(virtual_us),
                    age_us: base_age_us.saturating_add(self.age_us(wall_nanos)),
                    hops: hops.min(u64::from(u8::MAX)) as u8,
                });
            }
            self.torn_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The word changes of segment `seg` since `from_epoch` (exclusive),
    /// deduplicated to the last write per word, or
    /// [`DeltaRead::Resync`] if the window left the delta ring.
    pub fn delta_since(&self, seg: usize, from_epoch: u64) -> Option<DeltaRead> {
        let segment = self.segs.get(seg)?;
        let current = segment.seq.load(Ordering::Acquire) / 2;
        if current == 0 {
            return None;
        }
        if from_epoch >= current {
            return Some(DeltaRead::Changes {
                from_epoch,
                to_epoch: current,
                changes: Vec::new(),
            });
        }
        let ring = segment.deltas.lock().expect("delta ring poisoned");
        let oldest = ring.first().map_or(u64::MAX, |e| e.epoch);
        if from_epoch + 1 < oldest {
            return Some(DeltaRead::Resync {
                current_epoch: current,
            });
        }
        // Concatenate the retained epochs in order; last write per word
        // wins, so dedup by index keeping the latest. Entries newer than
        // `current` are excluded: the writer fills the ring before bumping
        // seq, so the ring can briefly hold an epoch not yet published —
        // including it would hand the client changes beyond the `to_epoch`
        // it acks.
        let mut latest: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut order: Vec<u32> = Vec::new();
        for entry in ring
            .iter()
            .filter(|e| e.epoch > from_epoch && e.epoch <= current)
        {
            for d in &entry.changes {
                if latest.insert(d.index, d.value).is_none() {
                    order.push(d.index);
                }
            }
        }
        Some(DeltaRead::Changes {
            from_epoch,
            to_epoch: current,
            changes: order
                .into_iter()
                .map(|index| WordDelta {
                    index,
                    value: latest[&index],
                })
                .collect(),
        })
    }

    /// Validated read of segment `seg`'s current publication metadata
    /// (`None` while nothing is published). This is what a delta push
    /// carries downstream so a relay can stamp its replica publication
    /// with honest per-hop staleness.
    pub fn publication_meta(&self, seg: usize) -> Option<PublicationMeta> {
        let segment = self.segs.get(seg)?;
        loop {
            let s0 = segment.seq.load(Ordering::Acquire);
            if s0 == 0 {
                return None;
            }
            let epoch = s0 / 2;
            let b = (epoch & 1) as usize;
            let virtual_us = segment.meta[b].virtual_us.load(Ordering::Relaxed);
            let wall_nanos = segment.meta[b].wall_nanos.load(Ordering::Relaxed);
            let base_age_us = segment.meta[b].base_age_us.load(Ordering::Relaxed);
            let hops = segment.meta[b].hops.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if segment.seq.load(Ordering::Relaxed) == s0 {
                return Some(PublicationMeta {
                    epoch,
                    published_at: SimTime::from_micros(virtual_us),
                    age_us: base_age_us.saturating_add(self.age_us(wall_nanos)),
                    hops: hops.min(u64::from(u8::MAX)) as u8,
                });
            }
            self.torn_retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn age_us(&self, wall_nanos: u64) -> u64 {
        let now = self.epoch0.elapsed().as_nanos() as u64;
        now.saturating_sub(wall_nanos) / 1_000
    }
}

/// Which words a publication must consider rewriting — see
/// [`SegmentWriter::publish_words_dirty`] for the covering contract.
enum Cover<'a> {
    /// Every word: the full-snapshot / resync path.
    All,
    /// A word-index bitmap (bit `w % 64` of element `w / 64`).
    DirtyBits(&'a [u64]),
    /// An ascending, deduplicated list of word indices.
    Indices(&'a [u32]),
}

/// The exclusive writer handle of one segment: the engine shard's side of
/// the seqlock.
pub struct SegmentWriter {
    view: Arc<SuspectView>,
    seg: usize,
    /// Word indices changed by this writer's previous publication
    /// (ascending). An incremental publication writes into the buffer
    /// that is one epoch *behind* the published one, so it must rewrite
    /// the previous epoch's changes on top of the caller's dirty set to
    /// bring that buffer current — see [`publish_words_dirty`].
    ///
    /// [`publish_words_dirty`]: Self::publish_words_dirty
    prev_changed: Vec<u32>,
}

impl std::fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("segment", &self.seg)
            .finish()
    }
}

impl SegmentWriter {
    /// The segment this writer owns.
    pub fn segment(&self) -> usize {
        self.seg
    }

    /// Publishes a shard bank's current suspicion bitmap as the next
    /// epoch, rewriting every word — the full-snapshot / resync path.
    /// Returns the epoch published.
    ///
    /// # Panics
    ///
    /// Panics if the bank's shape (sources, combinations) does not match
    /// the segment.
    pub fn publish(&mut self, bank: &SourceBank, now: SimTime) -> u64 {
        self.assert_bank_shape(bank);
        self.publish_words(bank.suspect_words(), now)
    }

    /// Publishes a shard bank's current suspicion bitmap as the next
    /// epoch, touching only the words the bank reports dirty (plus the
    /// previous epoch's changes) — the steady-state incremental path.
    /// The caller clears the bank's dirty bitmap *after* this returns
    /// (see [`SourceBank::clear_dirty`]).
    ///
    /// # Panics
    ///
    /// Panics if the bank's shape does not match the segment.
    pub fn publish_dirty(&mut self, bank: &SourceBank, now: SimTime) -> u64 {
        self.assert_bank_shape(bank);
        self.publish_words_dirty(bank.suspect_words(), bank.dirty_words(), now)
    }

    fn assert_bank_shape(&self, bank: &SourceBank) {
        let seg = &self.view.segs[self.seg];
        assert_eq!(bank.sources(), seg.len, "bank/segment source mismatch");
        assert_eq!(bank.len(), self.view.combos, "bank/segment combo mismatch");
        debug_assert_eq!(bank.words_per_combo(), seg.words);
    }

    /// Publishes raw combo-major bitmap words (`combos × words` of them)
    /// as the next epoch, rewriting every word. The building block behind
    /// [`publish`](Self::publish); public so non-bank producers (event-log
    /// replay, tests flipping patterns) can drive a view.
    ///
    /// # Panics
    ///
    /// Panics if `words` has the wrong length.
    pub fn publish_words(&mut self, words: &[u64], now: SimTime) -> u64 {
        self.publish_inner(words, Cover::All, now, 0, 0)
    }

    /// Publishes `words` as the next epoch, rewriting only the words
    /// named by `dirty` (bit `w % 64` of `dirty[w / 64]`) plus the
    /// previous publication's changes.
    ///
    /// **Covering contract:** `dirty` must name every word of `words`
    /// that differs from this writer's *previous* `words` argument — a
    /// superset is fine (extra words cost a compare each), a miss is not:
    /// an unmarked changed word would go stale in the published buffer
    /// and silently wrong answers would follow. [`SourceBank`] maintains
    /// exactly this contract via its dirty bitmap (all-dirty when fresh
    /// or restored). The delta ring receives the exact change set either
    /// way, so `delta_since` semantics are identical to a full publish.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `dirty` has the wrong length, or `dirty`
    /// names a word index out of range.
    pub fn publish_words_dirty(&mut self, words: &[u64], dirty: &[u64], now: SimTime) -> u64 {
        self.publish_inner(words, Cover::DirtyBits(dirty), now, 0, 0)
    }

    /// Publishes a replica reconstruction as the next epoch, rewriting
    /// only the word indices in `touched` (any order, duplicates fine)
    /// plus the previous publication's changes. `base_age_us` and `hops`
    /// stamp the upstream staleness already accumulated when the source
    /// epoch was fetched, so answers served from this view carry
    /// `base_age_us + local age` and `hops` — the per-hop accounting
    /// contract of the relay tree.
    ///
    /// The covering contract of [`publish_words_dirty`] applies to
    /// `touched`.
    ///
    /// [`publish_words_dirty`]: Self::publish_words_dirty
    pub fn publish_replica_changes(
        &mut self,
        words: &[u64],
        touched: &[u32],
        now: SimTime,
        base_age_us: u64,
        hops: u8,
    ) -> u64 {
        let mut idx: Vec<u32> = touched.to_vec();
        idx.sort_unstable();
        idx.dedup();
        self.publish_inner(words, Cover::Indices(&idx), now, base_age_us, hops)
    }

    /// Publishes a replica reconstruction as the next epoch, rewriting
    /// every word — the relay's resync path. Staleness stamping as in
    /// [`publish_replica_changes`](Self::publish_replica_changes).
    pub fn publish_replica_full(
        &mut self,
        words: &[u64],
        now: SimTime,
        base_age_us: u64,
        hops: u8,
    ) -> u64 {
        self.publish_inner(words, Cover::All, now, base_age_us, hops)
    }

    /// The single publication path. Epoch `e+1` is written into the
    /// buffer holding epoch `e-1`, so an incremental cover must rewrite
    /// the union of the caller's dirty set (⊇ words changed `e → e+1`)
    /// and the previous publication's changes (words changed `e-1 → e`);
    /// every other word already holds its epoch-`e+1` value. The change
    /// set recorded in the delta ring is computed against the *published*
    /// buffer (epoch `e`), so it is exact regardless of cover.
    fn publish_inner(
        &mut self,
        words: &[u64],
        cover: Cover<'_>,
        now: SimTime,
        base_age_us: u64,
        hops: u8,
    ) -> u64 {
        let seg = &self.view.segs[self.seg];
        assert_eq!(
            words.len(),
            self.view.combos * seg.words,
            "bitmap word count mismatch"
        );
        let epoch = seg.seq.load(Ordering::Relaxed) / 2 + 1;
        let dst = &seg.bufs[(epoch & 1) as usize];
        // The buffer being replaced currently holds epoch-1 (published) —
        // no wait: that is the *other* buffer. This one holds epoch-2;
        // the published buffer is what deltas diff against.
        let published = &seg.bufs[((epoch + 1) & 1) as usize];
        // Release fence, paired fence-to-fence with the readers' acquire
        // fence. A release *store* of seq only orders the stores before
        // it; this epoch's relaxed word stores come *after* the previous
        // epoch's seq store and could otherwise become visible ahead of
        // it. The fence guarantees that a reader observing any of this
        // epoch's word writes before its acquire fence also sees every
        // store sequenced before this fence — in particular the previous
        // seq bump — so its re-validation load cannot still return the
        // two-epochs-old sequence and pass a mixed-epoch snapshot.
        fence(Ordering::Release);
        // Diff-and-store one word: the change set entry (vs the published
        // epoch) and the store into the in-progress buffer.
        fn apply(
            i: usize,
            words: &[u64],
            dst: &[AtomicU64],
            published: &[AtomicU64],
            changes: &mut Vec<WordDelta>,
        ) {
            let w = words[i];
            // For epoch 1 `published` is the all-zero init buffer, so the
            // first delta is exactly the set bits — "since empty".
            if w != published[i].load(Ordering::Relaxed) {
                changes.push(WordDelta {
                    index: i as u32,
                    value: w,
                });
            }
            dst[i].store(w, Ordering::Relaxed);
        }
        let mut changes = Vec::new();
        match cover {
            Cover::All => {
                for i in 0..words.len() {
                    apply(i, words, dst, published, &mut changes);
                }
            }
            Cover::DirtyBits(dirty) => {
                assert_eq!(
                    dirty.len(),
                    words.len().div_ceil(64),
                    "dirty bitmap length mismatch"
                );
                let mut cand: Vec<u32> = Vec::with_capacity(self.prev_changed.len() + 16);
                cand.extend_from_slice(&self.prev_changed);
                for (bw, &bits) in dirty.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let i = (bw * 64) as u32 + bits.trailing_zeros();
                        assert!((i as usize) < words.len(), "dirty word {i} out of range");
                        cand.push(i);
                        bits &= bits - 1;
                    }
                }
                cand.sort_unstable();
                cand.dedup();
                for &i in &cand {
                    apply(i as usize, words, dst, published, &mut changes);
                }
            }
            Cover::Indices(touched) => {
                let mut cand: Vec<u32> =
                    Vec::with_capacity(self.prev_changed.len() + touched.len());
                cand.extend_from_slice(&self.prev_changed);
                cand.extend_from_slice(touched);
                cand.sort_unstable();
                cand.dedup();
                for &i in &cand {
                    assert!((i as usize) < words.len(), "touched word {i} out of range");
                    apply(i as usize, words, dst, published, &mut changes);
                }
            }
        }
        let new_prev: Vec<u32> = changes.iter().map(|d| d.index).collect();
        let m = &seg.meta[(epoch & 1) as usize];
        m.virtual_us.store(now.as_micros(), Ordering::Relaxed);
        m.wall_nanos.store(
            self.view.epoch0.elapsed().as_nanos() as u64,
            Ordering::Relaxed,
        );
        m.base_age_us.store(base_age_us, Ordering::Relaxed);
        m.hops.store(u64::from(hops), Ordering::Relaxed);
        // The ring entry goes in *before* the seq bump: `delta_since`
        // reports `to_epoch = seq/2`, so a ring that lagged seq would let
        // a client ack an epoch whose changes it never received — and
        // deltas filter on `epoch > from_epoch`, so those words would
        // never be re-sent. With this order the ring may briefly run
        // *ahead* of seq instead, which `delta_since` handles by ignoring
        // entries newer than the epoch it reports.
        {
            let mut ring = seg.deltas.lock().expect("delta ring poisoned");
            if ring.len() == DELTA_RING {
                ring.remove(0);
            }
            ring.push(DeltaEntry { epoch, changes });
        }
        // The release store is the publication point: everything above
        // happens-before any reader that observes the new sequence.
        seg.seq.store(epoch * 2, Ordering::Release);
        // A publication supersedes any degradation mark: the shard is
        // demonstrably alive again (e.g. warm-restarted), so readers stop
        // seeing the frozen-state flag.
        seg.degraded.store(0, Ordering::Relaxed);
        self.prev_changed = new_prev;
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::combinations::all_combinations;
    use fd_sim::SimDuration;

    fn two_segment_view() -> Arc<SuspectView> {
        SuspectView::new(30, &[(0, 70), (70, 58)])
    }

    #[test]
    fn unpublished_view_answers_none() {
        let view = two_segment_view();
        assert_eq!(view.sources(), 128);
        assert_eq!(view.segments(), 2);
        assert_eq!(view.epoch(0), 0);
        assert!(view.point(5, 3).is_none());
        assert!(view.range(5, 3, 4).is_none());
        assert!(view.delta_since(0, 0).is_none());
    }

    #[test]
    fn out_of_range_queries_answer_none() {
        let view = two_segment_view();
        assert!(view.point(128, 0).is_none());
        assert!(view.point(0, 30).is_none());
        assert!(view.segment_of(128).is_none());
        assert_eq!(view.segment_of(69), Some(0));
        assert_eq!(view.segment_of(70), Some(1));
    }

    #[test]
    fn published_bank_state_is_served_exactly() {
        let eta = SimDuration::from_secs(1);
        let combos = all_combinations();
        let view = SuspectView::new(combos.len(), &[(0, 40)]);
        let mut writer = view.writer(0);
        let mut bank = SourceBank::new(&combos, eta, 40);
        for s in 0..30u32 {
            bank.observe_heartbeat(s, 0, SimTime::from_millis(200 + u64::from(s)));
        }
        bank.check_all_at(SimTime::from_secs(90));
        let epoch = writer.publish(&bank, SimTime::from_secs(90));
        assert_eq!(epoch, 1);
        assert_eq!(view.epoch(0), 1);
        for s in 0..40u32 {
            for c in 0..combos.len() as u32 {
                let ans = view.point(s, c).expect("published");
                assert_eq!(ans.epoch, 1);
                assert_eq!(
                    ans.suspecting,
                    bank.is_suspecting(s, c as usize),
                    "s{s} c{c}"
                );
                assert_eq!(ans.published_at, SimTime::from_secs(90));
            }
        }
    }

    #[test]
    fn range_read_covers_whole_segment_words() {
        let view = SuspectView::new(2, &[(0, 130)]); // 3 words per combo
        let mut writer = view.writer(0);
        let words = vec![0xAA, 0xBB, 0x3, 0x11, 0x22, 0x0];
        writer.publish_words(&words, SimTime::from_secs(1));
        let r = view.range(0, 0, 8).expect("published");
        assert_eq!(r.words, &[0xAA, 0xBB, 0x3]);
        assert_eq!(r.first_source, 0);
        let r = view.range(1, 64, 8).expect("published");
        assert_eq!(r.words, &[0x22, 0x0]);
        assert_eq!(r.first_source, 64);
    }

    #[test]
    fn epochs_alternate_buffers_and_stay_consistent() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut writer = view.writer(0);
        for e in 1..=10u64 {
            let pattern = if e % 2 == 0 { 0xAAAA } else { 0x5555 };
            assert_eq!(writer.publish_words(&[pattern], SimTime::from_secs(e)), e);
            let r = view.range(0, 0, 1).unwrap();
            assert_eq!(r.epoch, e);
            assert_eq!(r.words[0], pattern);
        }
    }

    #[test]
    fn delta_since_reconstructs_current_bitmap() {
        let view = SuspectView::new(2, &[(0, 128)]); // 2 words per combo
        let mut writer = view.writer(0);
        writer.publish_words(&[1, 0, 0, 8], SimTime::from_secs(1));
        writer.publish_words(&[1, 2, 0, 8], SimTime::from_secs(2));
        writer.publish_words(&[5, 2, 0, 0], SimTime::from_secs(3));
        // From epoch 1: changes of epochs 2 and 3.
        let DeltaRead::Changes {
            from_epoch,
            to_epoch,
            changes,
        } = view.delta_since(0, 1).unwrap()
        else {
            panic!("expected retained window");
        };
        assert_eq!((from_epoch, to_epoch), (1, 3));
        let mut words = [1u64, 0, 0, 8]; // epoch 1 held by the client
        for d in &changes {
            words[d.index as usize] = d.value;
        }
        assert_eq!(words, [5, 2, 0, 0]);
        // Up to date: empty changes.
        let DeltaRead::Changes { changes, .. } = view.delta_since(0, 3).unwrap() else {
            panic!("expected empty window");
        };
        assert!(changes.is_empty());
    }

    #[test]
    fn delta_window_expires_to_resync() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut writer = view.writer(0);
        for e in 0..(DELTA_RING as u64 + 5) {
            writer.publish_words(&[e], SimTime::from_secs(e + 1));
        }
        match view.delta_since(0, 1).unwrap() {
            DeltaRead::Resync { current_epoch } => {
                assert_eq!(current_epoch, DELTA_RING as u64 + 5);
            }
            other => panic!("expected resync, got {other:?}"),
        }
        // A recent window is still retained.
        assert!(matches!(
            view.delta_since(0, DELTA_RING as u64),
            Some(DeltaRead::Changes { .. })
        ));
    }

    #[test]
    fn degraded_mark_freezes_reads_and_is_cleared_by_publication() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut writer = view.writer(0);
        writer.publish_words(&[0b101], SimTime::from_secs(1));
        assert!(!view.segment_degraded(0));
        assert_eq!(view.degraded_since(0), None);
        assert!(!view.point(0, 0).unwrap().degraded);

        // The supervisor declares the shard dead: answers keep flowing,
        // frozen at epoch 1, flagged degraded.
        assert_eq!(view.mark_degraded(0), 1);
        assert!(view.segment_degraded(0));
        assert_eq!(view.degraded_since(0), Some(1));
        let p = view.point(2, 0).expect("still served");
        assert!(p.degraded);
        assert!(p.suspecting);
        assert_eq!(p.epoch, 1);
        let r = view.range(0, 0, 1).expect("still served");
        assert!(r.degraded);
        assert_eq!(r.words, &[0b101]);

        // A fresh publication (warm restart) clears the mark.
        writer.publish_words(&[0b1], SimTime::from_secs(2));
        assert!(!view.segment_degraded(0));
        assert!(!view.point(0, 0).unwrap().degraded);
    }

    #[test]
    fn degraded_unpublished_segment_still_answers_none() {
        let view = two_segment_view();
        assert_eq!(view.mark_degraded(1), 0);
        assert!(view.segment_degraded(1));
        assert_eq!(view.degraded_since(1), Some(0));
        // Nothing was ever published: there is no frozen state to serve.
        assert!(view.point(70, 0).is_none());
        // The healthy segment is unaffected.
        assert!(!view.segment_degraded(0));
    }

    #[test]
    #[should_panic(expected = "writer already claimed")]
    fn second_writer_rejected() {
        let view = two_segment_view();
        let _w1 = view.writer(0);
        let _w2 = view.writer(0);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn wrong_word_count_rejected() {
        let view = SuspectView::new(2, &[(0, 64)]);
        let mut writer = view.writer(0);
        writer.publish_words(&[0; 3], SimTime::ZERO);
    }

    /// A sequence of incremental publications serves exactly what full
    /// publications of the same states serve — words, epochs and deltas.
    #[test]
    fn incremental_publish_matches_full_publish() {
        let n_words = 4usize;
        let full = SuspectView::new(2, &[(0, 128)]);
        let inc = SuspectView::new(2, &[(0, 128)]);
        let mut wf = full.writer(0);
        let mut wi = inc.writer(0);
        let mut words = vec![0u64; n_words];
        let mut dirty = vec![u64::MAX >> (64 - n_words)]; // fresh: all dirty
                                                          // Deterministic word churn: each step flips a couple of words and
                                                          // marks exactly those dirty.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for step in 1..=(DELTA_RING as u64 + 20) {
            if step > 1 {
                dirty[0] = 0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (state >> 7) as usize % n_words;
                let b = (state >> 23) as usize % n_words;
                words[a] ^= 1u64 << (state % 64);
                words[b] ^= 1u64 << ((state >> 13) % 64);
                dirty[0] |= (1u64 << a) | (1u64 << b);
            }
            let t = SimTime::from_millis(step);
            assert_eq!(wf.publish_words(&words, t), step);
            assert_eq!(wi.publish_words_dirty(&words, &dirty, t), step);
            for combo in 0..2u32 {
                let rf = full.range(combo, 0, n_words).unwrap();
                let ri = inc.range(combo, 0, n_words).unwrap();
                assert_eq!(rf.words, ri.words, "step {step} combo {combo}");
                assert_eq!(rf.epoch, ri.epoch);
            }
            // The delta rings carry identical change sets.
            let from = step.saturating_sub(3);
            match (full.delta_since(0, from), inc.delta_since(0, from)) {
                (
                    Some(DeltaRead::Changes { changes: cf, .. }),
                    Some(DeltaRead::Changes { changes: ci, .. }),
                ) => assert_eq!(cf, ci, "step {step}"),
                (a, b) => panic!("delta mismatch at {step}: {a:?} vs {b:?}"),
            }
        }
    }

    /// A dirty set that *over*-covers (extra unchanged words) produces no
    /// spurious delta entries; the recorded changes stay exact.
    #[test]
    fn over_covering_dirty_set_keeps_deltas_exact() {
        let view = SuspectView::new(1, &[(0, 256)]); // 4 words
        let mut w = view.writer(0);
        w.publish_words_dirty(&[1, 2, 3, 4], &[0b1111], SimTime::from_secs(1));
        // Only word 2 changes, but every word is marked dirty.
        w.publish_words_dirty(&[1, 2, 9, 4], &[0b1111], SimTime::from_secs(2));
        let DeltaRead::Changes { changes, .. } = view.delta_since(0, 1).unwrap() else {
            panic!("expected retained window");
        };
        assert_eq!(changes, vec![WordDelta { index: 2, value: 9 }]);
    }

    /// Replica publications stamp upstream staleness: served ages start
    /// from the base and the hop count is carried verbatim.
    #[test]
    fn replica_publish_accumulates_age_and_hops() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_replica_full(&[0b10], SimTime::from_secs(4), 7_000, 2);
        let p = view.point(1, 0).expect("published");
        assert!(p.suspecting);
        assert_eq!(p.hops, 2);
        assert!(p.age_us >= 7_000, "age {} lost the upstream base", p.age_us);
        let r = view.range(0, 0, 1).expect("published");
        assert_eq!(r.hops, 2);
        assert!(r.age_us >= 7_000);
        let meta = view.publication_meta(0).expect("published");
        assert_eq!(meta.epoch, 1);
        assert_eq!(meta.hops, 2);
        assert!(meta.age_us >= 7_000);
        assert_eq!(meta.published_at, SimTime::from_secs(4));

        // Incremental replica updates keep accounting per publication.
        w.publish_replica_changes(&[0b11], &[0], SimTime::from_secs(5), 3_000, 2);
        let p = view.point(0, 0).expect("published");
        assert_eq!(p.epoch, 2);
        assert!(p.age_us >= 3_000 && p.age_us < 7_000 + 1_000_000);
        // Origin publications reset the stamps.
        w.publish_words(&[0b1], SimTime::from_secs(6));
        let p = view.point(0, 0).expect("published");
        assert_eq!(p.hops, 0);
        assert!(p.age_us < 5_000_000);
    }

    /// An origin view's answers report hop zero and base-free ages.
    #[test]
    fn origin_answers_report_zero_hops() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[1], SimTime::from_secs(1));
        assert_eq!(view.point(0, 0).unwrap().hops, 0);
        assert_eq!(view.publication_meta(0).unwrap().hops, 0);
        assert!(view.publication_meta(1).is_none());
    }
}
