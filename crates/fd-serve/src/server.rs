//! The UDP query server: a small thread pool answering serving-plane
//! frames against a [`SuspectView`], std-only and allocation-light.
//!
//! # Design
//!
//! * **Nonblocking shared socket.** All worker threads `recv_from` the
//!   same nonblocking socket (kernel load-balances wakeups); a worker
//!   that finds the queue empty parks briefly. No async runtime, no
//!   epoll dependency — just `std::net`, because the workspace carries
//!   no I/O framework and the protocol is strictly request/response.
//! * **Queries never lock.** Point and range answers go through the
//!   seqlock view — a query cannot block a shard publication and
//!   publications cannot block queries. Only the subscription control
//!   plane (subscribe/unsubscribe) takes a mutex.
//! * **Malformed frames are counted, not fatal.** The same policy as
//!   `Heartbeat::decode` on the heartbeat plane: a frame that fails to
//!   decode increments [`ServeStats::malformed`] and is dropped without
//!   a reply (replying to garbage invites reflection abuse).
//! * **Bounded subscriber backpressure.** A pusher thread walks the
//!   subscription table at the publish cadence and sends each subscriber
//!   the delta since its acknowledged epoch. A subscriber whose lag
//!   exceeds [`ServeConfig::max_sub_lag`] epochs — or whose window left
//!   the delta ring — gets one `Resync` frame and is dropped: a slow
//!   client costs one table entry and one frame, never unbounded queueing.
//!   The table itself is bounded too: entries come from unauthenticated
//!   UDP peers, so subscribes beyond [`ServeConfig::max_subs`] are
//!   rejected with [`ERR_SUB_LIMIT`], and an entry claiming an epoch
//!   *ahead* of its segment (which would otherwise never be pushed,
//!   never lag, and never age out) is dropped on the next pusher pass.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

use crate::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::view::{DeltaRead, PublicationMeta, SuspectView};
use crate::wire::{
    Request, Response, ERR_BAD_SEGMENT, ERR_OUT_OF_RANGE, ERR_SUB_LIMIT, FLAG_PUBLISHED,
    FLAG_SEGMENT_DEGRADED, FLAG_SUSPECTING, MAX_RANGE_WORDS,
};

/// Consecutive-receive-error cap for a worker thread, mirroring the real
/// engine's monitor loop: transient socket errors (e.g. ICMP
/// port-unreachable surfacing as `ECONNREFUSED` on some platforms) are
/// counted and absorbed; only a persistently broken socket — this many
/// errors back to back with not one successful receive between them —
/// ends the worker.
const MAX_CONSECUTIVE_RECV_ERRORS: u32 = 100;

/// Whether a worker should give up after `consecutive` back-to-back
/// receive errors.
fn recv_errors_exhausted(consecutive: u32) -> bool {
    consecutive > MAX_CONSECUTIVE_RECV_ERRORS
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServeServer::local_addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Epochs a subscriber may fall behind before it is resynced and
    /// dropped.
    pub max_sub_lag: u64,
    /// Hard cap on concurrent subscription-table entries. Subscriptions
    /// arrive from unauthenticated (and spoofable) UDP peers, so without
    /// a cap the table — and the pusher's per-interval walk over it —
    /// grows without bound. A subscribe beyond the cap is answered with
    /// [`ERR_SUB_LIMIT`].
    pub max_subs: usize,
    /// Pusher poll interval.
    pub push_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_sub_lag: 16,
            max_subs: 4_096,
            push_interval: Duration::from_millis(1),
        }
    }
}

/// Serving-plane counters, all monotone, safe to read at any time.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Point queries answered.
    pub served_point: AtomicU64,
    /// Range queries answered.
    pub served_range: AtomicU64,
    /// One-shot delta queries answered.
    pub served_delta: AtomicU64,
    /// Frames that failed to decode (counted and dropped, like corrupted
    /// heartbeats).
    pub malformed: AtomicU64,
    /// Socket receive errors absorbed by worker threads (transient, not
    /// fatal unless [`MAX_CONSECUTIVE_RECV_ERRORS`] arrive back to back).
    pub socket_errors: AtomicU64,
    /// Well-formed but unanswerable requests (`Err` replies).
    pub errors: AtomicU64,
    /// Delta frames pushed to subscribers.
    pub subs_pushed: AtomicU64,
    /// Subscribers dropped for exceeding the lag bound or losing their
    /// delta window.
    pub subs_dropped: AtomicU64,
    /// Info queries answered.
    pub served_info: AtomicU64,
}

impl ServeStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Subscription-table key: one standing subscription per `(peer,
/// segment, token)`. The token lets one socket carry many logical
/// subscribers (a relay's downstream fan-out, a load generator), and a
/// re-subscribe with the same token replaces the entry instead of
/// stacking a duplicate.
type SubKey = (SocketAddr, u16, u32);

struct SubState {
    /// Last epoch the subscriber has been sent (it holds this epoch's
    /// bitmap once deltas are applied).
    acked_epoch: u64,
    /// Whether the last frame sent carried `FLAG_SEGMENT_DEGRADED`, so a
    /// health *transition* with no new epoch (a dead shard stops
    /// publishing) still produces one push.
    pushed_degraded: bool,
}

/// The running query server. Dropping it stops and joins all threads.
pub struct ServeServer {
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    subs: Arc<Mutex<HashMap<SubKey, SubState>>>,
    local_addr: SocketAddr,
    handles: Vec<JoinHandle<()>>,
}

/// Reads the delta since `since_epoch` together with the publication
/// meta of the epoch the answer refers to, retrying when a publication
/// lands between the two reads so the stamp matches the epoch exactly.
/// After the retry budget (a pathological publish storm) the freshest
/// meta is used.
/// Current health flags of `segment` for a delta/push frame.
fn segment_flags(view: &SuspectView, segment: u16) -> u8 {
    if view.segment_degraded(usize::from(segment)) {
        FLAG_SEGMENT_DEGRADED
    } else {
        0
    }
}

fn delta_with_meta(
    view: &SuspectView,
    seg: usize,
    since_epoch: u64,
) -> Option<(DeltaRead, PublicationMeta)> {
    let mut delta = view.delta_since(seg, since_epoch)?;
    for _ in 0..64 {
        let meta = view.publication_meta(seg)?;
        let to = match delta {
            DeltaRead::Changes { to_epoch, .. } => to_epoch,
            DeltaRead::Resync { current_epoch } => current_epoch,
        };
        if meta.epoch == to {
            return Some((delta, meta));
        }
        delta = view.delta_since(seg, since_epoch)?;
    }
    let meta = view.publication_meta(seg)?;
    Some((delta, meta))
}

/// Answers one well-formed datagram against the view. Pure with respect
/// to sockets — this is the whole request path, exposed so tests can
/// drive the server logic without UDP. Returns `None` for malformed
/// frames (after counting them) and for requests that take no reply.
pub fn respond(view: &SuspectView, stats: &ServeStats, data: &[u8]) -> Option<Vec<u8>> {
    let req = match Request::decode(data) {
        Ok(req) => req,
        Err(_) => {
            ServeStats::bump(&stats.malformed);
            return None;
        }
    };
    let resp = match req {
        Request::Point {
            token,
            source,
            combo,
        } => {
            if source as usize >= view.sources() || combo as usize >= view.combos() {
                ServeStats::bump(&stats.errors);
                Response::Err {
                    token,
                    code: ERR_OUT_OF_RANGE,
                }
            } else {
                ServeStats::bump(&stats.served_point);
                match view.point(source, u32::from(combo)) {
                    Some(ans) => Response::PointResp {
                        token,
                        epoch: ans.epoch,
                        flags: FLAG_PUBLISHED
                            | if ans.suspecting { FLAG_SUSPECTING } else { 0 }
                            | if ans.degraded {
                                FLAG_SEGMENT_DEGRADED
                            } else {
                                0
                            },
                        age_us: ans.age_us,
                        hops: ans.hops,
                    },
                    // Not yet published: answer "fresh, not suspecting,
                    // unpublished" rather than erroring — the grid warms
                    // up segment by segment. A segment that died before
                    // its first publication still reports degraded, so
                    // the client can tell "warming up" from "gone".
                    None => Response::PointResp {
                        token,
                        epoch: 0,
                        flags: if view
                            .segment_of(source)
                            .is_some_and(|seg| view.segment_degraded(seg))
                        {
                            FLAG_SEGMENT_DEGRADED
                        } else {
                            0
                        },
                        age_us: 0,
                        hops: 0,
                    },
                }
            }
        }
        Request::Range {
            token,
            combo,
            first_source,
            max_words,
        } => {
            let seg = view.segment_of(first_source);
            // Clamp to what fits one UDP datagram: a 65 535-word reply
            // would be rejected by the kernel with EMSGSIZE and the
            // client would see only a timeout on a well-formed request.
            let words = usize::from(max_words.max(1)).min(MAX_RANGE_WORDS);
            match seg.and_then(|_| view.range(u32::from(combo), first_source, words)) {
                Some(ans) => {
                    ServeStats::bump(&stats.served_range);
                    Response::RangeResp {
                        token,
                        segment: seg.unwrap_or(0) as u16,
                        epoch: ans.epoch,
                        combo,
                        flags: FLAG_PUBLISHED
                            | if ans.degraded {
                                FLAG_SEGMENT_DEGRADED
                            } else {
                                0
                            },
                        age_us: ans.age_us,
                        hops: ans.hops,
                        first_word_source: ans.first_source,
                        words: ans.words,
                    }
                }
                None => {
                    ServeStats::bump(&stats.errors);
                    Response::Err {
                        token,
                        code: ERR_OUT_OF_RANGE,
                    }
                }
            }
        }
        Request::DeltaSince {
            token,
            segment,
            since_epoch,
        } => match delta_with_meta(view, usize::from(segment), since_epoch) {
            Some((
                DeltaRead::Changes {
                    from_epoch,
                    to_epoch,
                    changes,
                },
                meta,
            )) => {
                ServeStats::bump(&stats.served_delta);
                Response::DeltaResp {
                    token,
                    segment,
                    from_epoch,
                    to_epoch,
                    virtual_us: meta.published_at.as_micros(),
                    age_us: meta.age_us,
                    hops: meta.hops,
                    flags: segment_flags(view, segment),
                    changes: changes.into_iter().map(|d| (d.index, d.value)).collect(),
                }
            }
            Some((DeltaRead::Resync { current_epoch }, _)) => {
                ServeStats::bump(&stats.served_delta);
                Response::Resync {
                    token,
                    segment,
                    current_epoch,
                }
            }
            None => {
                ServeStats::bump(&stats.errors);
                Response::Err {
                    token,
                    code: if usize::from(segment) < view.segments() {
                        ERR_OUT_OF_RANGE // segment exists but unpublished
                    } else {
                        ERR_BAD_SEGMENT
                    },
                }
            }
        },
        Request::Info { token } => {
            ServeStats::bump(&stats.served_info);
            Response::InfoResp {
                token,
                sources: view.sources() as u64,
                combos: view.combos() as u16,
                seg_lens: (0..view.segments())
                    .map(|seg| view.segment_block(seg).1 as u32)
                    .collect(),
            }
        }
        // Subscription management is handled by the worker loop (it needs
        // the sender address); through the pure path they take no reply.
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => return None,
    };
    Some(resp.encode())
}

impl ServeServer {
    /// Binds the socket and starts the worker and pusher threads.
    pub fn start(view: Arc<SuspectView>, cfg: ServeConfig) -> io::Result<ServeServer> {
        let socket = UdpSocket::bind(&cfg.addr)?;
        socket.set_nonblocking(true)?;
        let local_addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServeStats::default());
        let subs: Arc<Mutex<HashMap<SubKey, SubState>>> = Arc::new(Mutex::new(HashMap::new()));

        let mut handles = Vec::new();
        for worker in 0..cfg.workers.max(1) {
            let socket = socket.try_clone()?;
            let view = Arc::clone(&view);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let subs = Arc::clone(&subs);
            let max_subs = cfg.max_subs;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fd-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&socket, &view, &stop, &stats, &subs, max_subs))
                    .expect("spawn serve worker"),
            );
        }
        {
            let socket = socket.try_clone()?;
            let view = Arc::clone(&view);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let subs = Arc::clone(&subs);
            let max_lag = cfg.max_sub_lag;
            let interval = cfg.push_interval;
            handles.push(
                std::thread::Builder::new()
                    .name("fd-serve-pusher".to_string())
                    .spawn(move || {
                        pusher_loop(&socket, &view, &stop, &stats, &subs, max_lag, interval)
                    })
                    .expect("spawn serve pusher"),
            );
        }
        Ok(ServeServer {
            stop,
            stats,
            subs,
            local_addr,
            handles,
        })
    }

    /// Live subscription-table entries — one per `(peer, segment,
    /// token)`. A registration probe: a subscriber that resends its
    /// subscribe until this count reflects it is durably registered.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().expect("subs poisoned").len()
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stops and joins all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    socket: &UdpSocket,
    view: &SuspectView,
    stop: &AtomicBool,
    stats: &ServeStats,
    subs: &Mutex<HashMap<SubKey, SubState>>,
    max_subs: usize,
) {
    let mut buf = [0u8; 65_536];
    let mut consecutive_recv_errors = 0u32;
    while !stop.load(Ordering::Acquire) {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(pair) => {
                consecutive_recv_errors = 0;
                pair
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                consecutive_recv_errors = 0;
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            Err(_) => {
                // A transient receive error must not kill the worker —
                // the same policy as the real engine's monitor loop. Count
                // it, back off briefly, and only a persistently broken
                // socket (the consecutive cap, with no successful receive
                // in between) ends the worker.
                ServeStats::bump(&stats.socket_errors);
                consecutive_recv_errors += 1;
                if recv_errors_exhausted(consecutive_recv_errors) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let data = &buf[..len];
        // Subscription management needs the peer address, so it is
        // handled here; everything else goes through the pure path.
        match Request::decode(data) {
            Ok(Request::Subscribe {
                token,
                segment,
                since_epoch,
            }) => {
                if usize::from(segment) >= view.segments() {
                    ServeStats::bump(&stats.errors);
                    let _ = socket.send_to(
                        &Response::Err {
                            token,
                            code: ERR_BAD_SEGMENT,
                        }
                        .encode(),
                        peer,
                    );
                    continue;
                }
                let mut table = subs.lock().expect("subs poisoned");
                // Capacity check: re-subscribing an existing key is always
                // allowed (it only updates the epoch), but a *new* entry
                // beyond the cap is rejected — the table is fed by
                // unauthenticated datagrams and must not grow unbounded.
                if table.len() >= max_subs && !table.contains_key(&(peer, segment, token)) {
                    drop(table);
                    ServeStats::bump(&stats.errors);
                    let _ = socket.send_to(
                        &Response::Err {
                            token,
                            code: ERR_SUB_LIMIT,
                        }
                        .encode(),
                        peer,
                    );
                    continue;
                }
                table.insert(
                    (peer, segment, token),
                    SubState {
                        acked_epoch: since_epoch,
                        // Treat the subscriber as not-yet-told: if the
                        // segment is degraded right now, the first pusher
                        // sweep sends the transition frame.
                        pushed_degraded: false,
                    },
                );
            }
            Ok(Request::Unsubscribe { segment, .. }) => {
                // Every token the peer holds on the segment goes.
                subs.lock()
                    .expect("subs poisoned")
                    .retain(|&(p, s, _), _| !(p == peer && s == segment));
            }
            _ => {
                if let Some(reply) = respond(view, stats, data) {
                    let _ = socket.send_to(&reply, peer);
                }
            }
        }
    }
}

fn pusher_loop(
    socket: &UdpSocket,
    view: &SuspectView,
    stop: &AtomicBool,
    stats: &ServeStats,
    subs: &Mutex<HashMap<SubKey, SubState>>,
    max_lag: u64,
    interval: Duration,
) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        let mut table = subs.lock().expect("subs poisoned");
        let mut dropped: Vec<SubKey> = Vec::new();
        for (&(peer, segment, token), state) in table.iter_mut() {
            let current = view.epoch(segment as usize);
            if state.acked_epoch > current {
                // A claimed epoch ahead of the segment can only come from
                // a bogus (or spoofed) since_epoch: it would never be
                // pushed, never lag, and so never leave the table. Drop
                // it silently — there is nothing meaningful to resync to.
                ServeStats::bump(&stats.subs_dropped);
                dropped.push((peer, segment, token));
                continue;
            }
            let degraded = view.segment_degraded(usize::from(segment));
            if current == state.acked_epoch {
                // No new epoch, but the segment's health may have
                // transitioned (a dead shard publishes nothing, so
                // degradation can only travel as its own push). Send an
                // empty flagged delta; healing always republishes, so the
                // clear rides a normal epoch push.
                if degraded != state.pushed_degraded {
                    let meta = view.publication_meta(usize::from(segment));
                    let frame = Response::DeltaResp {
                        token,
                        segment,
                        from_epoch: current,
                        to_epoch: current,
                        virtual_us: meta.as_ref().map_or(0, |m| m.published_at.as_micros()),
                        age_us: meta.as_ref().map_or(0, |m| m.age_us),
                        hops: meta.as_ref().map_or(0, |m| m.hops),
                        flags: if degraded { FLAG_SEGMENT_DEGRADED } else { 0 },
                        changes: Vec::new(),
                    };
                    let _ = socket.send_to(&frame.encode(), peer);
                    ServeStats::bump(&stats.subs_pushed);
                    state.pushed_degraded = degraded;
                }
                continue;
            }
            // Backpressure: a lagging (or ring-evicted) subscriber gets
            // one Resync frame, then the entry is gone — a dead client
            // cannot grow server state.
            let mut resync_at: Option<u64> = None;
            if current - state.acked_epoch > max_lag {
                resync_at = Some(current);
            } else {
                match delta_with_meta(view, usize::from(segment), state.acked_epoch) {
                    Some((
                        DeltaRead::Changes {
                            from_epoch,
                            to_epoch,
                            changes,
                        },
                        meta,
                    )) => {
                        let frame = Response::DeltaResp {
                            token,
                            segment,
                            from_epoch,
                            to_epoch,
                            virtual_us: meta.published_at.as_micros(),
                            age_us: meta.age_us,
                            hops: meta.hops,
                            flags: if degraded { FLAG_SEGMENT_DEGRADED } else { 0 },
                            changes: changes.into_iter().map(|d| (d.index, d.value)).collect(),
                        };
                        let _ = socket.send_to(&frame.encode(), peer);
                        ServeStats::bump(&stats.subs_pushed);
                        state.acked_epoch = to_epoch;
                        state.pushed_degraded = degraded;
                    }
                    Some((DeltaRead::Resync { current_epoch }, _)) => {
                        resync_at = Some(current_epoch);
                    }
                    None => {}
                }
            }
            if let Some(current_epoch) = resync_at {
                let _ = socket.send_to(
                    &Response::Resync {
                        token,
                        segment,
                        current_epoch,
                    }
                    .encode(),
                    peer,
                );
                ServeStats::bump(&stats.subs_dropped);
                dropped.push((peer, segment, token));
            }
        }
        for key in dropped {
            table.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::SimTime;

    fn view_with_one_epoch() -> Arc<SuspectView> {
        let view = SuspectView::new(2, &[(0, 64), (64, 64)]);
        let mut w0 = view.writer(0);
        let mut w1 = view.writer(1);
        w0.publish_words(&[0b101, 0b1], SimTime::from_secs(1));
        w1.publish_words(&[0, 0b10], SimTime::from_secs(1));
        view
    }

    #[test]
    fn respond_answers_point_and_range() {
        let view = view_with_one_epoch();
        let stats = ServeStats::default();
        let req = Request::Point {
            token: 5,
            source: 2,
            combo: 0,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::PointResp {
                token,
                epoch,
                flags,
                ..
            } => {
                assert_eq!(token, 5);
                assert_eq!(epoch, 1);
                assert_eq!(flags & FLAG_SUSPECTING, FLAG_SUSPECTING);
                assert_eq!(flags & FLAG_PUBLISHED, FLAG_PUBLISHED);
            }
            other => panic!("expected point response, got {other:?}"),
        }
        let req = Request::Range {
            token: 6,
            combo: 1,
            first_source: 64,
            max_words: 4,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::RangeResp {
                segment,
                words,
                first_word_source,
                ..
            } => {
                assert_eq!(segment, 1);
                assert_eq!(first_word_source, 64);
                assert_eq!(words, vec![0b10]);
            }
            other => panic!("expected range response, got {other:?}"),
        }
        assert_eq!(stats.served_point.load(Ordering::Relaxed), 1);
        assert_eq!(stats.served_range.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn malformed_frames_are_counted_and_dropped() {
        let view = view_with_one_epoch();
        let stats = ServeStats::default();
        assert!(respond(&view, &stats, b"garbage frame").is_none());
        assert!(respond(&view, &stats, &[]).is_none());
        // Correct prefix, unknown tag.
        let mut bad = Request::Point {
            token: 0,
            source: 0,
            combo: 0,
        }
        .encode();
        bad[5] = 77;
        assert!(respond(&view, &stats, &bad).is_none());
        assert_eq!(stats.malformed.load(Ordering::Relaxed), 3);
        assert_eq!(stats.served_point.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn out_of_range_point_is_an_error_reply() {
        let view = view_with_one_epoch();
        let stats = ServeStats::default();
        let req = Request::Point {
            token: 9,
            source: 500,
            combo: 0,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        assert_eq!(
            Response::decode(&reply).unwrap(),
            Response::Err {
                token: 9,
                code: ERR_OUT_OF_RANGE
            }
        );
        assert_eq!(stats.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delta_since_served_over_the_wire_path() {
        let view = SuspectView::new(1, &[(0, 64)]);
        let mut w = view.writer(0);
        w.publish_words(&[1], SimTime::from_secs(1));
        w.publish_words(&[3], SimTime::from_secs(2));
        let stats = ServeStats::default();
        let req = Request::DeltaSince {
            token: 1,
            segment: 0,
            since_epoch: 1,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::DeltaResp {
                token,
                segment,
                from_epoch,
                to_epoch,
                virtual_us,
                hops,
                changes,
                ..
            } => {
                assert_eq!(token, 1);
                assert_eq!(segment, 0);
                assert_eq!(from_epoch, 1);
                assert_eq!(to_epoch, 2);
                // Stamped with epoch 2's publication instant, origin depth.
                assert_eq!(virtual_us, 2_000_000);
                assert_eq!(hops, 0);
                assert_eq!(changes, vec![(0, 3)]);
            }
            other => panic!("expected delta response, got {other:?}"),
        }
    }

    #[test]
    fn info_describes_the_served_view() {
        let view = view_with_one_epoch();
        let stats = ServeStats::default();
        let reply = respond(&view, &stats, &Request::Info { token: 3 }.encode()).expect("reply");
        assert_eq!(
            Response::decode(&reply).unwrap(),
            Response::InfoResp {
                token: 3,
                sources: 128,
                combos: 2,
                seg_lens: vec![64, 64],
            }
        );
        assert_eq!(stats.served_info.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_range_request_is_clamped_to_one_datagram() {
        // 600k sources ⇒ 9 375 words per combo, past MAX_RANGE_WORDS; an
        // unclamped reply (~75 KB) would exceed the UDP payload limit and
        // die in the kernel with EMSGSIZE.
        const SOURCES: usize = 600_000;
        let view = SuspectView::new(1, &[(0, SOURCES)]);
        let mut w = view.writer(0);
        w.publish_words(&vec![u64::MAX; SOURCES.div_ceil(64)], SimTime::from_secs(1));
        let stats = ServeStats::default();
        let req = Request::Range {
            token: 1,
            combo: 0,
            first_source: 0,
            max_words: u16::MAX,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        assert!(
            reply.len() <= 65_507,
            "reply would not fit a UDP datagram: {} bytes",
            reply.len()
        );
        match Response::decode(&reply).unwrap() {
            Response::RangeResp { words, .. } => assert_eq!(words.len(), MAX_RANGE_WORDS),
            other => panic!("expected range response, got {other:?}"),
        }
    }

    #[test]
    fn subscription_table_is_bounded() {
        let view = view_with_one_epoch(); // two segments, one epoch each
        let server = ServeServer::start(
            Arc::clone(&view),
            ServeConfig {
                max_subs: 1,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 65_536];
        // The first subscribe fits the table: the pusher delivers epoch 1.
        sock.send_to(
            &Request::Subscribe {
                token: 1,
                segment: 0,
                since_epoch: 0,
            }
            .encode(),
            server.local_addr(),
        )
        .unwrap();
        let (len, _) = sock.recv_from(&mut buf).expect("first push");
        assert!(matches!(
            Response::decode(&buf[..len]).unwrap(),
            Response::DeltaResp { segment: 0, .. }
        ));
        // A second, new-key subscribe beyond the cap is rejected.
        sock.send_to(
            &Request::Subscribe {
                token: 2,
                segment: 1,
                since_epoch: 0,
            }
            .encode(),
            server.local_addr(),
        )
        .unwrap();
        let (len, _) = sock.recv_from(&mut buf).expect("rejection");
        assert_eq!(
            Response::decode(&buf[..len]).unwrap(),
            Response::Err {
                token: 2,
                code: ERR_SUB_LIMIT
            }
        );
    }

    #[test]
    fn ahead_of_epoch_subscription_is_dropped() {
        let view = view_with_one_epoch(); // current epoch is 1
        let server = ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind");
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        sock.send_to(
            &Request::Subscribe {
                token: 1,
                segment: 0,
                since_epoch: 999,
            }
            .encode(),
            server.local_addr(),
        )
        .unwrap();
        // The pusher notices the bogus claimed epoch and evicts the entry.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().subs_dropped.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "ahead-of-epoch subscription never dropped"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn degraded_segment_answers_carry_the_degraded_flag() {
        let view = view_with_one_epoch();
        view.mark_degraded(0); // segment 0 = sources 0..64
        let stats = ServeStats::default();
        let reply = respond(
            &view,
            &stats,
            &Request::Point {
                token: 1,
                source: 2,
                combo: 0,
            }
            .encode(),
        )
        .expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::PointResp { epoch, flags, .. } => {
                // Stale-with-bound, not silence: the frozen epoch's bit
                // still arrives, flagged degraded.
                assert_eq!(epoch, 1);
                assert_eq!(flags & FLAG_PUBLISHED, FLAG_PUBLISHED);
                assert_eq!(flags & FLAG_SUSPECTING, FLAG_SUSPECTING);
                assert_eq!(flags & FLAG_SEGMENT_DEGRADED, FLAG_SEGMENT_DEGRADED);
            }
            other => panic!("expected point response, got {other:?}"),
        }
        let reply = respond(
            &view,
            &stats,
            &Request::Range {
                token: 2,
                combo: 0,
                first_source: 0,
                max_words: 4,
            }
            .encode(),
        )
        .expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::RangeResp { flags, words, .. } => {
                assert_eq!(flags & FLAG_SEGMENT_DEGRADED, FLAG_SEGMENT_DEGRADED);
                assert_eq!(words, vec![0b101]);
            }
            other => panic!("expected range response, got {other:?}"),
        }
        // The healthy segment is served without the flag.
        let reply = respond(
            &view,
            &stats,
            &Request::Point {
                token: 3,
                source: 64,
                combo: 1,
            }
            .encode(),
        )
        .expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::PointResp { flags, .. } => {
                assert_eq!(flags & FLAG_SEGMENT_DEGRADED, 0);
            }
            other => panic!("expected point response, got {other:?}"),
        }
    }

    #[test]
    fn degraded_before_first_publication_is_distinguishable_from_warmup() {
        let view = SuspectView::new(1, &[(0, 64)]);
        view.mark_degraded(0);
        let stats = ServeStats::default();
        let reply = respond(
            &view,
            &stats,
            &Request::Point {
                token: 4,
                source: 0,
                combo: 0,
            }
            .encode(),
        )
        .expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::PointResp { epoch, flags, .. } => {
                assert_eq!(epoch, 0);
                assert_eq!(flags, FLAG_SEGMENT_DEGRADED);
            }
            other => panic!("expected point response, got {other:?}"),
        }
    }

    #[test]
    fn recv_error_cap_matches_the_real_engine_policy() {
        assert!(!recv_errors_exhausted(0));
        assert!(!recv_errors_exhausted(1));
        assert!(!recv_errors_exhausted(MAX_CONSECUTIVE_RECV_ERRORS));
        assert!(recv_errors_exhausted(MAX_CONSECUTIVE_RECV_ERRORS + 1));
    }

    #[test]
    fn unpublished_view_point_is_flagged_unpublished() {
        let view = SuspectView::new(2, &[(0, 64)]);
        let stats = ServeStats::default();
        let req = Request::Point {
            token: 2,
            source: 1,
            combo: 1,
        }
        .encode();
        let reply = respond(&view, &stats, &req).expect("reply");
        match Response::decode(&reply).unwrap() {
            Response::PointResp { epoch, flags, .. } => {
                assert_eq!(epoch, 0);
                assert_eq!(flags, 0);
            }
            other => panic!("expected point response, got {other:?}"),
        }
    }
}
