//! The suspect-query serving plane: who the monitor suspects, answerable
//! at wire speed, without touching the monitoring hot path.
//!
//! The paper evaluates a failure detector's QoS from the *monitor's* own
//! point of view; a deployed detector has a second audience — every
//! application thread and remote peer asking "do you currently suspect
//! p?". At the million-source scale of the sharded engine that question
//! cannot be answered by poking the engine itself: the observe path is
//! the latency-critical resource the whole design protects. This crate
//! decouples the two:
//!
//! * [`SuspectView`] ([`view`]) — an epoch-versioned, seqlock-style
//!   double-buffered publication of the per-shard N×30 suspect bitmaps.
//!   Engine shards publish incrementally — a dirty-word cover bounds the
//!   rewrite, per-epoch deltas are exact by construction — under a
//!   churn-adaptive cadence (writers never wait); any number of query
//!   threads read wait-free, retrying only a read that raced *two*
//!   publications. A served answer carries its epoch, the publishing
//!   shard's virtual time, a wall-clock age, and a relay hop count — so
//!   staleness is measurable, not anecdotal, at any fan-out depth.
//! * [`wire`] — a compact binary protocol (point query, bulk range,
//!   delta-since-epoch, subscriptions, view-layout info) on the shared
//!   [`fd_net::framing`] header, with heartbeat-style count-and-drop
//!   handling of malformed frames.
//! * [`ServeServer`] ([`server`]) — a std-only nonblocking-UDP thread
//!   pool answering queries against the view, with bounded per-subscriber
//!   backpressure (lag beyond a configured bound ⇒ one `Resync`, drop).
//! * [`Relay`] ([`relay`]) — a fan-out node: subscribes upstream like any
//!   client, maintains a full replica view from the delta stream
//!   (reconciling stale pushes via catch-up, never a silently wrong
//!   replica), and re-serves it through an embedded [`ServeServer`] so
//!   k-ary relay trees carry ≥100k subscribers with per-hop age
//!   accounting.
//! * [`ServeClient`] / [`EnginePublisher`] ([`client`]) — the blocking
//!   query client used by load generators and relays, and the bridge that
//!   plugs a view into [`fd_runtime::ShardedEngine::run_published`].
//!
//! The `serve` binary in `fd-experiments` drives a 100k-source grid
//! against this stack and records queries/sec, latency percentiles,
//! snapshot staleness and relay-tree fan-out rows to `BENCH_serve.json`.

pub mod client;
pub mod relay;
pub mod server;
pub mod view;
pub mod wire;

/// The synchronization primitives the seqlock and server are built on.
///
/// With the `check` feature off (the default) this re-exports `std`,
/// so production builds are bit-identical to ones compiled directly
/// against `std::sync`. With `check` on, the same names resolve to
/// [`fd_check::sync`]'s model-checker shims — which pass through to
/// `std` outside a model run, so the ordinary test suite still behaves
/// identically, while `tests/model_seqlock.rs` can explore
/// interleavings and store reorderings of the exact shipped code.
#[cfg(not(feature = "check"))]
pub(crate) mod sync {
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
    pub use std::sync::Mutex;
}
#[cfg(feature = "check")]
pub(crate) mod sync {
    pub use fd_check::sync::{fence, AtomicBool, AtomicU64, Mutex, Ordering};
}

pub use client::{EnginePublisher, RetryPolicy, ServeClient};
pub use relay::{Relay, RelayConfig, RelayStats};
pub use server::{respond, ServeConfig, ServeServer, ServeStats};
pub use view::{DeltaRead, PointRead, RangeRead, SegmentWriter, SuspectView, WordDelta};
pub use wire::{Request, Response};
