//! Model-checked interleaving tests of the seqlock `SuspectView` —
//! the three invariants from the PR-4 review, explored mechanically
//! under fd-check's store-buffer memory model.
//!
//! Compiled only with `--features check`, which routes the view's
//! atomics, fences and the delta-ring mutex through `fd_check::sync`.
//! The code under test is the exact shipped source of `view.rs`; the
//! shims pass through to `std` outside a model run, so enabling the
//! feature does not change any other test's behavior.
//!
//! Each closure runs thousands of times under distinct schedules,
//! including schedules where the writer's relaxed stores commit to
//! memory out of program order — the reordering the `publish_words`
//! release fence exists to prevent. `scripts/check-mutants.sh` asserts
//! that reverting that fence (or the ring-before-seq publication
//! order) makes this suite fail.
#![cfg(feature = "check")]

use std::sync::Arc;

use fd_check::{model_with, thread, Config};
use fd_serve::view::{DeltaRead, SuspectView};
use fd_sim::SimTime;

/// Invariant 1 (PR-4 review): a validated read never observes a
/// mixed-epoch snapshot. The writer publishes epochs whose every word
/// *is* the epoch number, so any blend of two epochs — e.g. epoch
/// `e+2`'s words committing ahead of the epoch `e+1` seq store while a
/// reader validates against epoch `e` — is immediately visible.
///
/// The acceptance bar: at least 10 000 distinct interleavings of the
/// writer/reader pair (or full exhaustion of the bounded space).
#[test]
fn no_validated_mixed_epoch_snapshot() {
    let report = model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 15_000,
            random_schedules: 500,
            ..Config::default()
        },
        || {
            // 1 combo × 128 sources = 2 words per epoch.
            let view = SuspectView::new(1, &[(0, 128)]);
            let mut writer = view.writer(0);
            let w = thread::spawn_named("writer", move || {
                for k in 1..=3u64 {
                    writer.publish_words(&[k, k], SimTime::from_secs(k));
                }
            });
            let v = Arc::clone(&view);
            let r = thread::spawn_named("reader", move || {
                for _ in 0..2 {
                    if let Some(read) = v.range(0, 0, 2) {
                        for (i, word) in read.words.iter().enumerate() {
                            assert_eq!(
                                *word, read.epoch,
                                "mixed-epoch snapshot: word {i} is {word} but the \
                                 validated epoch is {}",
                                read.epoch
                            );
                        }
                        assert_eq!(
                            read.published_at,
                            SimTime::from_secs(read.epoch),
                            "mixed-epoch metadata: published_at disagrees with epoch {}",
                            read.epoch
                        );
                    }
                }
            });
            w.join().unwrap();
            r.join().unwrap();
        },
    );
    assert!(
        report.dfs_explored >= 10_000 || report.exhausted,
        "exploration too shallow: {report:?}"
    );
}

/// Invariant 2 (PR-4 review): a client can never ack an epoch whose
/// word deltas it was not sent. The writer publishes epochs whose
/// single word equals the epoch, so replaying `delta_since(0)` onto an
/// all-zero bitmap must reconstruct exactly the `to_epoch` it acks —
/// if the ring lagged the seq store, the reconstruction would be stuck
/// one epoch behind the ack.
#[test]
fn no_ack_of_an_epoch_with_unsent_deltas() {
    model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 10_000,
            random_schedules: 500,
            ..Config::default()
        },
        || {
            let view = SuspectView::new(1, &[(0, 64)]);
            let mut writer = view.writer(0);
            let w = thread::spawn_named("writer", move || {
                for k in 1..=3u64 {
                    writer.publish_words(&[k], SimTime::from_secs(k));
                }
            });
            let v = Arc::clone(&view);
            let r = thread::spawn_named("reader", move || {
                for _ in 0..2 {
                    match v.delta_since(0, 0) {
                        Some(DeltaRead::Changes {
                            to_epoch, changes, ..
                        }) => {
                            let mut word = 0u64;
                            for d in &changes {
                                assert_eq!(d.index, 0);
                                word = d.value;
                            }
                            assert_eq!(
                                word, to_epoch,
                                "acked epoch {to_epoch} but its word deltas were unsent \
                                 (reconstruction reached {word})"
                            );
                        }
                        Some(DeltaRead::Resync { .. }) => {
                            panic!(
                                "3 epochs cannot overflow a {}-deep ring",
                                fd_serve::view::DELTA_RING
                            )
                        }
                        None => {}
                    }
                }
            });
            w.join().unwrap();
            r.join().unwrap();
        },
    );
}

/// Invariant 3 (PR-4 review): a subscriber that falls back to a
/// resync (full range re-read) never loses a set bit. The writer
/// publishes epoch `k` as the single bit `1 << k`, so the snapshot a
/// resync returns must contain exactly its own epoch's bit — a stale
/// or mixed snapshot would drop the bit the acked epoch set — and the
/// resync can never move the subscriber backwards past deltas it
/// already applied.
#[test]
fn subscriber_resync_never_loses_a_set_bit() {
    model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 10_000,
            random_schedules: 500,
            ..Config::default()
        },
        || {
            let view = SuspectView::new(1, &[(0, 64)]);
            let mut writer = view.writer(0);
            let w = thread::spawn_named("writer", move || {
                for k in 1..=3u64 {
                    writer.publish_words(&[1 << k], SimTime::from_secs(k));
                }
            });
            let v = Arc::clone(&view);
            let r = thread::spawn_named("reader", move || {
                // Catch up via the delta path first, like a live
                // subscriber...
                let delta_epoch = match v.delta_since(0, 0) {
                    Some(DeltaRead::Changes { to_epoch, .. }) => to_epoch,
                    _ => 0,
                };
                // ...then resync with a full snapshot, like a laggard
                // kicked by the pusher.
                if let Some(read) = v.range(0, 0, 1) {
                    assert!(
                        read.epoch >= delta_epoch,
                        "resync moved the subscriber backwards: had epoch \
                         {delta_epoch}, snapshot is epoch {}",
                        read.epoch
                    );
                    assert_eq!(
                        read.words[0],
                        1u64 << read.epoch,
                        "resync snapshot of epoch {} lost its set bit",
                        read.epoch
                    );
                }
            });
            w.join().unwrap();
            r.join().unwrap();
        },
    );
}

/// Invariant 4 (PR-8): incremental publishing is unobservable — a
/// validated read after N dirty-word publishes equals what a full
/// snapshot publish of the same state would have produced, and delta
/// replay from epoch 0 reconstructs exactly the acked state. The
/// schedule is built so the union-with-previous-changes copy is on the
/// critical path: epoch 2 dirties only word 1 and epoch 3 only word 0,
/// yet each epoch's buffer started as the state from *two* epochs ago —
/// sabotaged dirty tracking serves a stale word here, under any
/// interleaving.
#[test]
fn incremental_publish_is_equivalent_to_full_snapshots() {
    const STATES: [[u64; 2]; 3] = [[5, 9], [5, 7], [6, 7]];
    model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 10_000,
            random_schedules: 500,
            ..Config::default()
        },
        || {
            let view = SuspectView::new(1, &[(0, 128)]);
            let mut writer = view.writer(0);
            let w = thread::spawn_named("writer", move || {
                writer.publish_words_dirty(&STATES[0], &[0b11], SimTime::from_secs(1));
                writer.publish_words_dirty(&STATES[1], &[0b10], SimTime::from_secs(2));
                writer.publish_words_dirty(&STATES[2], &[0b01], SimTime::from_secs(3));
            });
            let v = Arc::clone(&view);
            let r = thread::spawn_named("reader", move || {
                for _ in 0..2 {
                    if let Some(read) = v.range(0, 0, 2) {
                        let expect = &STATES[read.epoch as usize - 1];
                        assert_eq!(
                            read.words[..],
                            expect[..],
                            "incremental publish diverged from the full state at \
                             epoch {}",
                            read.epoch
                        );
                    }
                    if let Some(DeltaRead::Changes {
                        to_epoch, changes, ..
                    }) = v.delta_since(0, 0)
                    {
                        let mut words = [0u64; 2];
                        for d in &changes {
                            words[d.index as usize] = d.value;
                        }
                        assert_eq!(
                            words,
                            STATES[to_epoch as usize - 1],
                            "delta replay to epoch {to_epoch} diverged from the \
                             published state"
                        );
                    }
                }
            });
            w.join().unwrap();
            r.join().unwrap();
        },
    );
}

/// The single-writer guard holds under every interleaving: exactly one
/// of two racing `writer()` claims wins, whichever order the schedule
/// runs them in.
#[test]
fn writer_claim_is_exclusive_under_all_schedules() {
    model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 2_000,
            ..Config::default()
        },
        || {
            let view = SuspectView::new(1, &[(0, 64)]);
            let claim = |name: &'static str| {
                let v = Arc::clone(&view);
                thread::spawn_named(name, move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        std::mem::forget(v.writer(0));
                    }))
                    .is_ok()
                })
            };
            let a = claim("claim-a");
            let b = claim("claim-b");
            let won_a = a.join().unwrap();
            let won_b = b.join().unwrap();
            assert!(
                won_a ^ won_b,
                "exactly one writer claim must win (a: {won_a}, b: {won_b})"
            );
        },
    );
}
