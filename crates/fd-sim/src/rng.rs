//! Deterministic, splittable random-number streams.
//!
//! Every stochastic model in an experiment (delay sampling, loss sampling,
//! crash injection, …) must draw from its *own* stream so that adding a new
//! model does not perturb the draws of existing ones. [`SeedTree`] derives
//! independent child seeds from a root seed and a label; [`DetRng`] is the
//! concrete reproducible generator.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator seeded explicitly.
///
/// Thin wrapper around [`rand::rngs::SmallRng`]. It deliberately does *not*
/// retain its seed: a monitor holds one generator per source, so every field
/// here is paid a million times over. Experiments record the root seed (and
/// [`SeedTree`] labels) instead — that is enough to reconstruct any stream.
///
/// ```
/// use fd_sim::DetRng;
/// use rand::Rng;
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples a standard-normal variate via Box–Muller.
    ///
    /// `rand_distr` is not among the approved dependencies, so the normal
    /// transform lives here.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller: u1 in (0,1], u2 in [0,1).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples `Normal(mean, std)`.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Samples `Exp(1/mean)` (an exponential with the given mean).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "invalid exponential mean: {mean}"
        );
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Samples a Gamma(shape, scale) variate (Marsaglia–Tsang for shape ≥ 1,
    /// boosted for shape < 1).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite(),
            "invalid gamma parameters: shape={shape}, scale={scale}"
        );
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
            let u: f64 = 1.0 - self.inner.gen::<f64>();
            return self.gamma(shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = 1.0 - self.inner.gen::<f64>();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * scale;
            }
        }
    }

    /// Samples a log-normal with the given *underlying* normal parameters.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Samples `Uniform(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        lo + (hi - lo) * self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Derives independent child seeds from a root seed and a textual label.
///
/// Seed derivation is a fixed FNV-1a-style hash of the label mixed with the
/// root, so that streams are stable across runs and across code reordering.
///
/// ```
/// use fd_sim::SeedTree;
/// let tree = SeedTree::new(7);
/// assert_eq!(tree.child_seed("delay"), SeedTree::new(7).child_seed("delay"));
/// assert_ne!(tree.child_seed("delay"), tree.child_seed("loss"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree rooted at `root`.
    pub const fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the child seed for `label`.
    pub fn child_seed(&self, label: &str) -> u64 {
        // FNV-1a over the label, then a splitmix64 finaliser mixing in root.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h ^ self.root.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Creates a [`DetRng`] on the stream named `label`.
    pub fn rng(&self, label: &str) -> DetRng {
        DetRng::seed_from(self.child_seed(label))
    }

    /// Creates a subtree: useful for per-run nesting, e.g.
    /// `tree.subtree("run-3").rng("loss")`.
    pub fn subtree(&self, label: &str) -> SeedTree {
        SeedTree::new(self.child_seed(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(123);
        let mut b = DetRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let tree = SeedTree::new(1);
        assert_ne!(tree.child_seed("a"), tree.child_seed("b"));
        assert_ne!(tree.subtree("x").child_seed("a"), tree.child_seed("a"));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = DetRng::seed_from(6);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn gamma_moments_are_plausible() {
        let mut rng = DetRng::seed_from(7);
        let (shape, scale) = (4.0, 2.5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gamma(shape, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - shape * scale).abs() < 0.3, "mean={mean}");
        assert!((var - shape * scale * scale).abs() < 2.5, "var={var}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut rng = DetRng::seed_from(8);
        for _ in 0..5_000 {
            assert!(rng.gamma(0.5, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::seed_from(9);
        for _ in 0..5_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_frequency_matches_p() {
        let mut rng = DetRng::seed_from(11);
        let hits = (0..50_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }
}
