//! Integer-microsecond virtual time.
//!
//! Floating-point time makes event ordering platform- and optimisation-
//! dependent; all simulation timestamps are therefore integer microseconds.
//! Millisecond-resolution `f64` views are provided for the statistics layer,
//! where the QoS metrics of the paper are reported in milliseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const MICROS_PER_MILLI: u64 = 1_000;
const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant of virtual time, measured in microseconds from the start of the
/// simulation.
///
/// ```
/// use fd_sim::{SimDuration, SimTime};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_millis(), 2_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```
/// use fd_sim::SimDuration;
/// assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * MICROS_PER_MILLI)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// This instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier} is after {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * MICROS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "invalid duration: {millis}"
        );
        SimDuration((millis * MICROS_PER_MILLI as f64).round() as u64)
    }

    /// This span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// This span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to a [`std::time::Duration`] for use by the real-time engine.
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_micros().min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimTime::from_secs_f64(2.0), SimTime::from_secs(2));
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d * 4, SimDuration::from_secs(1));
        let mut acc = SimDuration::ZERO;
        acc += d;
        acc += d;
        assert_eq!(acc, SimDuration::from_millis(500));
        acc -= d;
        assert_eq!(acc, d);
    }

    #[test]
    fn duration_since_is_directional() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(3));
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_secs(3)));
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn std_duration_conversions() {
        let d = SimDuration::from_millis(42);
        assert_eq!(d.to_std(), std::time::Duration::from_millis(42));
        assert_eq!(SimDuration::from(std::time::Duration::from_millis(42)), d);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn non_finite_duration_rejected() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }
}
