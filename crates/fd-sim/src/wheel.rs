//! A hierarchical timer wheel with the same stable `(time, seq)` FIFO
//! semantics as [`EventQueue`](crate::EventQueue).
//!
//! Failure-detector workloads are the timer wheel's best case: heartbeat
//! periods and freshness deadlines are near-periodic, so pending timers
//! cluster a few wheel levels above the cursor and inserts/fires are O(1)
//! amortized instead of the heap's O(log n) — the difference that matters
//! once millions of per-source deadlines are pending at once.
//!
//! # Layout
//!
//! Six levels of 64 slots each, with a level-0 tick of **1 µs** (the
//! [`SimTime`] resolution). Level `l` spans `64^(l+1)` µs ahead of the
//! cursor, so the wheel covers `64^6 µs ≈ 19.1 hours`; entries farther out
//! than that go to a sorted overflow list and are re-threaded onto the wheel
//! as the cursor approaches. An entry due at tick `t` lives at level
//! `⌊log64(t − cursor)⌋`, slot `(t >> 6l) & 63`; per-level occupancy
//! bitmaps make "next occupied slot" one `trailing_zeros`.
//!
//! Advancing the cursor to the earliest pending slot either yields events
//! (level 0, where a slot maps to exactly one tick) or **cascades** a
//! higher-level slot: its entries are redistributed to strictly lower
//! levels, preserving their relative insertion order so the FIFO guarantee
//! survives arbitrary push patterns.
//!
//! Events that become due (tick ≤ cursor) sit in a small `due` buffer
//! ordered by `(time, seq)`; the buffer, when non-empty, always holds the
//! global minimum, which is what makes `peek`/`pop` exact.

use crate::time::SimTime;

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 6;
/// Ticks covered by the wheel proper; anything farther out overflows.
const CAPACITY: u64 = 1 << (BITS * LEVELS as u32); // 64^6 µs ≈ 19.1 h

/// One pending entry. The insertion sequence is 32-bit, mirroring
/// [`EventQueue`](crate::EventQueue): with an 8-byte timestamp and the
/// engines' 12-byte events this keeps the entry at 24 bytes — and the wheel
/// holds two entries per monitored source, so at a million sources every
/// entry byte is a megabyte.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u32,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u32) {
        (self.at, self.seq)
    }
}

#[derive(Debug, Clone)]
struct Level<E> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: [Vec<Entry<E>>; SLOTS],
}

impl<E> Level<E> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A hierarchical timer wheel, drop-in alternative to
/// [`EventQueue`](crate::EventQueue): identical pop order, including FIFO
/// ties at equal timestamps.
///
/// The one API difference is that [`peek_time`](TimerWheel::peek_time) takes
/// `&mut self`, because finding the minimum may cascade higher-level slots
/// down; [`crate::Simulator`] absorbs this behind its unchanged interface.
///
/// ```
/// use fd_sim::{SimTime, TimerWheel};
/// let mut w = TimerWheel::new();
/// w.push(SimTime::from_millis(7), "late");
/// w.push(SimTime::from_millis(3), "early");
/// assert_eq!(w.pop(), Some((SimTime::from_millis(3), "early")));
/// ```
#[derive(Debug, Clone)]
pub struct TimerWheel<E> {
    levels: Vec<Level<E>>,
    /// The wheel's notion of "now", in ticks (µs). Entries at or before the
    /// cursor live in `due`; entries after it live on the wheel levels.
    cursor: u64,
    /// Due entries in **descending** `(time, seq)` order, so the global
    /// minimum pops from the back in O(1).
    due: Vec<Entry<E>>,
    /// Entries beyond the wheel horizon, ascending `(time, seq)` order.
    overflow: Vec<Entry<E>>,
    next_seq: u32,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cursor: 0,
            due: Vec::new(),
            overflow: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Creates an empty wheel; `capacity` is accepted for API parity with
    /// [`EventQueue::with_capacity`](crate::EventQueue::with_capacity) (slot
    /// vectors grow on demand, so there is nothing useful to pre-size).
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// Inserts `event` with timestamp `at`.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` lifetime pushes, same as
    /// [`EventQueue::push`](crate::EventQueue::push).
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq = seq.checked_add(1).expect("timer wheel seq overflow");
        self.place(Entry { at, seq, event });
        self.len += 1;
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_due();
        let e = self.due.pop()?;
        self.len -= 1;
        Some((e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self`: locating the minimum may cascade wheel slots (a
    /// pure state refinement — the set of pending events is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_due();
        self.due.last().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events. The cursor keeps its position, matching
    /// the semantics of clearing a queue mid-run.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.occupied = 0;
            for slot in &mut level.slots {
                slot.clear();
            }
        }
        self.due.clear();
        self.overflow.clear();
        self.len = 0;
    }

    /// Routes an entry to the due buffer, a wheel slot, or overflow. Does
    /// not touch `len` (used by both `push` and cascading).
    fn place(&mut self, entry: Entry<E>) {
        let tick = entry.at.as_micros();
        if tick <= self.cursor {
            // Already due: binary-insert into the descending due buffer.
            let key = entry.key();
            let idx = self.due.partition_point(|e| e.key() > key);
            self.due.insert(idx, entry);
        } else if tick - self.cursor >= CAPACITY {
            let key = entry.key();
            let idx = self.overflow.partition_point(|e| e.key() < key);
            self.overflow.insert(idx, entry);
        } else {
            let delta = tick - self.cursor;
            let level = ((63 - delta.leading_zeros()) / BITS) as usize;
            let slot = ((tick >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.levels[level].slots[slot].push(entry);
            self.levels[level].occupied |= 1 << slot;
        }
    }

    /// The next occupied slot of `level` in cursor-circular order, with the
    /// absolute tick at which that slot's range begins (its cascade point).
    fn next_expiry_at_level(&self, level: usize) -> Option<(u64, usize)> {
        let occupied = self.levels[level].occupied;
        if occupied == 0 {
            return None;
        }
        let shift = BITS * level as u32;
        let cur_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
        // Window start: cursor with the low (level+1)·6 bits cleared.
        let top = self.cursor >> (shift + BITS) << (shift + BITS);
        // Slots strictly ahead of the cursor come first…
        let ahead = if cur_slot == 63 {
            0
        } else {
            occupied & (!0u64 << (cur_slot + 1))
        };
        if ahead != 0 {
            let slot = ahead.trailing_zeros() as usize;
            return Some((top + ((slot as u64) << shift), slot));
        }
        // …then the wrap-around: slots at or before the cursor hold entries
        // of the *next* window (same-window ones would sit at a lower level).
        let slot = occupied.trailing_zeros() as usize;
        Some((
            top + (1u64 << (shift + BITS)) + ((slot as u64) << shift),
            slot,
        ))
    }

    /// Advances the cursor until the earliest pending events sit in `due`
    /// (or the wheel is empty). Maintains the invariant that a non-empty
    /// `due` buffer holds the global minimum.
    fn ensure_due(&mut self) {
        while self.due.is_empty() {
            // Per-level minima, computed against the CURRENT cursor. They
            // must all be taken before the cursor moves: once it sits at the
            // winning slot's range start, recomputation would classify that
            // slot as wrapped-around and misfile it a full window late.
            let mut per_level: [Option<(u64, usize)>; LEVELS] = [None; LEVELS];
            let mut best: Option<u64> = None;
            for (level, min) in per_level.iter_mut().enumerate() {
                *min = self.next_expiry_at_level(level);
                if let Some((expiry, _)) = *min {
                    if best.is_none_or(|b| expiry < b) {
                        best = Some(expiry);
                    }
                }
            }
            let overflow_head = self.overflow.first().map(|e| e.at.as_micros());
            let expiry = match (best, overflow_head) {
                (None, None) => return,
                // Pull overflow even on a tie: an overflow entry may carry a
                // smaller seq than a wheel entry at the same tick.
                (Some(expiry), Some(head)) if head <= expiry => {
                    self.pull_overflow();
                    continue;
                }
                (None, Some(_)) => {
                    self.pull_overflow();
                    continue;
                }
                (Some(expiry), _) => expiry,
            };
            self.cursor = expiry;
            // Cascade EVERY slot whose range starts at this expiry, highest
            // level first: with ties across levels, skipping one would leave
            // an occupied slot whose range the cursor has already entered.
            // Cascaded entries land strictly lower (tick == expiry → due),
            // so one top-down pass settles everything due at this tick; a
            // level-0 slot maps to exactly one tick, and `place` merges its
            // entries FIFO with any the cascades already put in `due`.
            for level in (0..LEVELS).rev() {
                if let Some((e, slot)) = per_level[level] {
                    if e == expiry {
                        let entries = std::mem::take(&mut self.levels[level].slots[slot]);
                        self.levels[level].occupied &= !(1 << slot);
                        for entry in entries {
                            self.place(entry);
                        }
                    }
                }
            }
            // `due` may still be empty if `expiry` was only a cascade point.
        }
    }

    /// Moves the cursor close enough to the overflow head that it fits on
    /// the wheel, then re-threads every overflow entry now in range.
    fn pull_overflow(&mut self) {
        let head = self.overflow[0].at.as_micros();
        self.cursor = self.cursor.max(head.saturating_sub(CAPACITY - 1));
        let in_range = self
            .overflow
            .partition_point(|e| e.at.as_micros() - self.cursor < CAPACITY);
        for entry in self.overflow.drain(..in_range).collect::<Vec<_>>() {
            self.place(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_by_time() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_millis(5), 5);
        w.push(SimTime::from_millis(1), 1);
        w.push(SimTime::from_millis(3), 3);
        let out: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_secs(1);
        w.push(t, "first");
        w.push(t, "second");
        w.push(t, "third");
        assert_eq!(w.pop().unwrap().1, "first");
        assert_eq!(w.pop().unwrap().1, "second");
        assert_eq!(w.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(9), ());
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(10), 10);
        w.push(SimTime::from_secs(2), 2);
        assert_eq!(w.pop().unwrap().1, 2);
        w.push(SimTime::from_secs(5), 5);
        w.push(SimTime::from_secs(3), 3);
        let out: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![3, 5, 10]);
    }

    #[test]
    fn push_at_popped_time_pops_after_earlier_inserts() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(1), "a");
        assert_eq!(w.pop().unwrap().1, "a");
        // Cursor is now at 1 s; same-instant pushes are still accepted and
        // come out FIFO, exactly like the heap queue.
        w.push(SimTime::from_secs(1), "b");
        w.push(SimTime::from_secs(1), "c");
        assert_eq!(w.pop().unwrap().1, "b");
        assert_eq!(w.pop().unwrap().1, "c");
    }

    #[test]
    fn clear_empties_the_wheel() {
        let mut w = TimerWheel::new();
        for i in 0..100 {
            w.push(SimTime::from_secs(i), i);
        }
        w.pop();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn spans_every_wheel_level() {
        // One event per level: 1 µs (level 0) through ~17 h (level 5).
        let mut w = TimerWheel::new();
        let ticks: Vec<u64> = (0..LEVELS).map(|l| 3 << (BITS * l as u32)).collect();
        for (i, &t) in ticks.iter().enumerate().rev() {
            w.push(SimTime::from_micros(t), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| w.pop())
            .map(|(at, e)| (at.as_micros(), e))
            .collect();
        let expect: Vec<_> = ticks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn overflow_beyond_the_horizon_still_pops_in_order() {
        let mut w = TimerWheel::new();
        let far = CAPACITY + 123; // > 19 h: lands in overflow
        w.push(SimTime::from_micros(far), "far");
        w.push(SimTime::from_micros(far + 1), "farther");
        w.push(SimTime::from_micros(500), "near");
        assert_eq!(w.pop().unwrap().1, "near");
        assert_eq!(w.pop().unwrap().1, "far");
        assert_eq!(w.pop().unwrap().1, "farther");
        assert!(w.is_empty());
    }

    #[test]
    fn capacity_boundary_is_exact() {
        // The last on-wheel tick is cursor + CAPACITY - 1; one more µs
        // must route to overflow, and both must pop in global order.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_micros(CAPACITY - 1), "last-on-wheel");
        w.push(SimTime::from_micros(CAPACITY), "first-overflow");
        w.push(SimTime::from_micros(CAPACITY + 1), "second-overflow");
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(CAPACITY - 1)));
        assert_eq!(w.pop().unwrap().1, "last-on-wheel");
        assert_eq!(w.pop().unwrap().1, "first-overflow");
        assert_eq!(w.pop().unwrap().1, "second-overflow");
        assert!(w.is_empty());

        // Ties across the boundary: an overflow entry at the same tick as
        // an on-wheel entry pushed later must still come out FIFO.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_micros(2 * CAPACITY), "a"); // overflow now
        w.push(SimTime::from_micros(CAPACITY + 5), "kick"); // also overflow
        assert_eq!(w.pop().unwrap().1, "kick"); // cursor ≈ CAPACITY+5
        w.push(SimTime::from_micros(2 * CAPACITY), "b"); // on-wheel now
        assert_eq!(w.pop().unwrap().1, "a");
        assert_eq!(w.pop().unwrap().1, "b");
    }

    #[test]
    fn rearm_at_full_span_walks_many_horizons() {
        // A timer that re-arms itself CAPACITY-1 µs ahead on every fire —
        // the worst legal stride — must fire reliably as the cursor walks
        // horizon after horizon, interleaved with a near timer that
        // re-arms right next to the cursor.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_micros(CAPACITY - 1), ("far", 0u64));
        w.push(SimTime::from_micros(7), ("near", 0u64));
        let mut fired = Vec::new();
        while let Some((at, (kind, n))) = w.pop() {
            fired.push((at.as_micros(), kind, n));
            if n < 5 {
                let stride = if kind == "far" { CAPACITY - 1 } else { 7 };
                w.push(at + crate::SimDuration::from_micros(stride), (kind, n + 1));
            }
        }
        assert_eq!(fired.len(), 12);
        let mut sorted = fired.clone();
        sorted.sort();
        assert_eq!(fired, sorted, "re-armed timers fired out of order");
        // The 6th far firing sits 6 whole horizons out.
        assert_eq!(fired.last().unwrap().0, 6 * (CAPACITY - 1));
    }

    #[test]
    fn periodic_heartbeat_pattern_near_level_boundaries() {
        // η = 1 s heartbeats with deadlines straddling the level-2/level-3
        // boundary (64^3 µs ≈ 262 ms): the wheel's intended workload.
        let mut w = TimerWheel::new();
        let mut expected = Vec::new();
        for k in 0..200u64 {
            let hb = SimTime::from_secs(k);
            let deadline = hb + crate::SimDuration::from_micros(262_143 + (k % 3));
            w.push(hb, (k, "hb"));
            w.push(deadline, (k, "deadline"));
            expected.push((hb, (k, "hb")));
            expected.push((deadline, (k, "deadline")));
        }
        expected.sort_by_key(|&(at, _)| at);
        let out: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(out, expected);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::EventQueue;
    use proptest::prelude::*;

    /// Drives the wheel and the heap queue through the same schedule of
    /// pushes (possibly at already-reached times) and pops, asserting
    /// identical results at every step — including FIFO order at equal
    /// timestamps. `ops`: Some(t) pushes at time t (scaled to stress several
    /// wheel levels), None pops once.
    fn equivalent_under(ops: Vec<Option<u64>>, scale: u64) {
        let mut wheel = TimerWheel::new();
        let mut heap = EventQueue::new();
        let mut pushed = 0u64;
        let mut floor = 0u64; // last popped time: pushes must not precede it
        for op in ops {
            match op {
                Some(t) => {
                    let at = SimTime::from_micros(floor + t * scale);
                    wheel.push(at, pushed);
                    heap.push(at, pushed);
                    pushed += 1;
                }
                None => {
                    let got = wheel.pop();
                    assert_eq!(got, heap.pop());
                    if let Some((at, _)) = got {
                        floor = at.as_micros();
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let got = wheel.pop();
            assert_eq!(got, heap.pop());
            if got.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Dense schedules: many ties and near-cursor pushes.
        #[test]
        fn wheel_matches_heap_dense(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.7, 0u64..50), 0..300)
        ) {
            equivalent_under(ops, 1);
        }

        /// Sparse schedules: offsets up to ~51 s exercise levels 0–4 and
        /// cascading.
        #[test]
        fn wheel_matches_heap_across_levels(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.7, 0u64..50_000), 0..200)
        ) {
            equivalent_under(ops, 1_031); // prime scale: avoids slot aliasing
        }

        /// Every push lands within ±8 ticks of the level-6 overflow
        /// horizon (cursor + CAPACITY), so the on-wheel/overflow routing
        /// decision and the overflow pull-back path are hit on nearly
        /// every operation.
        #[test]
        fn wheel_matches_heap_at_the_overflow_horizon(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.7, 0u64..16), 0..120)
        ) {
            let straddled = ops
                .into_iter()
                .map(|op| op.map(|t| CAPACITY - 8 + t))
                .collect();
            equivalent_under(straddled, 1);
        }

        /// Full-span re-arms: offsets up to ~2×CAPACITY, so pops routinely
        /// leave the cursor a whole horizon behind the next event and
        /// pushes alternate between the top wheel level and overflow.
        #[test]
        fn wheel_matches_heap_on_full_span_rearm(
            ops in proptest::collection::vec(
                proptest::option::weighted(0.6, 0u64..50), 0..100)
        ) {
            equivalent_under(ops, CAPACITY / 24 + 7); // ≈2×CAPACITY max
        }
    }
}
