//! Deterministic discrete-event simulation substrate.
//!
//! This crate is the simulation kernel underneath the `fd-runtime` layered
//! process runtime (the Rust analog of the Neko framework used in the DSN'05
//! paper). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time, so that
//!   event ordering is exact and runs are bit-for-bit reproducible;
//! * [`EventQueue`] — a stable priority queue of timestamped events (ties are
//!   broken by insertion order, never by heap internals);
//! * [`Simulator`] — a minimal run loop owning a virtual clock and the queue;
//! * [`rng`] — seedable, splittable random-number streams so that every model
//!   (delay, loss, crash injection) draws from an independent deterministic
//!   stream.
//!
//! # Example
//!
//! ```
//! use fd_sim::{SimDuration, Simulator};
//!
//! let mut sim = Simulator::new();
//! let mut fired = Vec::new();
//! sim.schedule_in(SimDuration::from_millis(5), 1u32);
//! sim.schedule_in(SimDuration::from_millis(2), 2u32);
//! while let Some((at, ev)) = sim.next_event() {
//!     fired.push((at.as_millis(), ev));
//! }
//! assert_eq!(fired, vec![(2, 2), (5, 1)]);
//! ```

pub mod queue;
pub mod rng;
pub mod time;
pub mod wheel;

pub use queue::EventQueue;
pub use rng::{DetRng, SeedTree};
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;

/// Which pending-event structure a [`Simulator`] runs on.
///
/// Both provide identical semantics — pops sorted by `(time, insertion
/// order)` — so simulation results are bit-identical either way; only the
/// complexity profile differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Binary-heap [`EventQueue`]: O(log n) push/pop, the conservative
    /// default.
    #[default]
    Heap,
    /// Hierarchical [`TimerWheel`]: O(1) amortized push/fire, built for the
    /// near-periodic deadline workloads of many-source monitors.
    Wheel,
}

/// The backend-dispatched pending-event set of a [`Simulator`].
#[derive(Debug, Clone)]
enum Pending<E> {
    Heap(EventQueue<E>),
    Wheel(TimerWheel<E>),
}

impl<E> Pending<E> {
    fn push(&mut self, at: SimTime, event: E) {
        match self {
            Pending::Heap(q) => q.push(at, event),
            Pending::Wheel(w) => w.push(at, event),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Pending::Heap(q) => q.pop(),
            Pending::Wheel(w) => w.pop(),
        }
    }

    // `&mut` even on the heap path: the wheel may cascade slots to locate
    // the minimum.
    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Pending::Heap(q) => q.peek_time(),
            Pending::Wheel(w) => w.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Pending::Heap(q) => q.len(),
            Pending::Wheel(w) => w.len(),
        }
    }
}

/// A minimal discrete-event run loop: a virtual clock plus a pending-event
/// queue (binary heap or hierarchical timer wheel, see [`QueueBackend`]).
///
/// Higher layers (the `fd-runtime` engine) drive this by scheduling events
/// and repeatedly calling [`Simulator::next_event`], which advances the clock
/// to the timestamp of the popped event.
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    queue: Pending<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`],
    /// running on the default heap backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Heap)
    }

    /// Creates an empty simulator on the chosen queue backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self {
            queue: match backend {
                QueueBackend::Heap => Pending::Heap(EventQueue::new()),
                QueueBackend::Wheel => Pending::Wheel(TimerWheel::new()),
            },
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates an empty simulator on the chosen backend with space reserved
    /// for `capacity` pending events (engines pre-size this from their
    /// configured source count rather than growing through the hot path).
    pub fn with_backend_and_capacity(backend: QueueBackend, capacity: usize) -> Self {
        Self {
            queue: match backend {
                QueueBackend::Heap => Pending::Heap(EventQueue::with_capacity(capacity)),
                QueueBackend::Wheel => Pending::Wheel(TimerWheel::with_capacity(capacity)),
            },
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current clock), which would
    /// break the causality of the simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after the given delay from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the next event, advancing the virtual clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty (simulation has quiesced).
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "queue returned an event from the past");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Pops the next event only if it is scheduled at or before `horizon`.
    ///
    /// The clock never advances past `horizon`; if the next event lies beyond
    /// it, the clock is moved to `horizon` and `None` is returned. This is how
    /// bounded experiment runs terminate.
    pub fn next_event_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(at) if at <= horizon => self.next_event(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_millis(30), "c");
        sim.schedule_at(SimTime::from_millis(10), "a");
        sim.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn equal_timestamps_preserve_insertion_order() {
        let mut sim = Simulator::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(2), ());
        let (at, _) = sim.next_event().unwrap();
        assert_eq!(at, SimTime::from_secs(2));
        assert_eq!(sim.now(), at);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn horizon_bounds_the_clock() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        let horizon = SimTime::from_secs(3);
        assert!(sim.next_event_before(horizon).is_none());
        assert_eq!(sim.now(), horizon);
        assert_eq!(sim.pending(), 1);
        // The event is still deliverable with a later horizon.
        assert!(sim.next_event_before(SimTime::from_secs(20)).is_some());
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(3), ());
        assert!(sim.next_event_before(SimTime::from_secs(3)).is_some());
    }

    #[test]
    fn next_event_before_never_moves_clock_backwards() {
        let mut sim = Simulator::<()>::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.next_event();
        assert!(sim.next_event_before(SimTime::from_secs(1)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    /// The same schedule driven through both backends produces identical
    /// event sequences, clocks and horizon behaviour.
    fn exercise(backend: QueueBackend) -> Vec<(u64, u32)> {
        let mut sim = Simulator::with_backend(backend);
        let mut out = Vec::new();
        for i in 0..40u32 {
            sim.schedule_at(SimTime::from_millis(u64::from((i * 7) % 13)), i);
        }
        while let Some((at, e)) = sim.next_event_before(SimTime::from_millis(6)) {
            out.push((at.as_micros(), e));
            // Reschedule some events past the horizon.
            if e % 5 == 0 {
                sim.schedule_in(SimDuration::from_millis(10), e + 1000);
            }
        }
        while let Some((at, e)) = sim.next_event() {
            out.push((at.as_micros(), e));
        }
        out.push((sim.now().as_micros(), sim.processed() as u32));
        out
    }

    #[test]
    fn wheel_backend_is_bit_identical_to_heap_backend() {
        assert_eq!(exercise(QueueBackend::Heap), exercise(QueueBackend::Wheel));
    }

    #[test]
    fn with_capacity_constructors_behave_identically() {
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let mut sim = Simulator::with_backend_and_capacity(backend, 1024);
            sim.schedule_at(SimTime::from_secs(1), "x");
            assert_eq!(sim.pending(), 1);
            assert_eq!(sim.next_event(), Some((SimTime::from_secs(1), "x")));
        }
    }
}
