//! Deterministic discrete-event simulation substrate.
//!
//! This crate is the simulation kernel underneath the `fd-runtime` layered
//! process runtime (the Rust analog of the Neko framework used in the DSN'05
//! paper). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time, so that
//!   event ordering is exact and runs are bit-for-bit reproducible;
//! * [`EventQueue`] — a stable priority queue of timestamped events (ties are
//!   broken by insertion order, never by heap internals);
//! * [`Simulator`] — a minimal run loop owning a virtual clock and the queue;
//! * [`rng`] — seedable, splittable random-number streams so that every model
//!   (delay, loss, crash injection) draws from an independent deterministic
//!   stream.
//!
//! # Example
//!
//! ```
//! use fd_sim::{SimDuration, Simulator};
//!
//! let mut sim = Simulator::new();
//! let mut fired = Vec::new();
//! sim.schedule_in(SimDuration::from_millis(5), 1u32);
//! sim.schedule_in(SimDuration::from_millis(2), 2u32);
//! while let Some((at, ev)) = sim.next_event() {
//!     fired.push((at.as_millis(), ev));
//! }
//! assert_eq!(fired, vec![(2, 2), (5, 1)]);
//! ```

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::{DetRng, SeedTree};
pub use time::{SimDuration, SimTime};

/// A minimal discrete-event run loop: a virtual clock plus an [`EventQueue`].
///
/// Higher layers (the `fd-runtime` engine) drive this by scheduling events
/// and repeatedly calling [`Simulator::next_event`], which advances the clock
/// to the timestamp of the popped event.
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current clock), which would
    /// break the causality of the simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after the given delay from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the next event, advancing the virtual clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty (simulation has quiesced).
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "queue returned an event from the past");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Pops the next event only if it is scheduled at or before `horizon`.
    ///
    /// The clock never advances past `horizon`; if the next event lies beyond
    /// it, the clock is moved to `horizon` and `None` is returned. This is how
    /// bounded experiment runs terminate.
    pub fn next_event_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(at) if at <= horizon => self.next_event(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_millis(30), "c");
        sim.schedule_at(SimTime::from_millis(10), "a");
        sim.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn equal_timestamps_preserve_insertion_order() {
        let mut sim = Simulator::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(2), ());
        let (at, _) = sim.next_event().unwrap();
        assert_eq!(at, SimTime::from_secs(2));
        assert_eq!(sim.now(), at);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn horizon_bounds_the_clock() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10), ());
        let horizon = SimTime::from_secs(3);
        assert!(sim.next_event_before(horizon).is_none());
        assert_eq!(sim.now(), horizon);
        assert_eq!(sim.pending(), 1);
        // The event is still deliverable with a later horizon.
        assert!(sim.next_event_before(SimTime::from_secs(20)).is_some());
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(3), ());
        assert!(sim.next_event_before(SimTime::from_secs(3)).is_some());
    }

    #[test]
    fn next_event_before_never_moves_clock_backwards() {
        let mut sim = Simulator::<()>::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.next_event();
        assert!(sim.next_event_before(SimTime::from_secs(1)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }
}
