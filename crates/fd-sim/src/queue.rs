//! A stable, timestamped priority queue of simulation events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One pending entry: ordering is (time, insertion sequence), so events at
/// equal times pop in insertion order regardless of heap internals.
///
/// The sequence is 32-bit on purpose: a million-source monitor keeps two
/// pending timers per source, so entry size is the dominant memory term.
/// Pushing more than `u32::MAX` events through one queue panics (see
/// [`EventQueue::push`]) rather than silently break FIFO ties.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs with stable FIFO ordering among
/// events carrying the same timestamp.
///
/// ```
/// use fd_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(7), "late");
/// q.push(SimTime::from_millis(3), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(3), "early")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u32,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Inserts `event` with timestamp `at`.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` lifetime pushes — far beyond any simulation
    /// this crate drives (the detector state machines already cap runs at a
    /// ~71.6-virtual-minute `u32` microsecond horizon).
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq = seq.checked_add(1).expect("event queue seq overflow");
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(3), 3);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "first");
        q.push(t, "second");
        q.push(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(1), 1);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 5, 10]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the insertion order, pops are sorted by (time, insertion
        /// index among equal times).
        #[test]
        fn pops_are_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((at, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(at > lt || (at == lt && idx > lidx));
                }
                prop_assert_eq!(SimTime::from_micros(times[idx]), at);
                last = Some((at, idx));
            }
        }

        /// len() tracks pushes and pops exactly.
        #[test]
        fn len_is_consistent(n in 0usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime::from_micros(i as u64), i);
            }
            prop_assert_eq!(q.len(), n);
            for removed in 1..=n {
                q.pop();
                prop_assert_eq!(q.len(), n - removed);
            }
        }
    }
}
