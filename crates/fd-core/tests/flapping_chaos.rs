//! Flapping-workload chaos test: a source that repeatedly crashes and
//! recovers, with a jittery post-recovery transient, must not be wrongly
//! suspected while it is up.
//!
//! The two-phase φ-accrual predictor cold-restarts its window on each flap
//! (the pre-crash delay distribution is stale) and serves a Weibull-gated
//! start phase whose dispersion is floored at μ, so the recovery transient
//! is absorbed. The stable-phase-only variant keeps forecasting from the
//! stale pre-crash window — tight timeouts that the transient blows
//! through, one wrongful suspicion spike per flap.
//!
//! This test is also the designated killer of the `phi` mutant in
//! `scripts/check-mutants.sh` (start-phase gating disabled): without the
//! start phase the cold-restarted window has σ ≈ 0 and the timeout
//! collapses onto the first post-recovery delay, so the transient's second
//! beat becomes a wrongful suspicion and the zero-mistake assertion fails.

use fd_core::bank::DetectorBank;
use fd_core::{Combination, FdTransition, MarginKind, PredictorKind};
use fd_sim::{SimDuration, SimTime};

/// The flapping schedule: `None` = heartbeat suppressed (source down),
/// `Some(delay_ms)` = delivered that long after its send time.
fn flapping_schedule() -> Vec<Option<u64>> {
    let mut schedule = Vec::new();
    // Warm-up: 20 stable beats around 150 ms with mild jitter.
    for i in 0..20u64 {
        schedule.push(Some(140 + (i * 7) % 20));
    }
    for _ in 0..3 {
        // Down window: 5 beats lost — past PHI_FLAP_GAP_MIN, so the
        // resume is a flap.
        for _ in 0..5 {
            schedule.push(None);
        }
        // Recovery transient: the first beat lands near the old baseline,
        // then delays oscillate hard before settling.
        for &d in &[150, 450, 380, 300, 240, 200, 170, 160] {
            schedule.push(Some(d));
        }
        // Stable stretch between flaps.
        for i in 0..12u64 {
            schedule.push(Some(145 + (i * 11) % 18));
        }
    }
    schedule
}

/// Drives both φ lifecycles through the schedule and counts, per combo,
/// the wrongful `StartSuspect` edges — those fired at a check instant
/// immediately before a delivered heartbeat, i.e. premature timeouts on an
/// up source (the paper's "mistakes").
fn run_flapping(combos: &[Combination]) -> (Vec<u64>, Vec<u64>) {
    let eta = SimDuration::from_millis(1_000);
    let mut bank = DetectorBank::new(combos, eta);
    let schedule = flapping_schedule();
    let mut wrongful = vec![0u64; combos.len()];
    let mut readmissions = vec![0u64; combos.len()];
    let mut was_down = false;

    for (i, cycle) in schedule.iter().enumerate() {
        let seq = i as u64;
        let sigma = SimTime::ZERO + eta * seq;
        match cycle {
            Some(delay_ms) => {
                let arrival = sigma + SimDuration::from_millis(*delay_ms);
                // Check-then-observe: any StartSuspect fired here expires
                // strictly before the heartbeat that is about to arrive.
                for (idx, w) in wrongful.iter_mut().enumerate() {
                    if bank.check_one(idx, arrival) == Some(FdTransition::StartSuspect) {
                        *w += 1;
                    }
                }
                bank.observe_heartbeat(seq, arrival);
                if was_down {
                    for t in bank.transitions() {
                        assert_eq!(t.transition, FdTransition::EndSuspect);
                        readmissions[t.combo] += 1;
                    }
                }
                was_down = false;
            }
            None => {
                // The source is down; suspicions fired during the silence
                // are correct, not mistakes.
                let end = sigma + eta;
                for idx in 0..combos.len() {
                    bank.check_one(idx, end);
                }
                was_down = true;
            }
        }
    }
    (wrongful, readmissions)
}

#[test]
fn two_phase_phi_absorbs_flapping_without_mistakes() {
    let combos = vec![
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: true,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: false,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
    ];
    let (wrongful, readmissions) = run_flapping(&combos);
    let (two_phase, stable_only) = (wrongful[0], wrongful[1]);

    // The stable-phase-only variant forecasts the recovery transient from
    // the stale pre-crash window: at least one wrongful suspicion per
    // flap cycle.
    assert!(
        stable_only >= 3,
        "stable-only variant should spike on every flap, saw {stable_only}"
    );
    // The cold-restarted, σ-floored start phase absorbs the transient
    // entirely.
    assert_eq!(
        two_phase, 0,
        "two-phase lifecycle wrongly suspected an up source {two_phase} times"
    );
    assert!(two_phase < stable_only);

    // Both variants re-admit the recovered source on its first heartbeat
    // after each down window (they suspected it while it was down, and
    // the recovery beat ends the suspicion promptly).
    assert_eq!(readmissions[0], 3, "two-phase re-admissions");
    assert_eq!(readmissions[1], 3, "stable-only re-admissions");
}

/// The same flapping schedule through the `SourceBank` column path: the
/// two-phase column must reproduce the scalar result exactly (zero
/// wrongful suspicions) with the flap gaps carried through the batch API.
#[test]
fn source_bank_column_path_matches_flapping_result() {
    let combos = vec![
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: true,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: false,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
    ];
    let eta = SimDuration::from_millis(1_000);
    let mut scalar = DetectorBank::new(&combos, eta);
    let mut bank = fd_core::SourceBank::new(&combos, eta, 1);
    for (i, cycle) in flapping_schedule().iter().enumerate() {
        let seq = i as u64;
        let sigma = SimTime::ZERO + eta * seq;
        let now = match cycle {
            Some(delay_ms) => sigma + SimDuration::from_millis(*delay_ms),
            None => sigma + eta,
        };
        let fired: Vec<u32> = bank
            .check_source_at(0, now)
            .iter()
            .map(|t| t.combo)
            .collect();
        let scalar_fired: Vec<u32> = (0..combos.len())
            .filter(|&idx| scalar.check_one(idx, now) == Some(FdTransition::StartSuspect))
            .map(|idx| idx as u32)
            .collect();
        assert_eq!(scalar_fired, fired, "check diverged at step {i}");
        if cycle.is_some() {
            scalar.observe_heartbeat(seq, now);
            bank.observe_heartbeat(0, seq, now);
        }
        for idx in 0..combos.len() {
            assert_eq!(
                scalar.predicted_delay_ms(idx).to_bits(),
                bank.predicted_delay_ms(0, idx).to_bits(),
                "forecast diverged at step {i} combo {idx}"
            );
            assert_eq!(scalar.is_suspecting(idx), bank.is_suspecting(0, idx));
            assert_eq!(scalar.next_deadline(idx), bank.next_deadline(0, idx));
        }
    }
}
