//! Differential property test: the shared-computation [`DetectorBank`] and
//! the boxed single-detector path must produce **bit-identical**
//! suspect/trust behaviour on identical random heartbeat/loss/crash
//! schedules — the refactor is behaviour-preserving by construction.

use fd_core::bank::DetectorBank;
use fd_core::{
    all_combinations, Combination, FailureDetector, FdTransition, MarginKind, PredictorKind,
};
use fd_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// The combination set under test: the paper's full 30-grid, every
/// registry family not already in it (`PredictorKind::all_for_test`
/// brings in φ-accrual in both lifecycles, the adaptive μ+Kσ window and
/// the online model) under two adaptive margins each, plus a short-refit
/// ARIMA (so the fitted-model path is exercised within short schedules)
/// and an `SM_RTO` extension combination. The schedules' crash windows
/// are longer than `PHI_FLAP_GAP_MIN`, so the φ flap lifecycle crosses
/// the differential too.
fn combos_under_test() -> Vec<Combination> {
    let mut combos = all_combinations();
    for kind in PredictorKind::all_for_test() {
        if combos.iter().any(|c| c.predictor == kind) {
            continue;
        }
        combos.push(Combination::new(kind, MarginKind::Jac { phi: 1.0 }));
        combos.push(Combination::new(kind, MarginKind::Ci { gamma: 2.0 }));
    }
    combos.push(Combination::new(
        PredictorKind::Arima {
            p: 2,
            d: 1,
            q: 1,
            refit_every: 25,
        },
        MarginKind::Ci { gamma: 2.0 },
    ));
    combos.push(Combination::new(
        PredictorKind::Last,
        MarginKind::Rto { k: 4.0 },
    ));
    combos
}

/// One heartbeat cycle of the schedule: `None` = the heartbeat never
/// arrives (lost in the network or swallowed by a crash), `Some(delay_ms)`
/// = it arrives that long after its send time.
type Schedule = Vec<Option<u32>>;

/// A random schedule: i.i.d. losses plus one contiguous crash window whose
/// heartbeats are all suppressed, as SimCrash would.
fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        proptest::collection::vec(
            prop_oneof![
                8 => (0u32..2_500).prop_map(Some),
                1 => Just(None),
            ],
            40..80,
        ),
        0usize..60,
        0usize..12,
    )
        .prop_map(|(mut cycles, crash_start, crash_len)| {
            let start = crash_start.min(cycles.len());
            let end = (crash_start + crash_len).min(cycles.len());
            for c in cycles.iter_mut().take(end).skip(start) {
                *c = None;
            }
            cycles
        })
}

/// Drives both implementations through one schedule, asserting identical
/// transitions, deadlines and suspicion flags at every step.
fn run_differential(schedule: &Schedule, check_jitter_ms: u32) -> Result<(), TestCaseError> {
    let eta = SimDuration::from_millis(1_000);
    let combos = combos_under_test();
    let mut bank = DetectorBank::new(&combos, eta);
    let mut boxed: Vec<FailureDetector> = combos.iter().map(|c| c.build(eta)).collect();

    for (i, cycle) in schedule.iter().enumerate() {
        let seq = i as u64;
        let sigma = SimTime::ZERO + eta * seq;

        // The monitor's clock advances to some instant within this cycle
        // and every expired deadline fires (the timer path).
        let check_now = sigma + SimDuration::from_millis(u64::from(check_jitter_ms));
        for (idx, fd) in boxed.iter_mut().enumerate() {
            let a = fd.check(check_now);
            let b = bank.check_one(idx, check_now);
            prop_assert_eq!(a, b, "check mismatch: step {}, combo {}", i, idx);
        }

        // Then the heartbeat arrives — or never does.
        if let Some(delay_ms) = cycle {
            let arrival = sigma + SimDuration::from_millis(u64::from(*delay_ms));
            // Deadlines that expired before the arrival fire first.
            for (idx, fd) in boxed.iter_mut().enumerate() {
                let a = fd.check(arrival);
                let b = bank.check_one(idx, arrival);
                prop_assert_eq!(
                    a,
                    b,
                    "pre-arrival check mismatch: step {}, combo {}",
                    i,
                    idx
                );
            }
            let boxed_ends: Vec<usize> = boxed
                .iter_mut()
                .enumerate()
                .filter_map(|(idx, fd)| {
                    fd.on_heartbeat(seq, arrival).map(|t| {
                        assert_eq!(t, FdTransition::EndSuspect);
                        idx
                    })
                })
                .collect();
            let fresh = bank.observe_heartbeat(seq, arrival);
            prop_assert!(fresh, "in-order heartbeats are always fresh");
            let bank_ends: Vec<usize> = bank.transitions().iter().map(|t| t.combo).collect();
            prop_assert_eq!(boxed_ends, bank_ends, "EndSuspect mismatch at step {}", i);
        }

        // Full state equality after every cycle: deadlines are integer
        // microseconds, so equality here is bit-identity of the whole
        // pred + margin floating-point pipeline.
        for (idx, fd) in boxed.iter().enumerate() {
            prop_assert_eq!(
                fd.next_deadline(),
                bank.next_deadline(idx),
                "deadline mismatch: step {}, combo {} ({})",
                i,
                idx,
                fd.name()
            );
            prop_assert_eq!(
                fd.is_suspecting(),
                bank.is_suspecting(idx),
                "suspicion mismatch: step {}, combo {}",
                i,
                idx
            );
        }
        prop_assert_eq!(boxed[0].heartbeats(), bank.heartbeats());
        prop_assert_eq!(boxed[0].stale_heartbeats(), bank.stale_heartbeats());
    }
    Ok(())
}

/// Drives a bank through `schedule[..split]`, round-trips it through
/// `snapshot() → to_bytes() → from_bytes() → restore()` into a freshly built
/// bank, then runs both through the rest of the schedule asserting
/// bit-identical behaviour at every step — the warm-restart guarantee the
/// supervisor relies on. Every third delivered heartbeat is re-observed one
/// cycle later, so the stale/reordering path crosses the snapshot too.
fn run_snapshot_differential(
    schedule: &Schedule,
    split: usize,
    check_jitter_ms: u32,
) -> Result<(), TestCaseError> {
    let eta = SimDuration::from_millis(1_000);
    let combos = combos_under_test();
    let mut original = DetectorBank::new(&combos, eta);
    let split = split.min(schedule.len());

    let mut feed = |bank: &mut DetectorBank, i: usize, cycle: &Option<u32>| {
        let seq = i as u64;
        let sigma = SimTime::ZERO + eta * seq;
        let check_now = sigma + SimDuration::from_millis(u64::from(check_jitter_ms));
        let mut trace: Vec<(usize, Option<FdTransition>)> = Vec::new();
        for idx in 0..bank.len() {
            trace.push((idx, bank.check_one(idx, check_now)));
        }
        if let Some(delay_ms) = cycle {
            let arrival = sigma + SimDuration::from_millis(u64::from(*delay_ms));
            bank.observe_heartbeat(seq, arrival);
            // A duplicate of an earlier heartbeat arrives out of order.
            if seq >= 3 && seq.is_multiple_of(3) {
                bank.observe_heartbeat(seq - 3, arrival + SimDuration::from_millis(1));
            }
        }
        trace
    };

    for (i, cycle) in schedule.iter().enumerate().take(split) {
        feed(&mut original, i, cycle);
    }

    // The warm-restart round trip, through the full wire format.
    let bytes = original.snapshot().to_bytes();
    let snap = fd_core::snapshot::BankSnapshot::from_bytes(&bytes)
        .expect("snapshot must round-trip through bytes");
    let mut restored = DetectorBank::new(&combos, eta);
    restored
        .restore(&snap)
        .expect("snapshot must restore into a matching bank");

    for (i, cycle) in schedule.iter().enumerate().skip(split) {
        let a = feed(&mut original, i, cycle);
        let b = feed(&mut restored, i, cycle);
        prop_assert_eq!(a, b, "transition divergence at step {}", i);
        for idx in 0..original.len() {
            prop_assert_eq!(
                original.next_deadline(idx),
                restored.next_deadline(idx),
                "deadline divergence: step {}, combo {}",
                i,
                idx
            );
            prop_assert_eq!(
                original.is_suspecting(idx),
                restored.is_suspecting(idx),
                "suspicion divergence: step {}, combo {}",
                i,
                idx
            );
        }
        prop_assert_eq!(original.heartbeats(), restored.heartbeats());
        prop_assert_eq!(original.stale_heartbeats(), restored.stale_heartbeats());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: identical suspect/trust transition sequences
    /// for all combinations, under random heartbeat delays, losses and a
    /// crash window.
    #[test]
    fn bank_matches_boxed_detectors(
        schedule in schedule_strategy(),
        jitter in 0u32..1_000,
    ) {
        run_differential(&schedule, jitter)?;
    }

    /// The warm-restart invariant: a bank restored from a byte-serialised
    /// snapshot continues bit-identically to the bank that never stopped,
    /// wherever the snapshot is taken in a random lossy/reordered schedule.
    #[test]
    fn snapshot_roundtrip_is_bit_identical(
        schedule in schedule_strategy(),
        split in 0usize..80,
        jitter in 0u32..1_000,
    ) {
        run_snapshot_differential(&schedule, split, jitter)?;
    }
}

/// A deterministic smoke case (fast path for `--test bank_differential`):
/// heavy loss plus a crash window, long enough for the short-refit ARIMA to
/// fit and refit.
#[test]
fn bank_matches_boxed_on_canned_schedule() {
    let mut schedule: Schedule = (0..120)
        .map(|i| match i % 9 {
            3 => None,
            _ => Some(150 + ((i * 97) % 700) as u32),
        })
        .collect();
    for c in schedule.iter_mut().take(70).skip(55) {
        *c = None; // the crash window
    }
    run_differential(&schedule, 500).expect("differential run");
}

/// Stale (reordered) heartbeats update predictors without touching
/// freshness — on both paths identically.
#[test]
fn bank_matches_boxed_under_reordering() {
    let eta = SimDuration::from_millis(1_000);
    let combos = combos_under_test();
    let mut bank = DetectorBank::new(&combos, eta);
    let mut boxed: Vec<FailureDetector> = combos.iter().map(|c| c.build(eta)).collect();
    // Sequence order 0, 3, 1, 2, 4: 1 and 2 arrive late (stale).
    let arrivals: [(u64, u64); 5] = [(0, 210), (3, 3_350), (1, 3_400), (2, 3_450), (4, 4_200)];
    for &(seq, at_ms) in &arrivals {
        let at = SimTime::from_millis(at_ms);
        for (idx, fd) in boxed.iter_mut().enumerate() {
            assert_eq!(fd.check(at), bank.check_one(idx, at));
        }
        for fd in boxed.iter_mut() {
            fd.on_heartbeat(seq, at);
        }
        let fresh = bank.observe_heartbeat(seq, at);
        assert_eq!(fresh, matches!(seq, 0 | 3 | 4), "seq {seq}");
        assert_eq!(boxed[0].stale_heartbeats(), bank.stale_heartbeats());
        for (idx, fd) in boxed.iter().enumerate() {
            assert_eq!(fd.next_deadline(), bank.next_deadline(idx));
            assert_eq!(fd.is_suspecting(), bank.is_suspecting(idx));
        }
    }
    assert_eq!(bank.stale_heartbeats(), 2);
}
