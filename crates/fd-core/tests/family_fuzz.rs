//! Structure-aware fuzz over the new detector families: random
//! delay/gap sequences — including hostile floats — drive the φ-accrual
//! lifecycle, the adaptive window, the online model and the Impact-FD
//! weight plane, asserting the documented totality invariants (forecasts
//! stay finite and non-negative, state round-trips, restore never
//! panics).

use fd_core::combinations::extended_combinations;
use fd_core::{AdaptiveWindow, MlPredictor, PhiAccrual, Predictor, SourceBank};
use fd_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// One fuzz step: an observed delay (possibly hostile) and the sequence
/// gap carried with it.
type Step = (f64, u64);

/// Delays drawn from realistic values plus the hostile-float corners the
/// NaN/∞ audit documents.
fn delay_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        12 => 0.0f64..5_000.0,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(-250.0),
        1 => Just(1.0e300),
        1 => Just(f64::MIN_POSITIVE),
    ]
}

/// Gaps weighted towards 0 (in-order traffic) with enough mass past the
/// flap trigger to exercise the φ lifecycle.
fn gap_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        8 => Just(0u64),
        2 => 1u64..3,
        3 => 3u64..40,
    ]
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((delay_strategy(), gap_strategy()), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// φ lifecycle invariants: under any delay/gap sequence the forecast
    /// stays finite and non-negative, flaps only accumulate, the start
    /// phase never exceeds the maximally-flappy gate length, and the
    /// full state survives a raw-parts round trip bit-identically.
    #[test]
    fn phi_lifecycle_is_total(steps in steps_strategy()) {
        // ⌈λ·(−ln q)^(1/k)⌉ at the flappiest shape k = 0.5.
        let max_start = (4.0f64 * (-(0.1f64.ln())).powf(2.0)).ceil() as u32;
        let mut p = PhiAccrual::new(8, 1.0, true);
        let mut last_flaps = 0u64;
        for (i, &(delay, gap)) in steps.iter().enumerate() {
            p.observe_gap(delay, gap);
            let f = p.predict();
            prop_assert!(f.is_finite() && f >= 0.0, "step {}: forecast {}", i, f);
            prop_assert!(p.flaps() >= last_flaps);
            prop_assert!(p.start_left() <= max_start, "start_left {}", p.start_left());
            last_flaps = p.flaps();
        }
        prop_assert_eq!(p.observations(), steps.len() as u64);
        let (ring, pos, len, sum, sumsq, start_left, flaps, mean_up, up_len, n) = p.raw_parts();
        let rebuilt = PhiAccrual::from_raw_parts(
            8, 1.0, true, ring, pos, len, sum, sumsq, start_left, flaps, mean_up, up_len, n,
        ).expect("observable state must round-trip");
        prop_assert_eq!(rebuilt.predict().to_bits(), p.predict().to_bits());
    }

    /// Adaptive-window and ML forecasts stay finite and non-negative
    /// under hostile floats, and their raw-parts round-trip exactly.
    #[test]
    fn adaptive_and_ml_are_total(steps in steps_strategy()) {
        let mut adw = AdaptiveWindow::new(8, 2.0);
        let mut ml = MlPredictor::new(4, 0.5);
        for (i, &(delay, _)) in steps.iter().enumerate() {
            adw.observe(delay);
            ml.observe(delay);
            let fa = adw.predict();
            let fm = ml.predict();
            prop_assert!(fa.is_finite() && fa >= 0.0, "step {}: ADWIN {}", i, fa);
            prop_assert!(fm.is_finite() && (0.0..=4.0e6).contains(&fm), "step {}: ML {}", i, fm);
        }
        let (ring, sum, sumsq, n) = adw.raw_parts();
        let adw2 = AdaptiveWindow::from_raw_parts(8, 2.0, ring, sum, sumsq, n)
            .expect("adaptive state must round-trip");
        prop_assert_eq!(adw2.predict().to_bits(), adw.predict().to_bits());
        let (w, hist, n) = ml.raw_parts();
        let ml2 = MlPredictor::from_raw_parts(4, 0.5, w, hist, n)
            .expect("ml state must round-trip");
        prop_assert_eq!(ml2.predict().to_bits(), ml.predict().to_bits());
    }

    /// Impact-weight edge fuzz: arbitrary weight vectors (hostile floats
    /// included) sanitize to a finite total, and the trust value of any
    /// combination stays finite and inside `[0, total]` however the
    /// suspicion bitmap is arranged.
    #[test]
    fn impact_plane_is_total(
        raw in proptest::collection::vec(delay_strategy(), 5),
        lost in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let eta = SimDuration::from_secs(1);
        let mut bank = SourceBank::new(&extended_combinations(), eta, 5);
        bank.set_impact_weights(&raw);
        let total = bank.impact_total();
        prop_assert!(total.is_finite() && total >= 0.0);
        // Heartbeat everyone, then silence the `lost` subset long enough
        // to suspect it.
        for s in 0..5u32 {
            bank.observe_heartbeat(s, 0, SimTime::from_millis(200));
        }
        for s in 0..5u32 {
            if !lost[s as usize] {
                bank.observe_heartbeat(s, 1, SimTime::from_millis(1_200));
            }
        }
        bank.check_all_at(SimTime::from_secs(90));
        for combo in 0..bank.len() {
            let trust = bank.impact_trust(combo);
            prop_assert!(trust.is_finite(), "combo {} trust {}", combo, trust);
            prop_assert!(trust >= -1.0e-9 && trust <= total + 1.0e-9);
            prop_assert_eq!(bank.impact_accepts(combo, 0.0), trust >= 0.0);
        }
    }

    /// FDSB v2 restore is total: flipping any byte of an extended-grid
    /// image (φ mid-lifecycle, ML arenas, impact weights) either restores
    /// cleanly or errors — never panics, never yields non-finite trust.
    #[test]
    fn extended_snapshot_restore_is_total(
        flip_at in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let eta = SimDuration::from_secs(1);
        let combos = extended_combinations();
        let mut bank = SourceBank::new(&combos, eta, 3);
        bank.set_impact_weights(&[1.5, 2.5, 3.0]);
        for seq in 0..12u64 {
            for s in 0..3u32 {
                // Source 1's silence trips a flap mid-image.
                if s == 1 && (4..8).contains(&seq) {
                    continue;
                }
                let at = SimTime::ZERO + eta * seq + SimDuration::from_millis(150 + u64::from(s));
                bank.observe_heartbeat(s, seq, at);
            }
        }
        let mut bytes = bank.snapshot_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= xor;
        let mut target = SourceBank::new(&combos, eta, 3);
        if target.restore_bytes(&bytes).is_ok() {
            for combo in 0..target.len() {
                prop_assert!(target.impact_trust(combo).is_finite());
            }
        }
    }
}
