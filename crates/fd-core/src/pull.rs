//! Pull-style failure detection (Section 2.2 of the paper).
//!
//! In pull style the *monitor* interrogates the monitored process ("are you
//! alive?") and detects a crash when the response does not arrive within the
//! time-out. The paper notes that for continuous monitoring "push-style
//! permits to obtain the same quality of detection with half messages
//! exchanged"; this module provides the pull detector so that claim can be
//! demonstrated experimentally (see the `push_vs_pull` integration test and
//! the `generalisation` experiments).
//!
//! The same predictor/safety-margin modularity applies, but on **round-trip
//! times**: the time-out for request `k` is `rtt_pred_k + sm_k`.

use fd_sim::{SimDuration, SimTime};

use crate::detector::FdTransition;
use crate::margin::SafetyMargin;
use crate::predictor::Predictor;

/// A pull-style crash failure detector: request/response with an adaptive
/// round-trip time-out.
pub struct PullFailureDetector {
    name: String,
    predictor: Box<dyn Predictor>,
    margin: Box<dyn SafetyMargin>,
    period: SimDuration,
    next_seq: u64,
    outstanding: Option<Outstanding>,
    suspecting: bool,
    requests: u64,
    responses: u64,
    stale_responses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    seq: u64,
    sent_at: SimTime,
    deadline: SimTime,
}

impl std::fmt::Debug for PullFailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PullFailureDetector")
            .field("name", &self.name)
            .field("period", &self.period)
            .field("outstanding", &self.outstanding)
            .field("suspecting", &self.suspecting)
            .field("requests", &self.requests)
            .field("responses", &self.responses)
            .finish()
    }
}

impl PullFailureDetector {
    /// Creates a pull detector interrogating every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(
        name: impl Into<String>,
        predictor: impl Predictor + 'static,
        margin: impl SafetyMargin + 'static,
        period: SimDuration,
    ) -> Self {
        assert!(!period.is_zero(), "interrogation period must be positive");
        Self {
            name: name.into(),
            predictor: Box::new(predictor),
            margin: Box::new(margin),
            period,
            next_seq: 0,
            outstanding: None,
            suspecting: false,
            requests: 0,
            responses: 0,
            stale_responses: 0,
        }
    }

    /// The detector's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interrogation period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// `true` while the detector suspects the monitored process.
    pub fn is_suspecting(&self) -> bool {
        self.suspecting
    }

    /// Requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Responses consumed so far (matching the outstanding request).
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Responses that arrived after their time-out or out of order.
    pub fn stale_responses(&self) -> u64 {
        self.stale_responses
    }

    /// The time-out deadline of the outstanding request, if any.
    pub fn deadline(&self) -> Option<SimTime> {
        self.outstanding.map(|o| o.deadline)
    }

    /// Issues the next interrogation request at local time `now`; returns
    /// its sequence number. The caller sends the request and schedules a
    /// [`PullFailureDetector::check`] at [`PullFailureDetector::deadline`].
    ///
    /// If a request is still outstanding (no response, no expiry yet), it is
    /// superseded: pull monitoring only ever waits for the newest request.
    pub fn issue_request(&mut self, now: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.requests += 1;
        let timeout_ms = (self.predictor.predict() + self.margin.margin()).max(0.0);
        // Cold start: without any RTT observation the time-out is one period.
        let timeout = if self.predictor.observations() == 0 {
            self.period
        } else {
            SimDuration::from_millis_f64(timeout_ms)
        };
        self.outstanding = Some(Outstanding {
            seq,
            sent_at: now,
            deadline: now + timeout,
        });
        seq
    }

    /// Consumes the response to request `seq`, observed at `now`.
    ///
    /// Returns `Some(FdTransition::EndSuspect)` if it corrected an ongoing
    /// suspicion.
    pub fn on_response(&mut self, seq: u64, now: SimTime) -> Option<FdTransition> {
        let Some(out) = self.outstanding else {
            self.stale_responses += 1;
            return None;
        };
        if out.seq != seq {
            self.stale_responses += 1;
            return None;
        }
        self.responses += 1;
        let rtt_ms = now.duration_since(out.sent_at).as_millis_f64();
        let err = rtt_ms - self.predictor.predict();
        self.predictor.observe(rtt_ms);
        self.margin.update(rtt_ms, err);
        self.outstanding = None;
        if self.suspecting {
            self.suspecting = false;
            Some(FdTransition::EndSuspect)
        } else {
            None
        }
    }

    /// Evaluates the time-out at `now`.
    pub fn check(&mut self, now: SimTime) -> Option<FdTransition> {
        if self.suspecting {
            return None;
        }
        match self.outstanding {
            Some(out) if now >= out.deadline => {
                self.suspecting = true;
                Some(FdTransition::StartSuspect)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::margin::ConstantMargin;
    use crate::predictor::Last;

    fn detector() -> PullFailureDetector {
        PullFailureDetector::new(
            "pull",
            Last::new(),
            ConstantMargin::new(100.0),
            SimDuration::from_secs(1),
        )
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn cold_start_timeout_is_one_period() {
        let mut fd = detector();
        let seq = fd.issue_request(SimTime::ZERO);
        assert_eq!(seq, 0);
        assert_eq!(fd.deadline(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn response_observes_rtt_and_sets_next_timeout() {
        let mut fd = detector();
        let seq = fd.issue_request(SimTime::ZERO);
        fd.on_response(seq, ms(400)); // RTT 400 ms
        let seq2 = fd.issue_request(SimTime::from_secs(1));
        assert_eq!(seq2, 1);
        // timeout = LAST(400) + 100 margin.
        assert_eq!(fd.deadline(), Some(SimTime::from_millis(1_500)));
        assert_eq!(fd.responses(), 1);
    }

    #[test]
    fn timeout_starts_suspicion_response_corrects_it() {
        let mut fd = detector();
        let seq = fd.issue_request(SimTime::ZERO);
        fd.on_response(seq, ms(400));
        let seq2 = fd.issue_request(SimTime::from_secs(1));
        assert_eq!(fd.check(ms(1_499)), None);
        assert_eq!(fd.check(ms(1_500)), Some(FdTransition::StartSuspect));
        assert!(fd.is_suspecting());
        // Late response corrects the mistake.
        assert_eq!(
            fd.on_response(seq2, ms(1_900)),
            Some(FdTransition::EndSuspect)
        );
        assert!(!fd.is_suspecting());
    }

    #[test]
    fn wrong_seq_responses_are_stale() {
        let mut fd = detector();
        let _ = fd.issue_request(SimTime::ZERO);
        assert_eq!(fd.on_response(99, ms(100)), None);
        assert_eq!(fd.stale_responses(), 1);
        // Response after supersession is stale too.
        let _ = fd.issue_request(SimTime::from_secs(1));
        assert_eq!(fd.on_response(0, ms(1_100)), None);
        assert_eq!(fd.stale_responses(), 2);
    }

    #[test]
    fn check_without_outstanding_request_is_noop() {
        let mut fd = detector();
        assert_eq!(fd.check(SimTime::from_secs(100)), None);
        assert!(!fd.is_suspecting());
    }

    #[test]
    fn suspicion_persists_until_a_response() {
        let mut fd = detector();
        let _ = fd.issue_request(SimTime::ZERO);
        fd.check(SimTime::from_secs(2));
        assert!(fd.is_suspecting());
        // New requests while suspecting do not clear the suspicion.
        let seq = fd.issue_request(SimTime::from_secs(2));
        assert!(fd.is_suspecting());
        assert_eq!(
            fd.on_response(seq, SimTime::from_secs(3)),
            Some(FdTransition::EndSuspect)
        );
    }

    #[test]
    fn request_counter_tracks_message_cost() {
        // Pull costs two messages per cycle (request + response): the
        // counters expose that for the paper's push-vs-pull comparison.
        let mut fd = detector();
        for i in 0..10u64 {
            let seq = fd.issue_request(SimTime::from_secs(i));
            fd.on_response(seq, SimTime::from_secs(i) + SimDuration::from_millis(300));
        }
        assert_eq!(fd.requests(), 10);
        assert_eq!(fd.responses(), 10);
        // Total messages = requests + responses = 2 × cycles, vs 1 × for push.
    }
}
