//! The registry of the paper's 30 predictor × safety-margin combinations.
//!
//! Five predictors (`LAST`, `MEAN`, `WINMEAN(10)`, `LPF(1/8)`,
//! `ARIMA(2,1,1)`; Table 2) crossed with six margins (`SM_CI` with
//! γ ∈ {1, 2, 3.31}, `SM_JAC` with φ ∈ {1, 2, 4}; Table 1) give the 30
//! failure detectors the experiments compare side by side.

use fd_arima::ArimaSpec;
use fd_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::detector::FailureDetector;
use crate::margin::{ConfidenceMargin, JacobsonMargin, RtoMargin, SafetyMargin};
use crate::predictor::{
    AdaptiveWindow, ArimaPredictor, Last, Lpf, Mean, MlPredictor, PhiAccrual, Predictor, WinMean,
};

/// Which predictor a combination uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// `LAST`.
    Last,
    /// `MEAN`.
    Mean,
    /// `WINMEAN(window)`.
    WinMean {
        /// Window size `N`.
        window: usize,
    },
    /// `LPF(beta)`.
    Lpf {
        /// Smoothing factor β.
        beta: f64,
    },
    /// `ARIMA(p,d,q)` refit every `refit_every` observations.
    Arima {
        /// AR order.
        p: usize,
        /// Differencing order.
        d: usize,
        /// MA order.
        q: usize,
        /// Refit period (`N_Arima`).
        refit_every: usize,
    },
    /// `PHI(window, threshold)` — φ-accrual timeout with the two-phase
    /// stable/start lifecycle (`PHI-S` when `two_phase` is off).
    PhiAccrual {
        /// Window size `N` of recent delays.
        window: usize,
        /// Suspicion threshold φ*.
        threshold: f64,
        /// Enables flap-triggered cold restarts with a Weibull-gated
        /// start phase.
        two_phase: bool,
    },
    /// `ADWIN(window, k)` — adaptive μ+Kσ over a ring of recent delays.
    AdaptiveWindow {
        /// Window size `N`.
        window: usize,
        /// Deviation multiplier `K`.
        k: f64,
    },
    /// `ML(lags, rate)` — tiny online-trained model (normalized LMS over
    /// the last `lags` delays plus a bias).
    MlPredictor {
        /// Autoregressive inputs.
        lags: usize,
        /// Learning rate.
        rate: f64,
    },
}

impl PredictorKind {
    /// The paper's Table 2 parameterisation of this predictor family.
    pub fn paper_default(family: &str) -> Option<PredictorKind> {
        match family {
            "LAST" => Some(PredictorKind::Last),
            "MEAN" => Some(PredictorKind::Mean),
            "WINMEAN" => Some(PredictorKind::WinMean { window: 10 }),
            "LPF" => Some(PredictorKind::Lpf { beta: 0.125 }),
            "ARIMA" => Some(PredictorKind::Arima {
                p: 2,
                d: 1,
                q: 1,
                refit_every: 1000,
            }),
            _ => None,
        }
    }

    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn Predictor> {
        match *self {
            PredictorKind::Last => Box::new(Last::new()),
            PredictorKind::Mean => Box::new(Mean::new()),
            PredictorKind::WinMean { window } => Box::new(WinMean::new(window)),
            PredictorKind::Lpf { beta } => Box::new(Lpf::new(beta)),
            PredictorKind::Arima {
                p,
                d,
                q,
                refit_every,
            } => Box::new(ArimaPredictor::new(ArimaSpec::new(p, d, q), refit_every)),
            PredictorKind::PhiAccrual {
                window,
                threshold,
                two_phase,
            } => Box::new(PhiAccrual::new(window, threshold, two_phase)),
            PredictorKind::AdaptiveWindow { window, k } => Box::new(AdaptiveWindow::new(window, k)),
            PredictorKind::MlPredictor { lags, rate } => Box::new(MlPredictor::new(lags, rate)),
        }
    }

    /// The predictor's label.
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// The five paper predictors in the paper's plotting order.
    pub fn paper_set() -> Vec<PredictorKind> {
        vec![
            PredictorKind::Arima {
                p: 2,
                d: 1,
                q: 1,
                refit_every: 1000,
            },
            PredictorKind::Last,
            PredictorKind::Lpf { beta: 0.125 },
            PredictorKind::Mean,
            PredictorKind::WinMean { window: 10 },
        ]
    }

    /// The four extended-grid predictor instances beyond the paper's five:
    /// two-phase φ-accrual, its stable-only control, adaptive μ+Kσ and the
    /// online-trained model.
    pub fn extended_set() -> Vec<PredictorKind> {
        vec![
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: true,
            },
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: false,
            },
            PredictorKind::AdaptiveWindow { window: 16, k: 2.0 },
            PredictorKind::MlPredictor { lags: 4, rate: 0.5 },
        ]
    }

    /// Every predictor kind the test pyramid must cover: the paper set
    /// plus the extended set. New families **must** be appended here — the
    /// differential, snapshot, digest and fuzz suites all iterate this
    /// enumerator, so a kind missing from it silently skips the pyramid.
    pub fn all_for_test() -> Vec<PredictorKind> {
        let mut kinds = Self::paper_set();
        kinds.extend(Self::extended_set());
        kinds
    }
}

/// Which safety margin a combination uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MarginKind {
    /// `SM_CI(gamma)`.
    Ci {
        /// The γ multiplier.
        gamma: f64,
    },
    /// `SM_JAC(phi)` with α = 1/4.
    Jac {
        /// The φ multiplier.
        phi: f64,
    },
    /// `SM_RTO(k)` — the full Jacobson/Karels estimator (`μ̂ + k·d̂`), the
    /// Bertier-style extension beyond the paper's two families.
    Rto {
        /// The deviation multiplier (TCP uses 4).
        k: f64,
    },
}

impl MarginKind {
    /// Instantiates the margin.
    pub fn build(&self) -> Box<dyn SafetyMargin> {
        match *self {
            MarginKind::Ci { gamma } => Box::new(ConfidenceMargin::new(gamma)),
            MarginKind::Jac { phi } => Box::new(JacobsonMargin::new(phi)),
            MarginKind::Rto { k } => Box::new(RtoMargin::new(k)),
        }
    }

    /// The margin's label.
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// The six paper margins in the paper's x-axis order:
    /// `CI_low, CI_med, CI_high, JAC_low, JAC_med, JAC_high` (Table 1).
    pub fn paper_set() -> Vec<MarginKind> {
        vec![
            MarginKind::Ci {
                gamma: ConfidenceMargin::GAMMA_LOW,
            },
            MarginKind::Ci {
                gamma: ConfidenceMargin::GAMMA_MED,
            },
            MarginKind::Ci {
                gamma: ConfidenceMargin::GAMMA_HIGH,
            },
            MarginKind::Jac {
                phi: JacobsonMargin::PHI_LOW,
            },
            MarginKind::Jac {
                phi: JacobsonMargin::PHI_MED,
            },
            MarginKind::Jac {
                phi: JacobsonMargin::PHI_HIGH,
            },
        ]
    }

    /// Short axis label as in the paper's figures, e.g. `"CI_med"`.
    pub fn axis_label(&self) -> String {
        match *self {
            MarginKind::Ci { gamma } => {
                let level = if gamma <= 1.0 {
                    "low"
                } else if gamma <= 2.0 {
                    "med"
                } else {
                    "high"
                };
                format!("CI_{level}")
            }
            MarginKind::Jac { phi } => {
                let level = if phi <= 1.0 {
                    "low"
                } else if phi <= 2.0 {
                    "med"
                } else {
                    "high"
                };
                format!("JAC_{level}")
            }
            MarginKind::Rto { k } => format!("RTO_{k}"),
        }
    }
}

/// One predictor × margin combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Combination {
    /// The predictor.
    pub predictor: PredictorKind,
    /// The safety margin.
    pub margin: MarginKind,
}

impl Combination {
    /// Creates a combination.
    pub fn new(predictor: PredictorKind, margin: MarginKind) -> Self {
        Self { predictor, margin }
    }

    /// The combination's label, e.g. `"ARIMA(2,1,1)+SM_CI(2)"`.
    pub fn label(&self) -> String {
        format!("{}+{}", self.predictor.label(), self.margin.label())
    }

    /// Builds the ready-to-run failure detector with heartbeat period `eta`.
    pub fn build(&self, eta: SimDuration) -> FailureDetector {
        FailureDetector::from_boxed(
            self.label(),
            self.predictor.build(),
            self.margin.build(),
            eta,
        )
    }
}

/// All 30 combinations of the paper, predictors × margins, margins varying
/// fastest (matching the figures' x-axis layout).
pub fn all_combinations() -> Vec<Combination> {
    let mut combos = Vec::with_capacity(30);
    for predictor in PredictorKind::paper_set() {
        for margin in MarginKind::paper_set() {
            combos.push(Combination::new(predictor, margin));
        }
    }
    combos
}

/// The extended grid: the paper's 30 combinations followed by the four
/// new-family predictors crossed with the same six margins (54 total),
/// margins varying fastest throughout.
pub fn extended_combinations() -> Vec<Combination> {
    let mut combos = all_combinations();
    for predictor in PredictorKind::extended_set() {
        for margin in MarginKind::paper_set() {
            combos.push(Combination::new(predictor, margin));
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_thirty_combinations() {
        let combos = all_combinations();
        assert_eq!(combos.len(), 30);
        // All labels distinct.
        let mut labels: Vec<String> = combos.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 30);
    }

    #[test]
    fn paper_sets_have_expected_members() {
        let preds = PredictorKind::paper_set();
        assert_eq!(preds.len(), 5);
        let margins = MarginKind::paper_set();
        assert_eq!(margins.len(), 6);
        assert_eq!(margins[0].axis_label(), "CI_low");
        assert_eq!(margins[2].axis_label(), "CI_high");
        assert_eq!(margins[3].axis_label(), "JAC_low");
        assert_eq!(margins[5].axis_label(), "JAC_high");
    }

    #[test]
    fn labels_follow_paper_notation() {
        let c = Combination::new(
            PredictorKind::Arima {
                p: 2,
                d: 1,
                q: 1,
                refit_every: 1000,
            },
            MarginKind::Ci { gamma: 3.31 },
        );
        assert_eq!(c.label(), "ARIMA(2,1,1)+SM_CI(3.31)");
        let c2 = Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 4.0 });
        assert_eq!(c2.label(), "LAST+SM_JAC(4)");
    }

    #[test]
    fn extended_grid_appends_the_new_families() {
        let combos = extended_combinations();
        assert_eq!(combos.len(), 54, "30 paper + 4 families × 6 margins");
        assert_eq!(&combos[..30], &all_combinations()[..]);
        let mut labels: Vec<String> = combos.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 54, "labels must stay distinct");
    }

    #[test]
    fn all_for_test_covers_paper_and_extended_sets() {
        let kinds = PredictorKind::all_for_test();
        assert_eq!(kinds.len(), 9);
        for k in PredictorKind::paper_set() {
            assert!(kinds.contains(&k), "paper kind missing: {}", k.label());
        }
        for k in PredictorKind::extended_set() {
            assert!(kinds.contains(&k), "extended kind missing: {}", k.label());
        }
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        assert!(labels.contains(&"PHI(16,1)".to_owned()));
        assert!(labels.contains(&"PHI-S(16,1)".to_owned()));
        assert!(labels.contains(&"ADWIN(16,2)".to_owned()));
        assert!(labels.contains(&"ML(4,0.5)".to_owned()));
    }

    #[test]
    fn paper_default_lookup() {
        assert_eq!(
            PredictorKind::paper_default("WINMEAN"),
            Some(PredictorKind::WinMean { window: 10 })
        );
        assert_eq!(PredictorKind::paper_default("NOPE"), None);
        let arima = PredictorKind::paper_default("ARIMA").unwrap();
        assert_eq!(arima.label(), "ARIMA(2,1,1)");
    }

    #[test]
    fn built_detectors_work() {
        use fd_sim::SimTime;
        let eta = SimDuration::from_secs(1);
        for combo in all_combinations() {
            let mut fd = combo.build(eta);
            fd.on_heartbeat(0, SimTime::from_millis(200));
            assert!(fd.next_deadline().is_some(), "{}", combo.label());
            assert!(!fd.is_suspecting());
        }
    }

    #[test]
    fn gamma_phi_values_match_table1() {
        let margins = MarginKind::paper_set();
        let expect = [
            ("CI", 1.0),
            ("CI", 2.0),
            ("CI", 3.31),
            ("JAC", 1.0),
            ("JAC", 2.0),
            ("JAC", 4.0),
        ];
        for (m, (family, value)) in margins.iter().zip(expect) {
            match m {
                MarginKind::Ci { gamma } => {
                    assert_eq!(family, "CI");
                    assert_eq!(*gamma, value);
                }
                MarginKind::Jac { phi } => {
                    assert_eq!(family, "JAC");
                    assert_eq!(*phi, value);
                }
                MarginKind::Rto { .. } => panic!("RTO is not in the paper set"),
            }
        }
    }
}
