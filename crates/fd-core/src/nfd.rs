//! The NFD-E baseline of Chen, Toueg and Aguilera (DSN 2000).
//!
//! NFD-E estimates the expected arrival time of the next heartbeat as the
//! average of shifted past arrivals — exactly the `MEAN` predictor on the
//! one-way delays — and adds a *constant* safety margin `α` derived offline
//! from the QoS requirements and a probabilistic characterisation of the
//! network. The paper presents its modular detector as an extension of
//! NFD-E (and of Bertier et al.'s adaptive variant), so the baseline is
//! provided here for comparison experiments.

use fd_sim::SimDuration;

use crate::detector::FailureDetector;
use crate::margin::ConstantMargin;
use crate::predictor::Mean;

/// Builds an NFD-E detector: `MEAN` predictor + constant margin `alpha_ms`.
///
/// # Panics
///
/// Panics if `eta` is zero or `alpha_ms` is negative/not finite.
pub fn nfd_e(alpha_ms: f64, eta: SimDuration) -> FailureDetector {
    FailureDetector::new(
        format!("NFD-E(α={alpha_ms}ms)"),
        Mean::new(),
        ConstantMargin::new(alpha_ms),
        eta,
    )
}

/// Chooses the constant margin `α` for a *worst-case detection time* target
/// `T_D^U`, following Chen et al.'s configuration rule.
///
/// NFD-E's detection time is bounded by `η + α + (delay variability)`: a
/// crash right after a heartbeat is noticed one period plus the margin after
/// the (mean-predicted) arrival. Solving for `α`:
///
/// ```text
/// α = T_D^U − η − (mean one-way delay)
/// ```
///
/// Returns `None` when the target is infeasible (smaller than `η + mean
/// delay`, which no constant-margin detector can achieve).
pub fn alpha_for_detection_target(
    td_u_target_ms: f64,
    eta: SimDuration,
    mean_delay_ms: f64,
) -> Option<f64> {
    let alpha = td_u_target_ms - eta.as_millis_f64() - mean_delay_ms;
    (alpha >= 0.0).then_some(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::SimTime;

    #[test]
    fn nfd_e_behaves_like_mean_plus_constant() {
        let eta = SimDuration::from_secs(1);
        let mut fd = nfd_e(500.0, eta);
        fd.on_heartbeat(0, SimTime::from_millis(200));
        fd.on_heartbeat(1, SimTime::from_millis(1_300)); // delay 300, mean 250
                                                         // τ_2 = 2·η + 250 + 500 = 2750ms.
        assert_eq!(fd.next_deadline(), Some(SimTime::from_millis(2_750)));
        assert!(fd.name().starts_with("NFD-E"));
    }

    #[test]
    fn margin_is_constant_over_time() {
        let eta = SimDuration::from_secs(1);
        let mut fd = nfd_e(350.0, eta);
        for i in 0..50u64 {
            let arrival = SimTime::from_millis(i * 1_000 + 150 + (i % 7) * 20);
            fd.on_heartbeat(i, arrival);
            assert_eq!(fd.margin_ms(), 350.0);
        }
    }

    #[test]
    fn alpha_configuration_rule() {
        let eta = SimDuration::from_secs(1);
        // Target 2s detection with 200ms mean delay: α = 2000 − 1000 − 200.
        assert_eq!(alpha_for_detection_target(2_000.0, eta, 200.0), Some(800.0));
        // Infeasible target.
        assert_eq!(alpha_for_detection_target(900.0, eta, 200.0), None);
        // Boundary: exactly feasible with zero margin.
        assert_eq!(alpha_for_detection_target(1_200.0, eta, 200.0), Some(0.0));
    }

    #[test]
    fn detection_time_respects_configured_bound() {
        // Empirically: with constant delays equal to the mean, the detection
        // time after a crash never exceeds η + α + delay.
        let eta = SimDuration::from_secs(1);
        let alpha = alpha_for_detection_target(2_000.0, eta, 200.0).unwrap();
        let mut fd = nfd_e(alpha, eta);
        for i in 0..10u64 {
            fd.on_heartbeat(i, SimTime::from_millis(i * 1_000 + 200));
        }
        // Crash right after heartbeat 9 (worst case: just after a send).
        let deadline = fd.next_deadline().unwrap();
        let crash_at = SimTime::from_millis(9_000);
        let td_ms = deadline.duration_since(crash_at).as_millis_f64();
        assert!(td_ms <= 2_000.0 + 1.0, "T_D = {td_ms}ms");
    }
}
