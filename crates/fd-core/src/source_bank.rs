//! The many-source detector engine: N heartbeat sources × M combinations
//! behind one struct-of-arrays state machine.
//!
//! [`DetectorBank`](crate::bank::DetectorBank) made the 30-combination step
//! cheap for **one** source. A large-scale monitor watches millions of
//! sources, and allocating a `DetectorBank` per source brings back exactly
//! the overheads the bank removed — scattered allocations, per-object
//! bookkeeping, and a virtual boundary per source in the hot loop.
//!
//! [`SourceBank`] is the same shared-computation engine with the source
//! dimension folded into the arrays:
//!
//! * forecaster state is laid out as **columns** — one [`PredCol`] per
//!   distinct predictor, each holding only the bytes that predictor kind
//!   actually needs per source (8 B for `LAST`/`MEAN`/`LPF` instead of a
//!   328-byte uniform enum slot), with the window-mean rings packed into
//!   one shared arena;
//! * the Welford core of `SM_CI` and the error cores of `SM_JAC`/`SM_RTO`
//!   are columns too, and their construction-time constants (α, the RTO
//!   gain) are hoisted out of the per-source state;
//! * every heartbeat touches every predictor column and the Welford core
//!   exactly once, so the Welford count doubles as the per-source
//!   observation count — `MEAN`, `WINMEAN` and `LPF` carry no counter of
//!   their own;
//! * deadlines are laid out **combo-major** — one contiguous `u32` array
//!   per combination (`deadlines[combo * N + source]`, `u32::MAX` = none;
//!   armed freshness points are asserted inside the ~71.6-virtual-minute
//!   µs horizon, the same clock the streaming QoS accumulator uses) — so
//!   a full freshness sweep ([`check_all_at`](SourceBank::check_all_at))
//!   is M linear array scans, not N×M virtual calls;
//! * each source carries an amortized **freshest-deadline cache**
//!   (`min_deadline[source]` = a lower bound on its earliest pending
//!   non-suspecting deadline), so the per-source check
//!   ([`check_source_at`](SourceBank::check_source_at)) is O(1) until a
//!   deadline can actually have expired;
//! * [`observe_all`](SourceBank::observe_all) consumes a whole batch of
//!   heartbeats in one call, so a cycle over 1M sources is a linear sweep
//!   over the batch rather than 1M independent call trees.
//!
//! The per-heartbeat arithmetic is **bit-identical** to `DetectorBank`
//! (which is itself bit-identical to the boxed single-detector path): the
//! operations happen in the same order on the same values. `predict()` is
//! pure, so recomputing the pre-observation forecast for the error term
//! yields exactly the value the bank reads from its cache, and the
//! post-observation forecasts live in a per-call scratch stripe instead of
//! an N×P cache.

use fd_arima::ArimaSpec;
use fd_sim::{SimDuration, SimTime};
use fd_stat::EventSink;

use crate::combinations::{Combination, MarginKind, PredictorKind};
use crate::detector::FdTransition;
use crate::predictor::{
    ml_observe_core, ml_raw_predict, sanitize_delay, AdaptiveWindow, ArimaPredictor, MlPredictor,
    PhiAccrual, Predictor, ML_PRED_CLAMP,
};

/// `highest_seq` sentinel for "no fresh heartbeat seen yet". Stored
/// sequence numbers are asserted below it; a sequence that far along would
/// overflow the deadline horizon first for any realistic η.
const SEQ_NONE: u32 = u32::MAX;

/// `deadlines` sentinel for "no freshness point armed".
const NO_DEADLINE: u32 = u32::MAX;

/// Shared `SM_JAC` gain: the paper's α = 1/4, the value `DetectorBank`
/// hands `JacCore::new`. Hoisting it lets the bank keep one smoothed-|err|
/// column per predictor instead of (α, base) pairs per source.
const JAC_ALPHA: f64 = 0.25;

/// Shared `SM_RTO` mean gain (deviation gain `2 × RTO_GAIN`), as in
/// `RtoCore::new`.
const RTO_GAIN: f64 = 0.125;

/// Heartbeats per block in the batched observe path. Sized so the block
/// scratch (`OBS_BLOCK × M` deadlines ≈ 7.5 KiB for the paper grid) stays
/// L1-resident while each combination's deadline row is written in runs
/// of up to `OBS_BLOCK` nearby slots instead of one isolated slot per
/// heartbeat.
const OBS_BLOCK: usize = 64;

/// Below this source count [`SourceBank::observe_all`] runs the scalar
/// per-heartbeat path: the blocked two-phase walk only pays for its block
/// bookkeeping once combination rows outgrow the small-bank regime where
/// everything is cache-resident anyway. Measured with
/// `scale --crossover` (see EXPERIMENTS.md): the blocked walk is
/// 0.71–0.98× the scalar loop at 256–12 288 sources and only reaches
/// parity around 16 384, which is also where the sharded engine's
/// per-shard queue backend flips from heap to wheel.
const OBS_SCALAR_CROSSOVER: usize = 16_384;

/// A fully-set dirty bitmap covering `n_words` suspicion words, with the
/// unused tail bits of the last word kept clear so set-bit iteration never
/// names a word index past the suspicion array.
fn all_dirty(n_words: usize) -> Vec<u64> {
    let mut v = vec![u64::MAX; n_words.div_ceil(64)];
    if let Some(last) = v.last_mut() {
        let rem = n_words % 64;
        if rem != 0 {
            *last = (1u64 << rem) - 1;
        }
    }
    v
}

/// One heartbeat arrival, addressed to a source, for the batch API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatObs {
    /// The monitored source the heartbeat came from.
    pub source: u32,
    /// The heartbeat sequence number.
    pub seq: u64,
    /// Arrival time at the monitor.
    pub arrival: SimTime,
}

/// A suspect/trust edge of one (source, combination) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTransition {
    /// The monitored source.
    pub source: u32,
    /// Index of the combination (position in the slice the bank was built
    /// from).
    pub combo: u32,
    /// The edge.
    pub transition: FdTransition,
}

/// Per-source state of one distinct predictor, as parallel columns indexed
/// by source. Each variant stores only what its forecast function needs;
/// the shared observation count (the Welford count in [`CiCol`]) supplies
/// `n` where the scalar predictors kept their own.
#[derive(Debug, Clone)]
enum PredCol {
    /// `LAST`: forecast = most recent delay (0 before the first — the
    /// initial value, so no primed flag is needed).
    Last { last: Vec<f64> },
    /// `MEAN`: running mean of all observed delays.
    Mean { mean: Vec<f64> },
    /// `WINMEAN(cap)`: mean of the last `cap` delays. The per-source rings
    /// live in one arena, `ring[s * cap..][..cap]`, written cyclically at
    /// `n % cap`.
    WinMean {
        cap: usize,
        sum: Vec<f64>,
        ring: Vec<f64>,
    },
    /// `LPF(β)`: exponential smoothing; β is per-kind, not per-source.
    Lpf { beta: f64, pred: Vec<f64> },
    /// `ARIMA`: the full streaming forecaster per source.
    Arima(Vec<ArimaPredictor>),
    /// `PHI`: the full φ-accrual lifecycle per source. The stable/start
    /// state machine (flap counters, Weibull gate, cold-restarted window)
    /// does not columnize any better than ARIMA's model state, so this is
    /// the same vec-of-scalar shape — and bit-identical by construction.
    Phi(Vec<PhiAccrual>),
    /// `ADWIN(cap, k)`: ring arena (`ring[s * cap..][..cap]`, written at
    /// `n % cap`) plus running sum and sum-of-squares columns; the shared
    /// observation count supplies `n` exactly as for `WINMEAN`.
    Adw {
        cap: usize,
        k: f64,
        sum: Vec<f64>,
        sumsq: Vec<f64>,
        ring: Vec<f64>,
    },
    /// `ML(lags, rate)`: normalized-LMS weight arena
    /// (`w[s * (lags + 2)..][..lags + 2]`, the per-source
    /// `[w_0 … w_{lags-1}, bias, rate]` layout of the scalar model) and
    /// lag-ring arena (`hist[s * lags..][..lags]`). Both paths call the
    /// same `ml_raw_predict`/`ml_observe_core`, so they are bit-identical
    /// by construction.
    Ml {
        lags: usize,
        rate: f64,
        w: Vec<f64>,
        hist: Vec<f64>,
    },
}

impl PredCol {
    fn new(kind: PredictorKind, n_sources: usize) -> Self {
        match kind {
            PredictorKind::Last => PredCol::Last {
                last: vec![0.0; n_sources],
            },
            PredictorKind::Mean => PredCol::Mean {
                mean: vec![0.0; n_sources],
            },
            PredictorKind::WinMean { window } => {
                assert!(window > 0, "window capacity must be positive");
                PredCol::WinMean {
                    cap: window,
                    sum: vec![0.0; n_sources],
                    ring: vec![0.0; n_sources * window],
                }
            }
            PredictorKind::Lpf { beta } => {
                assert!(beta > 0.0 && beta <= 1.0, "beta out of (0, 1]: {beta}");
                PredCol::Lpf {
                    beta,
                    pred: vec![0.0; n_sources],
                }
            }
            PredictorKind::Arima {
                p,
                d,
                q,
                refit_every,
            } => PredCol::Arima(vec![
                ArimaPredictor::new(
                    ArimaSpec::new(p, d, q),
                    refit_every
                );
                n_sources
            ]),
            PredictorKind::PhiAccrual {
                window,
                threshold,
                two_phase,
            } => PredCol::Phi(vec![
                PhiAccrual::new(window, threshold, two_phase);
                n_sources
            ]),
            PredictorKind::AdaptiveWindow { window, k } => {
                // Mirror the scalar constructor's validation.
                let probe = AdaptiveWindow::new(window, k);
                PredCol::Adw {
                    cap: probe.window(),
                    k: probe.k(),
                    sum: vec![0.0; n_sources],
                    sumsq: vec![0.0; n_sources],
                    ring: vec![0.0; n_sources * window],
                }
            }
            PredictorKind::MlPredictor { lags, rate } => {
                let probe = MlPredictor::new(lags, rate);
                let stride = lags + 2;
                let mut w = vec![0.0; n_sources * stride];
                for s in 0..n_sources {
                    w[s * stride + lags + 1] = rate;
                }
                PredCol::Ml {
                    lags: probe.lags(),
                    rate: probe.rate(),
                    w,
                    hist: vec![0.0; n_sources * lags],
                }
            }
        }
    }

    /// The current forecast for source `s` after `n_obs` observations —
    /// pure, bit-identical to `PredictorState::predict` on the same
    /// history.
    fn predict(&self, s: usize, n_obs: u32) -> f64 {
        match self {
            PredCol::Last { last } => last[s],
            PredCol::Mean { mean } => mean[s],
            PredCol::WinMean { cap, sum, .. } => {
                let len = (n_obs as usize).min(*cap);
                if len == 0 {
                    0.0
                } else {
                    sum[s] / len as f64
                }
            }
            PredCol::Lpf { pred, .. } => pred[s],
            PredCol::Arima(col) => col[s].predict(),
            PredCol::Phi(col) => col[s].predict(),
            PredCol::Adw {
                cap, k, sum, sumsq, ..
            } => {
                let len = (n_obs as usize).min(*cap);
                if len == 0 {
                    return 0.0;
                }
                let mu = sum[s] / len as f64;
                if len < 2 {
                    return mu; // single sample: σ undefined, treated as 0
                }
                let var = (sumsq[s] - sum[s] * sum[s] / len as f64) / (len - 1) as f64;
                mu + *k * var.max(0.0).sqrt()
            }
            PredCol::Ml { lags, w, hist, .. } => {
                let n = u64::from(n_obs);
                if n == 0 {
                    return 0.0;
                }
                let hist_s = &hist[s * *lags..][..*lags];
                if n < *lags as u64 {
                    // LAST fallback while the lag ring fills.
                    return hist_s[((n - 1) % *lags as u64) as usize];
                }
                let w_s = &w[s * (*lags + 2)..][..*lags + 2];
                ml_raw_predict(w_s, hist_s, *lags, n).clamp(0.0, ML_PRED_CLAMP)
            }
        }
    }

    /// Consumes one delay observation for source `s`, its `n_before`-th
    /// (0-based), carrying the heartbeat's sequence `gap` (missing
    /// heartbeats before it; only the φ lifecycle reads it). Same
    /// operations in the same order as the scalar predictors.
    fn observe(&mut self, s: usize, delay_ms: f64, n_before: u32, gap: u64) {
        match self {
            PredCol::Last { last } => last[s] = delay_ms,
            PredCol::Mean { mean } => {
                mean[s] += (delay_ms - mean[s]) / f64::from(n_before + 1);
            }
            PredCol::WinMean { cap, sum, ring } => {
                // `sum -= oldest` before `sum += new`, exactly like the
                // deque path pops before pushing.
                let pos = s * *cap + n_before as usize % *cap;
                if n_before as usize >= *cap {
                    sum[s] -= ring[pos];
                }
                ring[pos] = delay_ms;
                sum[s] += delay_ms;
            }
            PredCol::Lpf { beta, pred } => {
                if n_before == 0 {
                    pred[s] = delay_ms;
                } else {
                    pred[s] += *beta * (delay_ms - pred[s]);
                }
            }
            PredCol::Arima(col) => col[s].observe(delay_ms),
            PredCol::Phi(col) => col[s].observe_gap(delay_ms, gap),
            PredCol::Adw {
                cap,
                sum,
                sumsq,
                ring,
                ..
            } => {
                let d = sanitize_delay(delay_ms);
                let idx = s * *cap + n_before as usize % *cap;
                if n_before as usize >= *cap {
                    let old = ring[idx];
                    sum[s] -= old;
                    sumsq[s] -= old * old;
                }
                ring[idx] = d;
                sum[s] += d;
                sumsq[s] += d * d;
            }
            PredCol::Ml { lags, w, hist, .. } => {
                let d = sanitize_delay(delay_ms);
                let w_s = &mut w[s * (*lags + 2)..][..*lags + 2];
                let hist_s = &mut hist[s * *lags..][..*lags];
                ml_observe_core(w_s, hist_s, *lags, u64::from(n_before), d);
            }
        }
    }
}

/// The shared-γ Welford core of `SM_CI`, one slot per source: the running
/// count/mean/M2 plus the cached `σ̂` and `sqrt(1 + 1/n + dev²/ssd)`
/// factors (which depend on the *last* observation and so cannot be
/// recomputed from the moments alone). Same recurrences as
/// `RunningStats::push` + `CiCore::update`; min/max are dropped because no
/// margin reads them.
#[derive(Debug, Clone)]
struct CiCol {
    /// Observation count — also the bank-wide per-source observation
    /// count feeding [`PredCol`].
    n: Vec<u32>,
    mean: Vec<f64>,
    m2: Vec<f64>,
    sigma: Vec<f64>,
    inner_sqrt: Vec<f64>,
}

impl CiCol {
    fn new(n_sources: usize) -> Self {
        Self {
            n: vec![0; n_sources],
            mean: vec![0.0; n_sources],
            m2: vec![0.0; n_sources],
            sigma: vec![0.0; n_sources],
            inner_sqrt: vec![0.0; n_sources],
        }
    }

    fn update(&mut self, s: usize, obs_ms: f64) {
        let n = self.n[s] + 1;
        self.n[s] = n;
        let delta = obs_ms - self.mean[s];
        self.mean[s] += delta / f64::from(n);
        self.m2[s] += delta * (obs_ms - self.mean[s]);
        if n < 2 {
            self.sigma[s] = 0.0;
            self.inner_sqrt[s] = 0.0;
            return;
        }
        let dev = obs_ms - self.mean[s];
        let ssd = self.m2[s];
        let inner = 1.0 + 1.0 / f64::from(n) + if ssd > 0.0 { dev * dev / ssd } else { 0.0 };
        self.sigma[s] = (self.m2[s] / f64::from(n - 1)).sqrt();
        self.inner_sqrt[s] = inner.sqrt();
    }

    fn margin(&self, s: usize, gamma: f64) -> f64 {
        // Left-associated exactly like `CiCore::margin`.
        gamma * self.sigma[s] * self.inner_sqrt[s]
    }
}

/// Per-source `SM_RTO` error core (gain hoisted to [`RTO_GAIN`]).
#[derive(Debug, Clone)]
struct RtoCol {
    mu: Vec<f64>,
    dev: Vec<f64>,
}

/// Narrows an armed freshness point to the u32 µs deadline clock.
fn deadline32(us: u64) -> u32 {
    assert!(
        us < u64::from(NO_DEADLINE),
        "freshness point {us} µs beyond the ~71.6-virtual-minute u32 horizon"
    );
    us as u32
}

/// The N-source × M-combination struct-of-arrays detector engine.
///
/// ```
/// use fd_core::source_bank::{HeartbeatObs, SourceBank};
/// use fd_sim::{SimDuration, SimTime};
///
/// let eta = SimDuration::from_secs(1);
/// let mut bank = SourceBank::paper_grid(eta, 100);
/// assert_eq!(bank.sources(), 100);
/// assert_eq!(bank.len(), 30);
///
/// // One batch delivers heartbeat m_0 from every source.
/// let batch: Vec<HeartbeatObs> = (0..100)
///     .map(|s| HeartbeatObs {
///         source: s,
///         seq: 0,
///         arrival: SimTime::from_millis(200),
///     })
///     .collect();
/// assert_eq!(bank.observe_all(&batch), 100);
///
/// // Nothing arrives for a long time: every pair starts suspecting.
/// let fired = bank.check_all_at(SimTime::from_secs(60)).len();
/// assert_eq!(fired, 100 * 30);
/// ```
#[derive(Debug, Clone)]
pub struct SourceBank {
    eta: SimDuration,
    combos: Vec<Combination>,
    /// `pred_of_combo[i]` = distinct-predictor index for combination `i`.
    pred_of_combo: Vec<usize>,
    n_sources: usize,
    /// Number of distinct predictors per source (5 for the paper grid).
    n_pred: usize,
    /// Words per combination in the `suspecting` bitmap.
    words: usize,
    /// One column of per-source forecaster state per distinct predictor.
    cols: Vec<PredCol>,
    /// `jac[p]` = the per-source smoothed-|error| column of predictor
    /// `p`'s `SM_JAC` core, present only when some combination needs it.
    jac: Vec<Option<Vec<f64>>>,
    /// `rto[p]` = predictor `p`'s `SM_RTO` core columns, ditto.
    rto: Vec<Option<RtoCol>>,
    /// One shared Welford core per source (serves every `SM_CI(γ)`); its
    /// count is also the per-source observation count.
    ci: CiCol,
    /// Post-observation forecast of each distinct predictor for the source
    /// currently being observed — scratch for the combo fan-out.
    pred_scratch: Vec<f64>,
    /// Combo-major: `deadlines[combo * n_sources + source]`, microseconds,
    /// [`NO_DEADLINE`] when unarmed. One contiguous array per combination.
    deadlines: Vec<u32>,
    /// Combo-major bitmap: bit `source` of combination `combo` lives at
    /// word `combo * words + source / 64`.
    suspecting: Vec<u64>,
    /// Word-granular dirty bitmap over [`suspecting`](Self::suspecting):
    /// bit `w % 64` of word `w / 64` is set when suspicion word `w` may
    /// have changed since the last [`clear_dirty`](Self::clear_dirty).
    /// Fresh and freshly-restored banks report every word dirty.
    dirty: Vec<u64>,
    /// Per source: highest fresh sequence seen ([`SEQ_NONE`] = none).
    highest_seq: Vec<u32>,
    /// Per source: lower bound on the earliest pending deadline among
    /// non-suspecting combinations (the amortized freshest-deadline
    /// cache). [`NO_DEADLINE`] when nothing is pending.
    min_deadline: Vec<u32>,
    heartbeats: u64,
    stale_heartbeats: u64,
    transitions: Vec<SourceTransition>,
    /// Scratch for the lane-swept full scan: fired `(source, combo)`
    /// pairs, sorted source-major before reporting.
    scan_fired: Vec<(u32, u32)>,
    /// Block scratch for [`observe_all`](Self::observe_all): deadline per
    /// (block slot, combo), `blk_dl[i * M + idx]`.
    blk_dl: Vec<u32>,
    /// Block scratch: whether block slot `i` carried a fresh heartbeat.
    blk_fresh: Vec<bool>,
    /// Block scratch: `EndSuspect` edges as (block slot, combo) pairs.
    blk_edges: Vec<(u32, u32)>,
    /// Impact-FD plane: per-source impact weights (`None` = every source
    /// weighs 1). Sanitized at [`set_impact_weights`](Self::set_impact_weights).
    impact_weights: Option<Vec<f64>>,
    /// Cached Σ of the impact weights (`n_sources` when unweighted), the
    /// ceiling of [`impact_trust`](Self::impact_trust).
    impact_total: f64,
}

impl SourceBank {
    /// Builds a bank over `n_sources` sources, each running the given
    /// combinations with heartbeat period `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero or `n_sources` exceeds `u32` range.
    pub fn new(combos: &[Combination], eta: SimDuration, n_sources: usize) -> Self {
        assert!(!eta.is_zero(), "heartbeat period must be positive");
        assert!(
            u32::try_from(n_sources).is_ok(),
            "source count must fit in u32"
        );
        // Dedup distinct predictors exactly like DetectorBank::new, so
        // combination indices map to the same shared state.
        let mut kinds: Vec<PredictorKind> = Vec::new();
        let mut pred_of_combo = Vec::with_capacity(combos.len());
        for combo in combos {
            let p_idx = match kinds.iter().position(|k| *k == combo.predictor) {
                Some(i) => i,
                None => {
                    kinds.push(combo.predictor);
                    kinds.len() - 1
                }
            };
            pred_of_combo.push(p_idx);
        }
        let n_pred = kinds.len();
        let mut jac: Vec<Option<Vec<f64>>> = vec![None; n_pred];
        let mut rto: Vec<Option<RtoCol>> = vec![None; n_pred];
        for (combo, &p_idx) in combos.iter().zip(&pred_of_combo) {
            match combo.margin {
                MarginKind::Ci { .. } => {}
                MarginKind::Jac { .. } => {
                    jac[p_idx].get_or_insert_with(|| vec![0.0; n_sources]);
                }
                MarginKind::Rto { .. } => {
                    rto[p_idx].get_or_insert_with(|| RtoCol {
                        mu: vec![0.0; n_sources],
                        dev: vec![0.0; n_sources],
                    });
                }
            }
        }
        let cols: Vec<PredCol> = kinds.iter().map(|&k| PredCol::new(k, n_sources)).collect();
        let words = n_sources.div_ceil(64);
        Self {
            eta,
            pred_of_combo,
            n_sources,
            n_pred,
            words,
            cols,
            jac,
            rto,
            ci: CiCol::new(n_sources),
            pred_scratch: vec![0.0; n_pred],
            deadlines: vec![NO_DEADLINE; combos.len() * n_sources],
            suspecting: vec![0u64; combos.len() * words],
            dirty: all_dirty(combos.len() * words),
            highest_seq: vec![SEQ_NONE; n_sources],
            min_deadline: vec![NO_DEADLINE; n_sources],
            heartbeats: 0,
            stale_heartbeats: 0,
            transitions: Vec::new(),
            scan_fired: Vec::new(),
            blk_dl: vec![0; OBS_BLOCK * combos.len()],
            blk_fresh: vec![false; OBS_BLOCK],
            blk_edges: Vec::new(),
            impact_weights: None,
            impact_total: n_sources as f64,
            combos: combos.to_vec(),
        }
    }

    /// Builds the bank over the paper's full 30-combination grid.
    pub fn paper_grid(eta: SimDuration, n_sources: usize) -> Self {
        Self::new(&crate::combinations::all_combinations(), eta, n_sources)
    }

    /// Number of combinations per source.
    pub fn len(&self) -> usize {
        self.combos.len()
    }

    /// `true` if the bank has no combinations.
    pub fn is_empty(&self) -> bool {
        self.combos.is_empty()
    }

    /// Number of monitored sources.
    pub fn sources(&self) -> usize {
        self.n_sources
    }

    /// The heartbeat period η (shared by all sources).
    pub fn eta(&self) -> SimDuration {
        self.eta
    }

    /// The combinations, in index order.
    pub fn combos(&self) -> &[Combination] {
        &self.combos
    }

    /// Number of distinct predictor state machines per source.
    pub fn distinct_predictor_count(&self) -> usize {
        self.n_pred
    }

    /// Heartbeats observed so far (fresh + stale), across all sources.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Heartbeats that arrived out of order (did not advance freshness).
    pub fn stale_heartbeats(&self) -> u64 {
        self.stale_heartbeats
    }

    /// The next freshness point `τ_{k+1}` of `(source, combo)`.
    pub fn next_deadline(&self, source: u32, combo: usize) -> Option<SimTime> {
        let us = self.deadlines[combo * self.n_sources + source as usize];
        (us != NO_DEADLINE).then(|| SimTime::from_micros(u64::from(us)))
    }

    /// `true` while combination `combo` suspects `source`.
    pub fn is_suspecting(&self, source: u32, combo: usize) -> bool {
        let s = source as usize;
        self.suspecting[combo * self.words + s / 64] & (1u64 << (s % 64)) != 0
    }

    /// Words per combination row of the suspicion bitmap
    /// (`ceil(sources / 64)`).
    pub fn words_per_combo(&self) -> usize {
        self.words
    }

    /// The raw combo-major suspicion bitmap: `len() × words_per_combo()`
    /// words, where bit `s % 64` of word
    /// `combo * words_per_combo() + s / 64` is set while combination
    /// `combo` suspects source `s`.
    ///
    /// This is the snapshot-export surface of the serving plane: a
    /// publisher copies these words into a `SuspectView` buffer without
    /// touching any per-combo detector state.
    pub fn suspect_words(&self) -> &[u64] {
        &self.suspecting
    }

    /// Word-granular dirty bitmap over [`suspect_words`](Self::suspect_words):
    /// bit `w % 64` of word `w / 64` is set when suspicion word `w` may have
    /// changed since the last [`clear_dirty`](Self::clear_dirty). Fresh and
    /// freshly-restored banks report every word dirty, so an incremental
    /// publisher's first publication after construction or a warm restart is
    /// always a full one.
    pub fn dirty_words(&self) -> &[u64] {
        &self.dirty
    }

    /// Resets the dirty bitmap. An incremental publisher calls this right
    /// after consuming [`dirty_words`](Self::dirty_words) for a
    /// publication; every suspicion mutation from then on re-marks its word.
    pub fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    // -----------------------------------------------------------------
    // Impact-FD plane: weighted trust over the suspicion bitmaps.
    // -----------------------------------------------------------------

    /// Assigns each source an impact weight for the Impact-FD plane
    /// (Rossetto et al.'s flexible failure detector, PAPERS.md): the
    /// bank's [`impact_trust`](Self::impact_trust) of a combination is
    /// the summed weight of the sources it does **not** suspect, and an
    /// application accepts the system state while the trust stays at or
    /// above its acceptable margin.
    ///
    /// Weights are sanitized — a non-finite or negative entry contributes
    /// 0 — so the trust value is always finite. Without weights every
    /// source weighs 1 and the trust is simply `sources() − |suspected|`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.sources()`.
    pub fn set_impact_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.n_sources,
            "impact weights must cover every source"
        );
        let w: Vec<f64> = weights
            .iter()
            .map(|&x| if x.is_finite() && x >= 0.0 { x } else { 0.0 })
            .collect();
        self.impact_total = w.iter().sum();
        self.impact_weights = Some(w);
    }

    /// Drops the impact weights, returning to the unweighted plane
    /// (every source weighs 1).
    pub fn clear_impact_weights(&mut self) {
        self.impact_weights = None;
        self.impact_total = self.n_sources as f64;
    }

    /// The current per-source impact weights, if set.
    pub fn impact_weights(&self) -> Option<&[f64]> {
        self.impact_weights.as_deref()
    }

    /// The trust ceiling: Σ of the impact weights (`sources()` when
    /// unweighted).
    pub fn impact_total(&self) -> f64 {
        self.impact_total
    }

    /// The Impact-FD trust value of combination `combo`: the summed
    /// impact weight of the sources it currently trusts — a weighted
    /// popcount over the combination's suspicion words, reusing the
    /// bitmaps the serving plane already publishes.
    pub fn impact_trust(&self, combo: usize) -> f64 {
        let words = &self.suspecting[combo * self.words..(combo + 1) * self.words];
        match &self.impact_weights {
            None => {
                let suspected: u32 = words.iter().map(|w| w.count_ones()).sum();
                self.impact_total - f64::from(suspected)
            }
            Some(wts) => {
                let mut lost = 0.0;
                for (wi, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        lost += wts[wi * 64 + bits.trailing_zeros() as usize];
                        bits &= bits - 1;
                    }
                }
                self.impact_total - lost
            }
        }
    }

    /// `true` while combination `combo`'s trust is at or above the
    /// application's acceptable margin `threshold`.
    pub fn impact_accepts(&self, combo: usize, threshold: f64) -> bool {
        self.impact_trust(combo) >= threshold
    }

    /// The earliest pending deadline of `source` over its non-suspecting
    /// combinations — the instant its next check can possibly fire
    /// (`None` when nothing is pending).
    pub fn next_wakeup(&self, source: u32) -> Option<SimTime> {
        let us = self.min_deadline[source as usize];
        (us != NO_DEADLINE).then(|| SimTime::from_micros(u64::from(us)))
    }

    /// The current forecast feeding `(source, combo)`, in milliseconds.
    pub fn predicted_delay_ms(&self, source: u32, combo: usize) -> f64 {
        let s = source as usize;
        self.cols[self.pred_of_combo[combo]].predict(s, self.ci.n[s])
    }

    /// The current safety margin of `(source, combo)`, in milliseconds.
    pub fn margin_ms(&self, source: u32, combo: usize) -> f64 {
        self.margin_of(source as usize, combo)
    }

    fn margin_of(&self, s: usize, combo: usize) -> f64 {
        let p_idx = self.pred_of_combo[combo];
        match self.combos[combo].margin {
            MarginKind::Ci { gamma } => self.ci.margin(s, gamma),
            MarginKind::Jac { phi } => {
                let base = self.jac[p_idx]
                    .as_ref()
                    .expect("Jac column allocated for Jac combo");
                phi * base[s]
            }
            MarginKind::Rto { k } => {
                let col = self.rto[p_idx]
                    .as_ref()
                    .expect("Rto column allocated for Rto combo");
                (col.mu[s] + k * col.dev[s]).max(0.0)
            }
        }
    }

    /// The current time-out component `δ = pred + sm` of `(source, combo)`.
    pub fn current_timeout_ms(&self, source: u32, combo: usize) -> f64 {
        self.predicted_delay_ms(source, combo) + self.margin_ms(source, combo)
    }

    /// The transitions produced by the most recent observe/check call.
    ///
    /// Ordered by `(source slot in the call, combination index)`: a batch
    /// yields transitions in batch order, [`check_all_at`] in ascending
    /// `(source, combo)` order.
    ///
    /// [`check_all_at`]: Self::check_all_at
    pub fn transitions(&self) -> &[SourceTransition] {
        &self.transitions
    }

    /// Handles one heartbeat from `source`, exactly like
    /// [`DetectorBank::observe_heartbeat`] on that source's private bank.
    ///
    /// Returns `true` if the heartbeat was fresh. `EndSuspect` edges land
    /// in [`transitions`](Self::transitions).
    ///
    /// [`DetectorBank::observe_heartbeat`]:
    ///     crate::bank::DetectorBank::observe_heartbeat
    pub fn observe_heartbeat(&mut self, source: u32, seq: u64, arrival: SimTime) -> bool {
        self.transitions.clear();
        self.observe_inner(source, seq, arrival)
    }

    /// Consumes a whole batch of heartbeats in arrival order — the
    /// linear-sweep cycle path. Returns the number of fresh heartbeats.
    ///
    /// Equivalent to calling [`observe_heartbeat`] per element, except
    /// that [`transitions`](Self::transitions) accumulates the edges of
    /// the whole batch (in batch order).
    ///
    /// [`observe_heartbeat`]: Self::observe_heartbeat
    pub fn observe_all(&mut self, batch: &[HeartbeatObs]) -> usize {
        if self.n_sources < OBS_SCALAR_CROSSOVER {
            self.transitions.clear();
            let mut fresh = 0usize;
            for obs in batch {
                fresh += usize::from(self.observe_inner(obs.source, obs.seq, obs.arrival));
            }
            return fresh;
        }
        self.observe_all_blocked(batch)
    }

    /// The cache-blocked batch path, unconditionally — [`observe_all`]
    /// dispatches here above the scalar crossover. Exposed so differential
    /// tests and benchmarks can pin the path regardless of bank size.
    ///
    /// [`observe_all`]: Self::observe_all
    #[doc(hidden)]
    pub fn observe_all_blocked(&mut self, batch: &[HeartbeatObs]) -> usize {
        self.transitions.clear();
        let mut fresh = 0usize;
        for block in batch.chunks(OBS_BLOCK) {
            fresh += self.observe_block(block);
        }
        fresh
    }

    /// Feeds one observed delay to a source's predictor columns, error
    /// cores and the shared Welford core, leaving each distinct
    /// predictor's post-observation forecast in `pred_scratch`. The same
    /// operations in the same order as the per-source bank: error against
    /// the pre-observation forecast, observe, error-core advance,
    /// forecast refresh. `gap` is the heartbeat's sequence gap (missing
    /// heartbeats before it), consumed by the φ lifecycle only.
    fn advance_source(&mut self, s: usize, delay_ms: f64, gap: u64) {
        let n_before = self.ci.n[s];
        for (p, col) in self.cols.iter_mut().enumerate() {
            let err = delay_ms - col.predict(s, n_before);
            col.observe(s, delay_ms, n_before, gap);
            if let Some(base) = self.jac[p].as_mut() {
                base[s] += JAC_ALPHA * (err.abs() - base[s]);
            }
            if let Some(rto) = self.rto[p].as_mut() {
                let mu = rto.mu[s];
                rto.dev[s] += 2.0 * RTO_GAIN * ((err - mu).abs() - rto.dev[s]);
                rto.mu[s] = mu + RTO_GAIN * (err - mu);
            }
            self.pred_scratch[p] = col.predict(s, n_before + 1);
        }
        self.ci.update(s, delay_ms);
    }

    /// One cache-blocked slice of the batch. Phase A walks the block
    /// source-major — predictor columns, margin cores and the resulting
    /// deadlines, captured into the L1-resident block scratch. Phase B
    /// walks it combo-major, so each combination's contiguous deadline
    /// row and suspicion words are written in one run per block instead
    /// of one strided slot per heartbeat. The per-pair arithmetic is the
    /// same operations in the same order as [`observe_inner`], so the
    /// resulting state is bit-identical to the per-heartbeat path.
    fn observe_block(&mut self, block: &[HeartbeatObs]) -> usize {
        let m = self.combos.len();
        let mut fresh_count = 0usize;
        for (i, obs) in block.iter().enumerate() {
            let s = obs.source as usize;
            assert!(s < self.n_sources, "source {} out of range", obs.source);
            self.heartbeats += 1;

            let sigma = SimTime::ZERO + self.eta * obs.seq;
            let delay_ms = obs
                .arrival
                .checked_duration_since(sigma)
                .map_or(0.0, |d| d.as_millis_f64());

            // Sequence gap against the pre-update freshness bookkeeping,
            // exactly like `DetectorBank::observe_heartbeat`.
            let hs = self.highest_seq[s];
            let gap = if hs != SEQ_NONE && obs.seq > u64::from(hs) {
                obs.seq - u64::from(hs) - 1
            } else {
                0
            };
            self.advance_source(s, delay_ms, gap);

            let fresh = hs == SEQ_NONE || obs.seq > u64::from(hs);
            self.blk_fresh[i] = fresh;
            if !fresh {
                self.stale_heartbeats += 1;
                continue;
            }
            fresh_count += 1;
            assert!(
                obs.seq < u64::from(SEQ_NONE),
                "sequence {} exceeds the u32 freshness horizon",
                obs.seq
            );
            self.highest_seq[s] = obs.seq as u32;

            let sigma_next = SimTime::ZERO + self.eta * (obs.seq + 1);
            let mut min_dl = NO_DEADLINE;
            for idx in 0..m {
                let p_idx = self.pred_of_combo[idx];
                let margin = self.margin_of(s, idx);
                let timeout_ms = self.pred_scratch[p_idx] + margin;
                let delta = SimDuration::from_millis_f64(timeout_ms.max(0.0));
                let dl = deadline32((sigma_next + delta).as_micros());
                self.blk_dl[i * m + idx] = dl;
                min_dl = min_dl.min(dl);
            }
            // A later fresh heartbeat from the same source overwrites, as
            // in the per-heartbeat path.
            self.min_deadline[s] = min_dl;
        }

        self.blk_edges.clear();
        for idx in 0..m {
            let dl_base = idx * self.n_sources;
            let w_base = idx * self.words;
            for (i, obs) in block.iter().enumerate() {
                if !self.blk_fresh[i] {
                    continue;
                }
                let s = obs.source as usize;
                self.deadlines[dl_base + s] = self.blk_dl[i * m + idx];
                let w = w_base + s / 64;
                let bit = 1u64 << (s % 64);
                if self.suspecting[w] & bit != 0 {
                    self.suspecting[w] &= !bit;
                    self.dirty[w / 64] |= 1u64 << (w % 64);
                    self.blk_edges.push((i as u32, idx as u32));
                }
            }
        }

        // Re-establish the per-heartbeat reporting order: each batch
        // element's EndSuspect edges grouped together, in combo order.
        self.blk_edges.sort_unstable();
        for &(i, idx) in &self.blk_edges {
            self.transitions.push(SourceTransition {
                source: block[i as usize].source,
                combo: idx,
                transition: FdTransition::EndSuspect,
            });
        }
        fresh_count
    }

    fn observe_inner(&mut self, source: u32, seq: u64, arrival: SimTime) -> bool {
        let s = source as usize;
        assert!(s < self.n_sources, "source {source} out of range");
        self.heartbeats += 1;

        // Observed transmission delay, clamped exactly like the bank.
        let sigma = SimTime::ZERO + self.eta * seq;
        let delay_ms = arrival
            .checked_duration_since(sigma)
            .map_or(0.0, |d| d.as_millis_f64());

        // Sequence gap against the pre-update freshness bookkeeping,
        // exactly like `DetectorBank::observe_heartbeat`.
        let hs = self.highest_seq[s];
        let gap = if hs != SEQ_NONE && seq > u64::from(hs) {
            seq - u64::from(hs) - 1
        } else {
            0
        };
        self.advance_source(s, delay_ms, gap);

        let fresh = hs == SEQ_NONE || seq > u64::from(hs);
        if !fresh {
            self.stale_heartbeats += 1;
            return false;
        }
        assert!(
            seq < u64::from(SEQ_NONE),
            "sequence {seq} exceeds the u32 freshness horizon"
        );
        self.highest_seq[s] = seq as u32;

        // Fan out: M freshness points, suspicion edges, and the refreshed
        // freshest-deadline cache, one tight loop.
        let sigma_next = SimTime::ZERO + self.eta * (seq + 1);
        let mut min_dl = NO_DEADLINE;
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        for idx in 0..self.combos.len() {
            let p_idx = self.pred_of_combo[idx];
            let margin = self.margin_of(s, idx);
            let timeout_ms = self.pred_scratch[p_idx] + margin;
            let delta = SimDuration::from_millis_f64(timeout_ms.max(0.0));
            let dl = deadline32((sigma_next + delta).as_micros());
            self.deadlines[idx * self.n_sources + s] = dl;
            min_dl = min_dl.min(dl);
            let w = idx * self.words + word;
            if self.suspecting[w] & bit != 0 {
                self.suspecting[w] &= !bit;
                self.dirty[w / 64] |= 1u64 << (w % 64);
                self.transitions.push(SourceTransition {
                    source,
                    combo: idx as u32,
                    transition: FdTransition::EndSuspect,
                });
            }
        }
        self.min_deadline[s] = min_dl;
        true
    }

    /// Evaluates the freshness condition of every combination of `source`
    /// at `now` — the per-source deadline-timer path.
    ///
    /// O(1) while `now` is before the source's cached freshest deadline;
    /// scans the source's M combinations only when something can actually
    /// have expired. Returns the `StartSuspect` edges fired, in
    /// combination-index order.
    pub fn check_source_at(&mut self, source: u32, now: SimTime) -> &[SourceTransition] {
        self.transitions.clear();
        self.check_source_inner(source, now);
        &self.transitions
    }

    fn check_source_inner(&mut self, source: u32, now: SimTime) {
        let s = source as usize;
        assert!(s < self.n_sources, "source {source} out of range");
        let now_us = now.as_micros();
        if now_us < u64::from(self.min_deadline[s]) {
            return;
        }
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        let mut min_dl = NO_DEADLINE;
        for idx in 0..self.combos.len() {
            let w = idx * self.words + word;
            if self.suspecting[w] & bit != 0 {
                continue;
            }
            let dl = self.deadlines[idx * self.n_sources + s];
            if dl == NO_DEADLINE {
                continue;
            }
            if now_us >= u64::from(dl) {
                self.suspecting[w] |= bit;
                self.dirty[w / 64] |= 1u64 << (w % 64);
                self.transitions.push(SourceTransition {
                    source,
                    combo: idx as u32,
                    transition: FdTransition::StartSuspect,
                });
            } else {
                min_dl = min_dl.min(dl);
            }
        }
        self.min_deadline[s] = min_dl;
    }

    /// Evaluates the freshness condition of **every** (source, combo) pair
    /// at `now`: M contiguous array sweeps, the batch analog of calling
    /// [`DetectorBank::check_at`] on every source.
    ///
    /// Returns the `StartSuspect` edges fired, in ascending
    /// `(source, combo)` order — identical to checking each source's
    /// private bank in source order.
    ///
    /// [`DetectorBank::check_at`]: crate::bank::DetectorBank::check_at
    pub fn check_all_at(&mut self, now: SimTime) -> &[SourceTransition] {
        self.sweep_deadlines(now);
        self.transitions.clear();
        for i in 0..self.scan_fired.len() {
            let (source, combo) = self.scan_fired[i];
            self.transitions.push(SourceTransition {
                source,
                combo,
                transition: FdTransition::StartSuspect,
            });
        }
        &self.transitions
    }

    /// Clamps a scan instant onto the u32 deadline clock. Armed deadlines
    /// are strictly below [`NO_DEADLINE`] (asserted at arming), so a scan
    /// at or past `u32::MAX − 1` µs compares identically to one at the
    /// horizon while unarmed pairs can never fire.
    fn scan_now32(now: SimTime) -> u32 {
        now.as_micros().min(u64::from(NO_DEADLINE) - 1) as u32
    }

    /// Lane-swept core of the full freshness sweep. Each combination's
    /// contiguous deadline row is walked in 64-source lanes paired with
    /// the single suspicion word covering them: an inner branch-free loop
    /// builds a `due` bitmask (`NO_DEADLINE` can never fire because the
    /// scan instant is clamped below it), newly fired lanes are
    /// `due & !word`, and the word absorbs them with one OR. Only words
    /// with new fires pay any per-source work. Fired pairs land in
    /// `scan_fired`, sorted source-major (the per-source `DetectorBank`
    /// reporting order), and each fired source's freshest-deadline cache
    /// is refreshed.
    fn sweep_deadlines(&mut self, now: SimTime) {
        self.scan_fired.clear();
        let now_us = Self::scan_now32(now);
        let n = self.n_sources;
        let wpc = self.words;
        let scan = &mut self.scan_fired;
        let all_deadlines = &self.deadlines;
        let all_words = &mut self.suspecting;
        let dirty = &mut self.dirty;
        for idx in 0..self.combos.len() {
            let deadlines = &all_deadlines[idx * n..(idx + 1) * n];
            let words = &mut all_words[idx * wpc..(idx + 1) * wpc];
            let mut chunks = deadlines.chunks_exact(64);
            let mut w = 0usize;
            for lanes in chunks.by_ref() {
                // Two 32-lane halves: building a u32 mask from u32
                // compares keeps the mask element the same width as the
                // data, which is the shape LLVM turns into packed
                // compare + movemask.
                let mut lo = 0u32;
                for (lane, &dl) in lanes[..32].iter().enumerate() {
                    lo |= u32::from(dl <= now_us) << lane;
                }
                let mut hi = 0u32;
                for (lane, &dl) in lanes[32..].iter().enumerate() {
                    hi |= u32::from(dl <= now_us) << lane;
                }
                let due = u64::from(lo) | (u64::from(hi) << 32);
                let mut fired = due & !words[w];
                if fired != 0 {
                    words[w] |= fired;
                    let gw = idx * wpc + w;
                    dirty[gw / 64] |= 1u64 << (gw % 64);
                    let base = (w * 64) as u32;
                    while fired != 0 {
                        scan.push((base + fired.trailing_zeros(), idx as u32));
                        fired &= fired - 1;
                    }
                }
                w += 1;
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut due = 0u64;
                for (lane, &dl) in rem.iter().enumerate() {
                    due |= u64::from(dl <= now_us) << lane;
                }
                let mut fired = due & !words[w];
                if fired != 0 {
                    words[w] |= fired;
                    let gw = idx * wpc + w;
                    dirty[gw / 64] |= 1u64 << (gw % 64);
                    let base = (w * 64) as u32;
                    while fired != 0 {
                        scan.push((base + fired.trailing_zeros(), idx as u32));
                        fired &= fired - 1;
                    }
                }
            }
        }
        self.scan_fired.sort_unstable();
        let mut i = 0;
        while i < self.scan_fired.len() {
            let s = self.scan_fired[i].0 as usize;
            while i < self.scan_fired.len() && self.scan_fired[i].0 as usize == s {
                i += 1;
            }
            self.refresh_min_deadline(s);
        }
    }

    /// The pre-lane scalar full sweep, kept verbatim as the reference for
    /// the lane path's differential tests and before/after benchmarks.
    /// Semantically identical to [`check_all_at`](Self::check_all_at).
    #[doc(hidden)]
    pub fn check_all_at_scalar(&mut self, now: SimTime) -> &[SourceTransition] {
        self.transitions.clear();
        let now_us = Self::scan_now32(now);
        let n = self.n_sources;
        for idx in 0..self.combos.len() {
            let deadlines = &self.deadlines[idx * n..(idx + 1) * n];
            let words = &mut self.suspecting[idx * self.words..(idx + 1) * self.words];
            for (s, &dl) in deadlines.iter().enumerate() {
                if now_us < dl || dl == NO_DEADLINE {
                    continue;
                }
                let bit = 1u64 << (s % 64);
                if words[s / 64] & bit != 0 {
                    continue;
                }
                words[s / 64] |= bit;
                let gw = idx * self.words + s / 64;
                self.dirty[gw / 64] |= 1u64 << (gw % 64);
                self.transitions.push(SourceTransition {
                    source: s as u32,
                    combo: idx as u32,
                    transition: FdTransition::StartSuspect,
                });
            }
        }
        // Report source-major like a per-source loop over DetectorBanks
        // would, and refresh the cache of every source that fired.
        self.transitions
            .sort_unstable_by_key(|t| (t.source, t.combo));
        let mut i = 0;
        while i < self.transitions.len() {
            let s = self.transitions[i].source as usize;
            while i < self.transitions.len() && self.transitions[i].source as usize == s {
                i += 1;
            }
            self.refresh_min_deadline(s);
        }
        &self.transitions
    }

    /// [`check_all_at`](Self::check_all_at), but the `StartSuspect` edges
    /// are emitted straight into `sink` (stamped `now`) instead of being
    /// buffered in [`transitions`](Self::transitions). Returns the number
    /// of edges fired.
    pub fn check_all_into<S: EventSink>(&mut self, now: SimTime, sink: &mut S) -> usize {
        self.sweep_deadlines(now);
        for &(source, combo) in &self.scan_fired {
            sink.start_suspect(now, source, combo);
        }
        self.scan_fired.len()
    }

    /// [`check_source_at`](Self::check_source_at), emitting straight into
    /// `sink`. Returns the number of edges fired.
    pub fn check_source_into<S: EventSink>(
        &mut self,
        source: u32,
        now: SimTime,
        sink: &mut S,
    ) -> usize {
        self.transitions.clear();
        self.check_source_inner(source, now);
        for t in &self.transitions {
            sink.start_suspect(now, t.source, t.combo);
        }
        self.transitions.len()
    }

    /// [`observe_heartbeat`](Self::observe_heartbeat), emitting the
    /// `EndSuspect` edges straight into `sink` (stamped `arrival`).
    /// Returns `true` if the heartbeat was fresh.
    pub fn observe_heartbeat_into<S: EventSink>(
        &mut self,
        source: u32,
        seq: u64,
        arrival: SimTime,
        sink: &mut S,
    ) -> bool {
        let fresh = self.observe_heartbeat(source, seq, arrival);
        for t in &self.transitions {
            sink.end_suspect(arrival, t.source, t.combo);
        }
        fresh
    }

    /// [`observe_all`](Self::observe_all), emitting each heartbeat's
    /// `EndSuspect` edges straight into `sink` stamped with that
    /// heartbeat's arrival time. Returns the number of fresh heartbeats.
    pub fn observe_all_into<S: EventSink>(
        &mut self,
        batch: &[HeartbeatObs],
        sink: &mut S,
    ) -> usize {
        if self.n_sources < OBS_SCALAR_CROSSOVER {
            let mut fresh = 0usize;
            for obs in batch {
                self.transitions.clear();
                fresh += usize::from(self.observe_inner(obs.source, obs.seq, obs.arrival));
                for t in &self.transitions {
                    sink.end_suspect(obs.arrival, t.source, t.combo);
                }
            }
            self.transitions.clear();
            return fresh;
        }
        self.transitions.clear();
        let mut fresh = 0usize;
        for block in batch.chunks(OBS_BLOCK) {
            fresh += self.observe_block(block);
            // blk_edges still holds this block's (slot, combo) edges in
            // reporting order; the slot recovers the per-edge arrival.
            for &(i, idx) in &self.blk_edges {
                let obs = &block[i as usize];
                sink.end_suspect(obs.arrival, obs.source, idx);
            }
        }
        fresh
    }

    /// Recomputes `min_deadline[s]` exactly (min pending deadline over
    /// non-suspecting combinations).
    fn refresh_min_deadline(&mut self, s: usize) {
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        let mut min_dl = NO_DEADLINE;
        for idx in 0..self.combos.len() {
            if self.suspecting[idx * self.words + word] & bit != 0 {
                continue;
            }
            let dl = self.deadlines[idx * self.n_sources + s];
            if dl != NO_DEADLINE {
                min_dl = min_dl.min(dl);
            }
        }
        self.min_deadline[s] = min_dl;
    }
}

// ---------------------------------------------------------------------------
// Snapshot/restore: the warm-restart image of the whole bank.
// ---------------------------------------------------------------------------

/// Magic of the [`SourceBank`] snapshot format (the many-source sibling of
/// `FDBK`, the per-source [`BankSnapshot`](crate::snapshot::BankSnapshot)).
const SB_MAGIC: &[u8; 4] = b"FDSB";
/// Current format version. v2 = v1 plus the new-family predictor column
/// tags and a trailing Impact-FD weight section; v1 images (written
/// before the extended families existed) still restore bit-identically.
const SB_VERSION: u8 = 2;
/// Oldest version [`SourceBank::restore_bytes`] still accepts.
const SB_OLDEST_READABLE_VERSION: u8 = 1;

const SB_TAG_LAST: u8 = 0;
const SB_TAG_MEAN: u8 = 1;
const SB_TAG_WINMEAN: u8 = 2;
const SB_TAG_LPF: u8 = 3;
const SB_TAG_ARIMA: u8 = 4;
const SB_TAG_PHI: u8 = 5;
const SB_TAG_ADW: u8 = 6;
const SB_TAG_ML: u8 = 7;

use crate::snapshot::{read_arima, write_arima, Reader, SnapshotError, Writer};

impl SourceBank {
    /// Serializes the bank's complete mutable state — every predictor
    /// column (including full per-source ARIMA windows and models), the
    /// shared Welford core, the error cores, the combo-major deadline
    /// arrays, the suspicion bitmaps, freshness counters and the
    /// freshest-deadline cache — as a versioned little-endian byte image
    /// (`FDSB`, every `f64` via [`f64::to_bits`]).
    ///
    /// A bank restored from these bytes continues the heartbeat stream
    /// **bit-identically**: same forecasts, same deadlines, same edges.
    /// Per-call scratch (transition buffers, sweep/block scratch) is not
    /// state and is not stored.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(SB_MAGIC);
        w.u8(SB_VERSION);
        w.u64(self.eta.as_micros());
        w.u64(self.n_sources as u64);
        w.u64(self.combos.len() as u64);
        w.u64(self.n_pred as u64);
        for col in &self.cols {
            match col {
                PredCol::Last { last } => {
                    w.u8(SB_TAG_LAST);
                    w.vec_f64(last);
                }
                PredCol::Mean { mean } => {
                    w.u8(SB_TAG_MEAN);
                    w.vec_f64(mean);
                }
                PredCol::WinMean { cap, sum, ring } => {
                    w.u8(SB_TAG_WINMEAN);
                    w.u64(*cap as u64);
                    w.vec_f64(sum);
                    w.vec_f64(ring);
                }
                PredCol::Lpf { beta, pred } => {
                    w.u8(SB_TAG_LPF);
                    w.f64(*beta);
                    w.vec_f64(pred);
                }
                PredCol::Arima(col) => {
                    w.u8(SB_TAG_ARIMA);
                    w.u64(col.len() as u64);
                    for p in col {
                        write_arima(&mut w, &p.snapshot());
                    }
                }
                PredCol::Phi(col) => {
                    w.u8(SB_TAG_PHI);
                    w.u64(col.len() as u64);
                    for p in col {
                        let (ring, pos, len, sum, sumsq, start_left, flaps, mean_up, up_len, n) =
                            p.raw_parts();
                        w.vec_f64(&ring);
                        w.u32(pos);
                        w.u32(len);
                        w.f64(sum);
                        w.f64(sumsq);
                        w.u32(start_left);
                        w.u64(flaps);
                        w.f64(mean_up);
                        w.u64(up_len);
                        w.u64(n);
                    }
                }
                PredCol::Adw {
                    cap,
                    k,
                    sum,
                    sumsq,
                    ring,
                } => {
                    w.u8(SB_TAG_ADW);
                    w.u64(*cap as u64);
                    w.f64(*k);
                    w.vec_f64(sum);
                    w.vec_f64(sumsq);
                    w.vec_f64(ring);
                }
                PredCol::Ml {
                    lags,
                    rate,
                    w: weights,
                    hist,
                } => {
                    w.u8(SB_TAG_ML);
                    w.u64(*lags as u64);
                    w.f64(*rate);
                    w.vec_f64(weights);
                    w.vec_f64(hist);
                }
            }
        }
        for jac in &self.jac {
            match jac {
                Some(base) => {
                    w.u8(1);
                    w.vec_f64(base);
                }
                None => w.u8(0),
            }
        }
        for rto in &self.rto {
            match rto {
                Some(col) => {
                    w.u8(1);
                    w.vec_f64(&col.mu);
                    w.vec_f64(&col.dev);
                }
                None => w.u8(0),
            }
        }
        w.vec_u32(&self.ci.n);
        w.vec_f64(&self.ci.mean);
        w.vec_f64(&self.ci.m2);
        w.vec_f64(&self.ci.sigma);
        w.vec_f64(&self.ci.inner_sqrt);
        w.vec_u32(&self.deadlines);
        w.vec_u64(&self.suspecting);
        w.vec_u32(&self.highest_seq);
        w.vec_u32(&self.min_deadline);
        w.u64(self.heartbeats);
        w.u64(self.stale_heartbeats);
        // v2 tail: the Impact-FD weight section. A v1 image is exactly a
        // v2 image of an old-grid bank with this flag byte removed.
        match &self.impact_weights {
            Some(weights) => {
                w.u8(1);
                w.vec_f64(weights);
            }
            None => w.u8(0),
        }
        w.buf
    }

    /// Restores the state serialized by [`snapshot_bytes`] into this bank.
    ///
    /// The bank must have the **same shape** as the snapshotted one (η,
    /// source count, combination grid — configuration is validated, not
    /// stored): construct it with the same [`SourceBank::new`] arguments,
    /// then restore. Never panics on malformed input; truncated,
    /// corrupted, version-skewed or wrong-shape bytes yield a
    /// [`SnapshotError`] and leave the bank unspecified but safe (restore
    /// again, or discard it).
    ///
    /// [`snapshot_bytes`]: Self::snapshot_bytes
    pub fn restore_bytes(&mut self, data: &[u8]) -> Result<(), SnapshotError> {
        let mut r = Reader::new(data);
        if r.bytes(4)? != SB_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if !(SB_OLDEST_READABLE_VERSION..=SB_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        if r.u64()? != self.eta.as_micros() {
            return Err(SnapshotError::Mismatch("eta"));
        }
        if r.len()? != self.n_sources {
            return Err(SnapshotError::Mismatch("source count"));
        }
        if r.len()? != self.combos.len() {
            return Err(SnapshotError::Mismatch("combination count"));
        }
        if r.len()? != self.n_pred {
            return Err(SnapshotError::Mismatch("predictor count"));
        }
        let n = self.n_sources;
        let expect = |v: &[f64]| -> Result<(), SnapshotError> {
            if v.len() == n {
                Ok(())
            } else {
                Err(SnapshotError::Mismatch("column length"))
            }
        };
        for col in &mut self.cols {
            let tag = r.u8()?;
            match (tag, &mut *col) {
                (SB_TAG_LAST, PredCol::Last { last }) => {
                    let v = r.vec_f64()?;
                    expect(&v)?;
                    *last = v;
                }
                (SB_TAG_MEAN, PredCol::Mean { mean }) => {
                    let v = r.vec_f64()?;
                    expect(&v)?;
                    *mean = v;
                }
                (SB_TAG_WINMEAN, PredCol::WinMean { cap, sum, ring }) => {
                    if r.len()? != *cap {
                        return Err(SnapshotError::Mismatch("window capacity"));
                    }
                    let s = r.vec_f64()?;
                    expect(&s)?;
                    let rg = r.vec_f64()?;
                    if rg.len() != n * *cap {
                        return Err(SnapshotError::Mismatch("ring length"));
                    }
                    *sum = s;
                    *ring = rg;
                }
                (SB_TAG_LPF, PredCol::Lpf { beta, pred }) => {
                    if r.f64()?.to_bits() != beta.to_bits() {
                        return Err(SnapshotError::Mismatch("lpf beta"));
                    }
                    let v = r.vec_f64()?;
                    expect(&v)?;
                    *pred = v;
                }
                (SB_TAG_ARIMA, PredCol::Arima(col)) => {
                    if r.len()? != n {
                        return Err(SnapshotError::Mismatch("arima column length"));
                    }
                    let mut restored = Vec::with_capacity(n);
                    for _ in 0..n {
                        let snap = read_arima(&mut r)?;
                        restored.push(
                            ArimaPredictor::from_snapshot(snap)
                                .ok_or(SnapshotError::Invalid("arima state"))?,
                        );
                    }
                    *col = restored;
                }
                (SB_TAG_PHI, PredCol::Phi(col)) => {
                    if r.len()? != n {
                        return Err(SnapshotError::Mismatch("phi column length"));
                    }
                    let mut restored = Vec::with_capacity(n);
                    for cur in col.iter() {
                        let ring = r.vec_f64()?;
                        let pos = r.u32()?;
                        let len = r.u32()?;
                        let sum = r.f64()?;
                        let sumsq = r.f64()?;
                        let start_left = r.u32()?;
                        let flaps = r.u64()?;
                        let mean_up = r.f64()?;
                        let up_len = r.u64()?;
                        let n_obs = r.u64()?;
                        restored.push(
                            PhiAccrual::from_raw_parts(
                                cur.window(),
                                cur.threshold(),
                                cur.two_phase(),
                                ring,
                                pos,
                                len,
                                sum,
                                sumsq,
                                start_left,
                                flaps,
                                mean_up,
                                up_len,
                                n_obs,
                            )
                            .ok_or(SnapshotError::Invalid("phi state"))?,
                        );
                    }
                    *col = restored;
                }
                (
                    SB_TAG_ADW,
                    PredCol::Adw {
                        cap,
                        k,
                        sum,
                        sumsq,
                        ring,
                    },
                ) => {
                    if r.len()? != *cap {
                        return Err(SnapshotError::Mismatch("adaptive window capacity"));
                    }
                    if r.f64()?.to_bits() != k.to_bits() {
                        return Err(SnapshotError::Mismatch("adaptive k"));
                    }
                    let sv = r.vec_f64()?;
                    expect(&sv)?;
                    let sq = r.vec_f64()?;
                    expect(&sq)?;
                    let rg = r.vec_f64()?;
                    if rg.len() != n * *cap {
                        return Err(SnapshotError::Mismatch("adaptive ring length"));
                    }
                    *sum = sv;
                    *sumsq = sq;
                    *ring = rg;
                }
                (
                    SB_TAG_ML,
                    PredCol::Ml {
                        lags,
                        rate,
                        w: weights,
                        hist,
                    },
                ) => {
                    if r.len()? != *lags {
                        return Err(SnapshotError::Mismatch("ml lags"));
                    }
                    if r.f64()?.to_bits() != rate.to_bits() {
                        return Err(SnapshotError::Mismatch("ml rate"));
                    }
                    let stride = *lags + 2;
                    let wv = r.vec_f64()?;
                    if wv.len() != n * stride {
                        return Err(SnapshotError::Mismatch("ml weight arena length"));
                    }
                    let hv = r.vec_f64()?;
                    if hv.len() != n * *lags {
                        return Err(SnapshotError::Mismatch("ml history arena length"));
                    }
                    // The per-source rate slot is configuration riding in
                    // the arena: it must match the bank's.
                    for s in 0..n {
                        if wv[s * stride + stride - 1].to_bits() != rate.to_bits() {
                            return Err(SnapshotError::Invalid("ml state"));
                        }
                    }
                    *weights = wv;
                    *hist = hv;
                }
                (
                    SB_TAG_LAST | SB_TAG_MEAN | SB_TAG_WINMEAN | SB_TAG_LPF | SB_TAG_ARIMA
                    | SB_TAG_PHI | SB_TAG_ADW | SB_TAG_ML,
                    _,
                ) => {
                    return Err(SnapshotError::Mismatch("predictor kind"));
                }
                (t, _) => return Err(SnapshotError::BadTag(t)),
            }
        }
        for jac in &mut self.jac {
            match (r.u8()?, &mut *jac) {
                (1, Some(base)) => {
                    let v = r.vec_f64()?;
                    expect(&v)?;
                    *base = v;
                }
                (0, None) => {}
                (0 | 1, _) => return Err(SnapshotError::Mismatch("jac core layout")),
                (t, _) => return Err(SnapshotError::BadTag(t)),
            }
        }
        for rto in &mut self.rto {
            match (r.u8()?, &mut *rto) {
                (1, Some(col)) => {
                    let mu = r.vec_f64()?;
                    expect(&mu)?;
                    let dev = r.vec_f64()?;
                    expect(&dev)?;
                    col.mu = mu;
                    col.dev = dev;
                }
                (0, None) => {}
                (0 | 1, _) => return Err(SnapshotError::Mismatch("rto core layout")),
                (t, _) => return Err(SnapshotError::BadTag(t)),
            }
        }
        let ci_n = r.vec_u32()?;
        if ci_n.len() != n {
            return Err(SnapshotError::Mismatch("welford length"));
        }
        let ci_mean = r.vec_f64()?;
        expect(&ci_mean)?;
        let ci_m2 = r.vec_f64()?;
        expect(&ci_m2)?;
        let ci_sigma = r.vec_f64()?;
        expect(&ci_sigma)?;
        let ci_inner = r.vec_f64()?;
        expect(&ci_inner)?;
        let deadlines = r.vec_u32()?;
        if deadlines.len() != self.combos.len() * n {
            return Err(SnapshotError::Mismatch("deadline array length"));
        }
        let suspecting = r.vec_u64()?;
        if suspecting.len() != self.combos.len() * self.words {
            return Err(SnapshotError::Mismatch("suspicion bitmap length"));
        }
        // Bits past the last source are unreachable by observation; a
        // corrupt image must not smuggle them in (the Impact-FD weighted
        // popcount walks every set bit of a combination's row).
        let tail = n % 64;
        if tail != 0 && self.words > 0 {
            let ghost = !((1u64 << tail) - 1);
            for c in 0..self.combos.len() {
                if suspecting[(c + 1) * self.words - 1] & ghost != 0 {
                    return Err(SnapshotError::Invalid("suspicion tail bits"));
                }
            }
        }
        let highest_seq = r.vec_u32()?;
        if highest_seq.len() != n {
            return Err(SnapshotError::Mismatch("freshness length"));
        }
        let min_deadline = r.vec_u32()?;
        if min_deadline.len() != n {
            return Err(SnapshotError::Mismatch("deadline cache length"));
        }
        let heartbeats = r.u64()?;
        let stale_heartbeats = r.u64()?;
        // v1 images end here; v2 appends the Impact-FD weight section.
        let impact_weights = if version >= 2 {
            match r.u8()? {
                0 => None,
                1 => {
                    let v = r.vec_f64()?;
                    expect(&v)?;
                    if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
                        return Err(SnapshotError::Invalid("impact weights"));
                    }
                    Some(v)
                }
                t => return Err(SnapshotError::BadTag(t)),
            }
        } else {
            None
        };
        if r.remaining() > 0 {
            return Err(SnapshotError::TrailingBytes(r.remaining()));
        }
        self.ci.n = ci_n;
        self.ci.mean = ci_mean;
        self.ci.m2 = ci_m2;
        self.ci.sigma = ci_sigma;
        self.ci.inner_sqrt = ci_inner;
        self.deadlines = deadlines;
        self.suspecting = suspecting;
        self.highest_seq = highest_seq;
        self.min_deadline = min_deadline;
        self.heartbeats = heartbeats;
        self.stale_heartbeats = stale_heartbeats;
        self.impact_total = impact_weights
            .as_ref()
            .map_or(self.n_sources as f64, |w| w.iter().sum());
        self.impact_weights = impact_weights;
        // Scratch is per-call, not state — but stale transitions from the
        // pre-restore life must not leak into the next report.
        self.transitions.clear();
        self.scan_fired.clear();
        // A restored bank cannot know which words changed relative to an
        // incremental publisher's last publication, so the next publish
        // must treat every word as dirty (warm-restart safety: the dirty
        // set must stay a superset of the words that actually changed).
        self.dirty = all_dirty(self.suspecting.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::DetectorBank;
    use crate::combinations::all_combinations;

    fn eta() -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn arrival(seq: u64, delay_ms: u64) -> SimTime {
        SimTime::ZERO + eta() * seq + SimDuration::from_millis(delay_ms)
    }

    /// Deterministic per-source delay pattern with enough spread to drive
    /// suspicion edges on some sources and not others.
    fn delay_for(source: u32, seq: u64) -> u64 {
        150 + u64::from(source) * 17 + (seq * (53 + u64::from(source))) % 130
    }

    #[test]
    fn paper_grid_shape() {
        let bank = SourceBank::paper_grid(eta(), 12);
        assert_eq!(bank.len(), 30);
        assert_eq!(bank.sources(), 12);
        assert_eq!(bank.distinct_predictor_count(), 5);
        assert!(!bank.is_empty());
        assert_eq!(bank.eta(), eta());
        assert_eq!(bank.next_wakeup(3), None);
    }

    /// The core equivalence claim: a SourceBank over N sources is
    /// bit-identical to N private DetectorBanks — deadlines, margins,
    /// forecasts, suspicion flags and transition sequences — through a
    /// schedule with skips (suspicion edges), stale heartbeats and
    /// periodic full checks.
    #[test]
    fn matches_independent_detector_banks() {
        let combos = all_combinations();
        let n: u32 = 7;
        let mut source_bank = SourceBank::new(&combos, eta(), n as usize);
        let mut banks: Vec<DetectorBank> =
            (0..n).map(|_| DetectorBank::new(&combos, eta())).collect();

        for seq in 0..40u64 {
            for source in 0..n {
                // Source 2 goes silent for a stretch; source 5 replays a
                // stale heartbeat every 8th step.
                if source == 2 && (10..20).contains(&seq) {
                    continue;
                }
                let (use_seq, at) = if source == 5 && seq % 8 == 7 && seq > 0 {
                    (seq - 1, arrival(seq, delay_for(source, seq)))
                } else {
                    (seq, arrival(seq, delay_for(source, seq)))
                };
                // Check-then-observe, like the monitor's event loop.
                let a = banks[source as usize].check_at(at).to_vec();
                let b = source_bank.check_source_at(source, at).to_vec();
                assert_eq!(a.len(), b.len(), "check count s{source} q{seq}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.combo as u32, y.combo);
                    assert_eq!(x.transition, y.transition);
                    assert_eq!(y.source, source);
                }
                let fresh_a = banks[source as usize].observe_heartbeat(use_seq, at);
                let ends_a: Vec<usize> = banks[source as usize]
                    .transitions()
                    .iter()
                    .map(|t| t.combo)
                    .collect();
                let fresh_b = source_bank.observe_heartbeat(source, use_seq, at);
                let ends_b: Vec<usize> = source_bank
                    .transitions()
                    .iter()
                    .map(|t| t.combo as usize)
                    .collect();
                assert_eq!(fresh_a, fresh_b, "freshness s{source} q{seq}");
                assert_eq!(ends_a, ends_b, "EndSuspect s{source} q{seq}");
            }
            for source in 0..n {
                let bank = &banks[source as usize];
                for idx in 0..combos.len() {
                    assert_eq!(
                        bank.next_deadline(idx),
                        source_bank.next_deadline(source, idx),
                        "deadline s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.margin_ms(idx).to_bits(),
                        source_bank.margin_ms(source, idx).to_bits(),
                        "margin s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.predicted_delay_ms(idx).to_bits(),
                        source_bank.predicted_delay_ms(source, idx).to_bits(),
                    );
                    assert_eq!(
                        bank.is_suspecting(idx),
                        source_bank.is_suspecting(source, idx)
                    );
                }
            }
        }
        let total: u64 = banks.iter().map(|b| b.heartbeats()).sum();
        assert_eq!(source_bank.heartbeats(), total);
        let stale: u64 = banks.iter().map(|b| b.stale_heartbeats()).sum();
        assert_eq!(source_bank.stale_heartbeats(), stale);
    }

    /// `observe_all` is the same machine as per-heartbeat calls: identical
    /// state, with the batch's transitions concatenated in batch order.
    #[test]
    fn batch_observe_equals_looped_observe() {
        let n = 9usize;
        let mut batched = SourceBank::paper_grid(eta(), n);
        let mut looped = SourceBank::paper_grid(eta(), n);

        for seq in 0..25u64 {
            let batch: Vec<HeartbeatObs> = (0..n as u32)
                .map(|source| HeartbeatObs {
                    source,
                    seq,
                    arrival: arrival(seq, delay_for(source, seq)),
                })
                .collect();
            let fresh = batched.observe_all(&batch);
            let mut loop_fresh = 0;
            let mut loop_edges = Vec::new();
            for obs in &batch {
                if looped.observe_heartbeat(obs.source, obs.seq, obs.arrival) {
                    loop_fresh += 1;
                }
                loop_edges.extend_from_slice(looped.transitions());
            }
            assert_eq!(fresh, loop_fresh);
            assert_eq!(batched.transitions(), &loop_edges[..]);
        }
        for source in 0..n as u32 {
            for idx in 0..30 {
                assert_eq!(
                    batched.next_deadline(source, idx),
                    looped.next_deadline(source, idx)
                );
                assert_eq!(
                    batched.margin_ms(source, idx).to_bits(),
                    looped.margin_ms(source, idx).to_bits()
                );
            }
        }
    }

    /// The blocked batch path is the same machine as the scalar one even
    /// when the bank is below the dispatch crossover: force both paths on
    /// mirrored banks and compare the full snapshot plus edge streams.
    #[test]
    fn blocked_and_scalar_batch_paths_are_bit_identical() {
        let n = 9usize;
        let mut blocked = SourceBank::paper_grid(eta(), n);
        let mut scalar = SourceBank::paper_grid(eta(), n);
        assert!(n < OBS_SCALAR_CROSSOVER, "test relies on scalar dispatch");
        for seq in 0..25u64 {
            // Source 4 skips a beat mid-run so suspicion edges fire.
            let batch: Vec<HeartbeatObs> = (0..n as u32)
                .filter(|&s| !(s == 4 && (8..12).contains(&seq)))
                .map(|source| HeartbeatObs {
                    source,
                    seq,
                    arrival: arrival(seq, delay_for(source, seq)),
                })
                .collect();
            let check_at = arrival(seq, 400);
            let fired_b = blocked.check_all_at(check_at).to_vec();
            let fired_s = scalar.check_all_at(check_at).to_vec();
            assert_eq!(fired_b, fired_s);
            assert_eq!(
                blocked.observe_all_blocked(&batch),
                scalar.observe_all(&batch)
            );
            assert_eq!(blocked.transitions(), scalar.transitions());
            assert_eq!(blocked.dirty_words(), scalar.dirty_words());
        }
        assert_eq!(blocked.snapshot_bytes(), scalar.snapshot_bytes());
    }

    /// Dirty words track exactly the suspicion words that change between
    /// publications, and never miss one: replaying any mutation sequence,
    /// the dirty set names a superset of the words that differ from the
    /// last `clear_dirty` checkpoint.
    #[test]
    fn dirty_words_cover_every_suspicion_change() {
        let n = 70usize; // two bitmap words per combo
        let mut bank = SourceBank::paper_grid(eta(), n);
        // A fresh bank is fully dirty (first publish must be full).
        let total_words = bank.len() * bank.words_per_combo();
        let set_bits: u32 = bank.dirty_words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(set_bits as usize, total_words);

        let checkpoint = |b: &SourceBank| b.suspect_words().to_vec();
        let verify = |b: &SourceBank, before: &[u64]| {
            for (w, (&now, &then)) in b.suspect_words().iter().zip(before).enumerate() {
                if now != then {
                    assert!(
                        b.dirty_words()[w / 64] & (1u64 << (w % 64)) != 0,
                        "word {w} changed but was not marked dirty"
                    );
                }
            }
        };

        bank.clear_dirty();
        assert!(bank.dirty_words().iter().all(|&w| w == 0));
        let mut before = checkpoint(&bank);

        // Heartbeats arm deadlines; a long silence then fires suspicions
        // through the lane sweep, the scalar sweep and per-source checks.
        for seq in 0..3u64 {
            let batch: Vec<HeartbeatObs> = (0..n as u32)
                .map(|source| HeartbeatObs {
                    source,
                    seq,
                    arrival: arrival(seq, delay_for(source, seq)),
                })
                .collect();
            bank.observe_all(&batch);
        }
        verify(&bank, &before);

        bank.clear_dirty();
        before = checkpoint(&bank);
        let late = SimTime::from_secs(120);
        assert!(!bank.check_all_at(late).is_empty(), "sweep fired nothing");
        verify(&bank, &before);
        let changed: usize = bank
            .suspect_words()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0);

        // Fresh heartbeats clear suspicion again: EndSuspect edges via the
        // batch path must mark their words too.
        bank.clear_dirty();
        before = checkpoint(&bank);
        let batch: Vec<HeartbeatObs> = (0..n as u32)
            .map(|source| HeartbeatObs {
                source,
                seq: 200,
                arrival: late + SimDuration::from_millis(u64::from(source)),
            })
            .collect();
        assert!(bank.observe_all(&batch) > 0);
        verify(&bank, &before);

        // A restored bank is fully dirty again.
        let snap = bank.snapshot_bytes();
        bank.clear_dirty();
        bank.restore_bytes(&snap).expect("restore");
        let set_bits: u32 = bank.dirty_words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(set_bits as usize, total_words);
    }

    /// `check_all_at` fires the same edges as per-source checks, reported
    /// source-major.
    #[test]
    fn sweep_check_matches_per_source_checks() {
        let n = 6usize;
        let mut swept = SourceBank::paper_grid(eta(), n);
        let mut stepped = SourceBank::paper_grid(eta(), n);
        for source in 0..n as u32 {
            // Sources 0..3 heartbeat once; the rest never do.
            if source < 3 {
                swept.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
                stepped.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
            }
        }
        let late = SimTime::from_secs(90);
        let fired = swept.check_all_at(late).to_vec();
        let mut expected = Vec::new();
        for source in 0..n as u32 {
            expected.extend_from_slice(stepped.check_source_at(source, late));
        }
        assert_eq!(fired, expected);
        // Only the three heartbeating sources had armed deadlines.
        assert_eq!(fired.len(), 3 * 30);
        assert!((0..3u32).all(|s| swept.is_suspecting(s, 0)));
        assert!((3..6u32).all(|s| !swept.is_suspecting(s, 0)));
        // Idempotent while suspecting.
        assert!(swept.check_all_at(SimTime::from_secs(91)).is_empty());
    }

    /// The freshest-deadline cache answers early checks in O(1) without
    /// touching per-combo state, and `next_wakeup` exposes the earliest
    /// instant a check can fire.
    #[test]
    fn min_deadline_cache_gates_checks() {
        let mut bank = SourceBank::paper_grid(eta(), 3);
        bank.observe_heartbeat(1, 0, arrival(0, 200));
        let wakeup = bank.next_wakeup(1).expect("armed after heartbeat");
        assert!(bank
            .check_source_at(1, wakeup - SimDuration::from_micros(1))
            .is_empty());
        // At the wakeup instant at least one combination fires.
        assert!(!bank.check_source_at(1, wakeup).is_empty());
        // Sources without heartbeats never fire.
        assert!(bank.check_source_at(0, SimTime::from_secs(900)).is_empty());
    }

    /// The exported bitmap words agree bit-for-bit with `is_suspecting`.
    #[test]
    fn suspect_words_mirror_is_suspecting() {
        let n = 70usize; // spans two words per combo
        let mut bank = SourceBank::paper_grid(eta(), n);
        assert_eq!(bank.words_per_combo(), 2);
        assert_eq!(bank.suspect_words().len(), 30 * 2);
        for source in 0..n as u32 {
            if source % 3 != 0 {
                bank.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
            }
        }
        bank.check_all_at(SimTime::from_secs(120));
        let words = bank.suspect_words().to_vec();
        for combo in 0..30 {
            for source in 0..n as u32 {
                let s = source as usize;
                let bit = words[combo * 2 + s / 64] & (1u64 << (s % 64)) != 0;
                assert_eq!(bit, bank.is_suspecting(source, combo), "s{source} c{combo}");
            }
        }
    }

    /// The lane-swept full scan fires the same edges and leaves the same
    /// state as the scalar reference sweep, including across partial
    /// trailing words and repeated sweeps.
    #[test]
    fn lane_sweep_matches_scalar_sweep() {
        for n in [1usize, 63, 64, 65, 130] {
            let mut lane = SourceBank::paper_grid(eta(), n);
            let mut scalar = SourceBank::paper_grid(eta(), n);
            for seq in 0..4u64 {
                for source in 0..n as u32 {
                    // A ragged subset heartbeats each cycle so deadlines
                    // and suspicion flags diverge across sources.
                    if (u64::from(source) + seq) % 3 != 0 {
                        let at = arrival(seq, delay_for(source, seq));
                        lane.observe_heartbeat(source, seq, at);
                        scalar.observe_heartbeat(source, seq, at);
                    }
                }
                // Sweep at a time that catches some but not all deadlines.
                let mid = SimTime::ZERO + eta() * (seq + 1) + SimDuration::from_millis(400);
                let fired = lane.check_all_at(mid).to_vec();
                let expected = scalar.check_all_at_scalar(mid).to_vec();
                assert_eq!(fired, expected, "n={n} seq={seq}");
            }
            let late = SimTime::from_secs(900);
            assert_eq!(
                lane.check_all_at(late).to_vec(),
                scalar.check_all_at_scalar(late).to_vec(),
                "n={n} late sweep"
            );
            for source in 0..n as u32 {
                assert_eq!(lane.next_wakeup(source), scalar.next_wakeup(source));
                for idx in 0..30 {
                    assert_eq!(
                        lane.is_suspecting(source, idx),
                        scalar.is_suspecting(source, idx),
                        "s{source} c{idx}"
                    );
                }
            }
        }
    }

    /// The sink-emission variants report exactly the buffered transitions,
    /// stamped with the right instants.
    #[test]
    fn sink_paths_mirror_buffered_paths() {
        use fd_stat::RetainedKind;

        let n = 5usize;
        let mut sunk = SourceBank::paper_grid(eta(), n);
        let mut buffered = SourceBank::paper_grid(eta(), n);
        let mut sink = fd_stat::RetainSink::new();

        for source in 0..n as u32 {
            let at = arrival(0, delay_for(source, 0));
            assert_eq!(
                sunk.observe_heartbeat_into(source, 0, at, &mut sink),
                buffered.observe_heartbeat(source, 0, at)
            );
        }
        let late = SimTime::from_secs(60);
        let fired = sunk.check_all_into(late, &mut sink);
        assert_eq!(fired, buffered.check_all_at(late).len());
        let starts: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| matches!(e.kind, RetainedKind::StartSuspect(_)))
            .collect();
        assert_eq!(starts.len(), fired);
        assert!(starts.iter().all(|e| e.at == late));
        assert_eq!(
            starts
                .iter()
                .map(|e| {
                    let RetainedKind::StartSuspect(c) = e.kind else {
                        unreachable!()
                    };
                    (e.source, c)
                })
                .collect::<Vec<_>>(),
            buffered
                .transitions()
                .iter()
                .map(|t| (t.source, t.combo))
                .collect::<Vec<_>>()
        );

        // Fresh heartbeats now clear the suspicions: EndSuspect edges
        // arrive through the sink stamped with each arrival.
        let mut sink2 = fd_stat::RetainSink::new();
        let batch: Vec<HeartbeatObs> = (0..n as u32)
            .map(|source| HeartbeatObs {
                source,
                seq: 70, // past the sweep instant
                arrival: late + SimDuration::from_millis(100 + u64::from(source)),
            })
            .collect();
        assert_eq!(
            sunk.observe_all_into(&batch, &mut sink2),
            buffered.observe_all(&batch)
        );
        let ends: Vec<_> = sink2
            .events()
            .iter()
            .map(|e| {
                let RetainedKind::EndSuspect(c) = e.kind else {
                    panic!("only EndSuspect expected, got {:?}", e.kind)
                };
                (e.source, c, e.at)
            })
            .collect();
        assert_eq!(
            ends,
            buffered
                .transitions()
                .iter()
                .map(|t| (t.source, t.combo, batch[t.source as usize].arrival))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "heartbeat period must be positive")]
    fn zero_eta_rejected() {
        let _ = SourceBank::new(&all_combinations(), SimDuration::ZERO, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let mut bank = SourceBank::paper_grid(eta(), 2);
        bank.observe_heartbeat(2, 0, SimTime::from_millis(100));
    }

    /// A mid-stream bank, with live suspicions and armed deadlines, for the
    /// snapshot tests.
    fn warm_bank(n: usize, cycles: u64) -> SourceBank {
        let mut bank = SourceBank::paper_grid(eta(), n);
        for seq in 0..cycles {
            for source in 0..n as u32 {
                // A ragged subset heartbeats so suspicions accumulate.
                if (u64::from(source) + seq) % 4 != 0 {
                    bank.observe_heartbeat(source, seq, arrival(seq, delay_for(source, seq)));
                }
            }
            let mid = SimTime::ZERO + eta() * (seq + 1) + SimDuration::from_millis(350);
            bank.check_all_at(mid);
        }
        bank
    }

    /// The snapshot acceptance criterion: a restored bank continues the
    /// stream bit-identically to the bank it was taken from — same
    /// observables immediately, same edges, forecasts and deadlines after
    /// more traffic.
    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let n = 7usize;
        let cut = 20u64;
        let mut original = warm_bank(n, cut);
        let bytes = original.snapshot_bytes();
        let mut restored = SourceBank::paper_grid(eta(), n);
        restored.restore_bytes(&bytes).expect("restore");

        assert_eq!(restored.heartbeats(), original.heartbeats());
        assert_eq!(restored.stale_heartbeats(), original.stale_heartbeats());
        for source in 0..n as u32 {
            assert_eq!(restored.next_wakeup(source), original.next_wakeup(source));
            for idx in 0..30 {
                assert_eq!(
                    restored.next_deadline(source, idx),
                    original.next_deadline(source, idx)
                );
                assert_eq!(
                    restored.is_suspecting(source, idx),
                    original.is_suspecting(source, idx)
                );
                assert_eq!(
                    restored.predicted_delay_ms(source, idx).to_bits(),
                    original.predicted_delay_ms(source, idx).to_bits()
                );
                assert_eq!(
                    restored.margin_ms(source, idx).to_bits(),
                    original.margin_ms(source, idx).to_bits()
                );
            }
        }

        // Continue both banks through further cycles, including checks;
        // every edge and every observable must stay identical.
        for seq in cut..cut + 15 {
            for source in 0..n as u32 {
                let at = arrival(seq, delay_for(source, seq));
                let a = original.check_source_at(source, at).to_vec();
                let b = restored.check_source_at(source, at).to_vec();
                assert_eq!(a, b, "check diverged s{source} q{seq}");
                original.observe_heartbeat(source, seq, at);
                let ea = original.transitions().to_vec();
                restored.observe_heartbeat(source, seq, at);
                assert_eq!(
                    ea,
                    restored.transitions(),
                    "edges diverged s{source} q{seq}"
                );
            }
        }
        assert_eq!(
            original.snapshot_bytes(),
            restored.snapshot_bytes(),
            "post-restore trajectories diverged"
        );
    }

    #[test]
    fn snapshot_truncation_and_corruption_never_panic() {
        let bytes = warm_bank(3, 12).snapshot_bytes();
        for cut in 0..bytes.len().min(600) {
            let err = SourceBank::paper_grid(eta(), 3)
                .restore_bytes(&bytes[..cut])
                .unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut={cut}: {err:?}"
            );
        }
        // Tail cuts (past the cheap prefix) and single-byte flips: never a
        // panic, always an error or a clean decode.
        for cut in (0..bytes.len()).rev().take(200) {
            assert!(SourceBank::paper_grid(eta(), 3)
                .restore_bytes(&bytes[..cut])
                .is_err());
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let _ = SourceBank::paper_grid(eta(), 3).restore_bytes(&bad);
        }
    }

    #[test]
    fn snapshot_shape_mismatches_rejected() {
        let bytes = warm_bank(4, 10).snapshot_bytes();
        // Wrong source count.
        assert_eq!(
            SourceBank::paper_grid(eta(), 5)
                .restore_bytes(&bytes)
                .unwrap_err(),
            SnapshotError::Mismatch("source count")
        );
        // Wrong eta.
        assert_eq!(
            SourceBank::paper_grid(SimDuration::from_secs(2), 4)
                .restore_bytes(&bytes)
                .unwrap_err(),
            SnapshotError::Mismatch("eta")
        );
        // Version skew.
        let mut skewed = bytes.clone();
        skewed[4] = 99;
        assert_eq!(
            SourceBank::paper_grid(eta(), 4)
                .restore_bytes(&skewed)
                .unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            SourceBank::paper_grid(eta(), 4)
                .restore_bytes(&long)
                .unwrap_err(),
            SnapshotError::TrailingBytes(1)
        );
        // A healthy restore still works after all the failures above.
        let mut ok = SourceBank::paper_grid(eta(), 4);
        ok.restore_bytes(&bytes).expect("clean restore");
        assert_eq!(ok.snapshot_bytes(), bytes);
    }

    /// The bit-identity claim extended to the new families: over the
    /// 54-combination extended grid — φ-accrual (both lifecycles),
    /// adaptive μ+Kσ and the online model — a SourceBank matches N
    /// private DetectorBanks through a schedule whose silences are long
    /// enough to trip the φ flap lifecycle.
    #[test]
    fn extended_grid_matches_independent_detector_banks() {
        let combos = crate::combinations::extended_combinations();
        let n: u32 = 6;
        let mut source_bank = SourceBank::new(&combos, eta(), n as usize);
        let mut banks: Vec<DetectorBank> =
            (0..n).map(|_| DetectorBank::new(&combos, eta())).collect();

        for seq in 0..45u64 {
            for source in 0..n {
                // Source 1 flaps twice (gaps of 6 and 5 — both past
                // PHI_FLAP_GAP_MIN); source 3 flaps once; source 5
                // replays a stale heartbeat every 9th step (gap 0 path).
                if source == 1 && ((10..16).contains(&seq) || (28..33).contains(&seq)) {
                    continue;
                }
                if source == 3 && (20..24).contains(&seq) {
                    continue;
                }
                let use_seq = if source == 5 && seq % 9 == 8 {
                    seq - 1
                } else {
                    seq
                };
                let at = arrival(seq, delay_for(source, seq));
                let a = banks[source as usize].check_at(at).to_vec();
                let b = source_bank.check_source_at(source, at).to_vec();
                assert_eq!(a.len(), b.len(), "check count s{source} q{seq}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.combo as u32, y.combo);
                    assert_eq!(x.transition, y.transition);
                }
                let fresh_a = banks[source as usize].observe_heartbeat(use_seq, at);
                let ends_a: Vec<usize> = banks[source as usize]
                    .transitions()
                    .iter()
                    .map(|t| t.combo)
                    .collect();
                let fresh_b = source_bank.observe_heartbeat(source, use_seq, at);
                let ends_b: Vec<usize> = source_bank
                    .transitions()
                    .iter()
                    .map(|t| t.combo as usize)
                    .collect();
                assert_eq!(fresh_a, fresh_b, "freshness s{source} q{seq}");
                assert_eq!(ends_a, ends_b, "EndSuspect s{source} q{seq}");
            }
            for source in 0..n {
                let bank = &banks[source as usize];
                for idx in 0..combos.len() {
                    assert_eq!(
                        bank.next_deadline(idx),
                        source_bank.next_deadline(source, idx),
                        "deadline s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.predicted_delay_ms(idx).to_bits(),
                        source_bank.predicted_delay_ms(source, idx).to_bits(),
                        "forecast s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.margin_ms(idx).to_bits(),
                        source_bank.margin_ms(source, idx).to_bits(),
                        "margin s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.is_suspecting(idx),
                        source_bank.is_suspecting(source, idx)
                    );
                }
            }
        }
    }

    /// The blocked batch path carries the gap signal exactly like the
    /// scalar path: with new-family combos and flap-length silences in
    /// the schedule, both paths stay bit-identical.
    #[test]
    fn blocked_path_threads_the_gap_signal() {
        let combos = crate::combinations::extended_combinations();
        let n = 8usize;
        let mut blocked = SourceBank::new(&combos, eta(), n);
        let mut scalar = SourceBank::new(&combos, eta(), n);
        for seq in 0..30u64 {
            let batch: Vec<HeartbeatObs> = (0..n as u32)
                .filter(|&s| !(s == 2 && (6..11).contains(&seq)))
                .filter(|&s| !(s == 7 && (15..21).contains(&seq)))
                .map(|source| HeartbeatObs {
                    source,
                    seq,
                    arrival: arrival(seq, delay_for(source, seq)),
                })
                .collect();
            let check_at = arrival(seq, 700);
            assert_eq!(
                blocked.check_all_at(check_at).to_vec(),
                scalar.check_all_at(check_at).to_vec()
            );
            assert_eq!(
                blocked.observe_all_blocked(&batch),
                scalar.observe_all(&batch)
            );
            assert_eq!(blocked.transitions(), scalar.transitions());
        }
        assert_eq!(blocked.snapshot_bytes(), scalar.snapshot_bytes());
    }

    /// The Impact-FD plane: trust is the weighted complement of the
    /// suspicion bitmap, weights are sanitized, and the unweighted
    /// default counts sources.
    #[test]
    fn impact_trust_is_weighted_popcount_complement() {
        let mut bank = SourceBank::paper_grid(eta(), 5);
        for s in 0..5u32 {
            bank.observe_heartbeat(s, 0, arrival(0, 150 + u64::from(s)));
        }
        // Unweighted: every source weighs 1.
        assert_eq!(bank.impact_total(), 5.0);
        assert_eq!(bank.impact_trust(0), 5.0);
        assert!(bank.impact_accepts(0, 5.0));

        // Nothing arrives: every pair suspects, trust collapses to 0.
        bank.check_all_at(SimTime::from_secs(60));
        assert_eq!(bank.impact_trust(0), 0.0);
        assert!(!bank.impact_accepts(0, 1.0));

        // Weighted plane; NaN and negative entries contribute 0.
        bank.set_impact_weights(&[4.0, 1.0, f64::NAN, -3.0, 0.5]);
        assert_eq!(bank.impact_weights().unwrap(), &[4.0, 1.0, 0.0, 0.0, 0.5]);
        assert_eq!(bank.impact_total(), 5.5);
        assert_eq!(bank.impact_trust(0), 0.0);

        // Sources 0 and 2 recover: combo 0 trusts weight 4.0 + 0.0.
        bank.observe_heartbeat(0, 1, arrival(1, 150));
        bank.observe_heartbeat(2, 1, arrival(1, 152));
        assert_eq!(bank.impact_trust(0), 4.0);
        assert!(bank.impact_accepts(0, 4.0));
        assert!(!bank.impact_accepts(0, 4.5));

        bank.clear_impact_weights();
        assert_eq!(bank.impact_trust(0), 2.0);
        assert_eq!(bank.impact_total(), 5.0);
    }

    #[test]
    #[should_panic(expected = "impact weights must cover every source")]
    fn impact_weights_must_match_source_count() {
        SourceBank::paper_grid(eta(), 3).set_impact_weights(&[1.0, 2.0]);
    }

    /// FDSB v1 backward compatibility: a v1 image (written before the
    /// extended families and the impact tail existed) restores
    /// bit-identically, and malformed v2 tails are rejected totally.
    #[test]
    fn snapshot_v1_bytes_still_restore_bit_identically() {
        let original = warm_bank(5, 14);
        let v2 = original.snapshot_bytes();
        assert_eq!(v2[4], 2, "current format version");
        assert_eq!(*v2.last().unwrap(), 0, "weightless tail is one flag byte");

        // For the old predictor tags the v2 body is byte-identical to v1
        // plus the impact tail, so rewriting the version byte and
        // dropping the tail reconstructs a genuine v1 image.
        let mut v1 = v2[..v2.len() - 1].to_vec();
        v1[4] = 1;
        let mut restored = SourceBank::paper_grid(eta(), 5);
        restored.restore_bytes(&v1).expect("v1 restore");
        assert_eq!(restored.snapshot_bytes(), v2, "v1 state ≠ v2 state");
        assert_eq!(restored.impact_weights(), None);

        // A bad impact flag byte in a v2 image errors, never panics.
        let mut bad_flag = v2.clone();
        *bad_flag.last_mut().unwrap() = 9;
        assert_eq!(
            SourceBank::paper_grid(eta(), 5)
                .restore_bytes(&bad_flag)
                .unwrap_err(),
            SnapshotError::BadTag(9)
        );

        // Weights round-trip; a NaN smuggled into the weight section is
        // rejected as invalid rather than poisoning the trust value.
        let mut weighted = warm_bank(5, 14);
        weighted.set_impact_weights(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let wb = weighted.snapshot_bytes();
        let mut back = SourceBank::paper_grid(eta(), 5);
        back.restore_bytes(&wb).expect("weighted restore");
        assert_eq!(back.impact_weights().unwrap(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(back.impact_total(), 15.0);
        let mut nan = wb.clone();
        let off = nan.len() - 8; // last weight's 8 little-endian bytes
        nan[off..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            SourceBank::paper_grid(eta(), 5)
                .restore_bytes(&nan)
                .unwrap_err(),
            SnapshotError::Invalid("impact weights")
        );
    }

    /// The extended grid's snapshot round-trips exactly — φ lifecycle
    /// state (mid-start-phase), ADWIN sums and the ML arenas all survive
    /// — and truncating the image anywhere never panics.
    #[test]
    fn extended_grid_snapshot_round_trips() {
        let combos = crate::combinations::extended_combinations();
        let n = 4usize;
        let mut original = SourceBank::new(&combos, eta(), n);
        original.set_impact_weights(&[2.0, 1.0, 1.0, 0.5]);
        for seq in 0..26u64 {
            for source in 0..n as u32 {
                // Source 2's silence trips the φ flap machinery so the
                // snapshot carries live start-phase state.
                if source == 2 && (12..17).contains(&seq) {
                    continue;
                }
                original.observe_heartbeat(source, seq, arrival(seq, delay_for(source, seq)));
            }
            let mid = SimTime::ZERO + eta() * (seq + 1) + SimDuration::from_millis(400);
            original.check_all_at(mid);
        }
        let bytes = original.snapshot_bytes();
        let mut restored = SourceBank::new(&combos, eta(), n);
        restored.restore_bytes(&bytes).expect("restore");
        assert_eq!(restored.snapshot_bytes(), bytes);
        assert_eq!(restored.impact_weights(), original.impact_weights());

        // Continue both; the trajectories must not diverge.
        for seq in 26..36u64 {
            for source in 0..n as u32 {
                let at = arrival(seq, delay_for(source, seq));
                original.observe_heartbeat(source, seq, at);
                let ea = original.transitions().to_vec();
                restored.observe_heartbeat(source, seq, at);
                assert_eq!(ea, restored.transitions(), "s{source} q{seq}");
            }
        }
        assert_eq!(original.snapshot_bytes(), restored.snapshot_bytes());

        // Totality: any truncation errors cleanly.
        for cut in (0..bytes.len()).step_by(61) {
            assert!(SourceBank::new(&combos, eta(), n)
                .restore_bytes(&bytes[..cut])
                .is_err());
        }
        // Kind mismatch: the paper grid cannot absorb an extended image.
        assert!(SourceBank::paper_grid(eta(), n)
            .restore_bytes(&bytes)
            .is_err());
    }
}
