//! The many-source detector engine: N heartbeat sources × M combinations
//! behind one struct-of-arrays state machine.
//!
//! [`DetectorBank`](crate::bank::DetectorBank) made the 30-combination step
//! cheap for **one** source. A large-scale monitor watches millions of
//! sources, and allocating a `DetectorBank` per source brings back exactly
//! the overheads the bank removed — scattered allocations, per-object
//! bookkeeping, and a virtual boundary per source in the hot loop.
//!
//! [`SourceBank`] is the same shared-computation engine with the source
//! dimension folded into the arrays:
//!
//! * predictor and margin-core state is laid out **source-major**
//!   (`state[source * P + p]`), so one heartbeat touches one contiguous
//!   stripe of `P` distinct predictors;
//! * deadlines are laid out **combo-major** — one contiguous `u64` array
//!   per combination (`deadlines[combo * N + source]`, `u64::MAX` = none) —
//!   so a full freshness sweep ([`check_all_at`](SourceBank::check_all_at))
//!   is M linear array scans, not N×M virtual calls;
//! * each source carries an amortized **freshest-deadline cache**
//!   (`min_deadline[source]` = a lower bound on its earliest pending
//!   non-suspecting deadline), so the per-source check
//!   ([`check_source_at`](SourceBank::check_source_at)) is O(1) until a
//!   deadline can actually have expired;
//! * [`observe_all`](SourceBank::observe_all) consumes a whole batch of
//!   heartbeats in one call, so a cycle over 1M sources is a linear sweep
//!   over the batch rather than 1M independent call trees.
//!
//! The per-heartbeat arithmetic is **bit-identical** to `DetectorBank`
//! (which is itself bit-identical to the boxed single-detector path): the
//! operations happen in the same order on the same values. The only
//! intentional deviation is bookkeeping, not math — the bank re-calls
//! `predict()` to compute each error while the source bank reuses the
//! cached post-observation forecast, which is the same pure value.

use fd_sim::{SimDuration, SimTime};

use crate::bank::{ErrorCores, PredictorState};
use crate::combinations::{Combination, MarginKind, PredictorKind};
use crate::detector::FdTransition;
use crate::margin::{CiCore, JacCore, RtoCore};

/// `highest_seq` sentinel for "no fresh heartbeat seen yet". Sequence
/// numbers can never reach it: `eta * u64::MAX` overflows virtual time
/// (and panics) long before.
const SEQ_NONE: u64 = u64::MAX;

/// `deadlines` sentinel for "no freshness point armed".
const NO_DEADLINE: u64 = u64::MAX;

/// Heartbeats per block in the batched observe path. Sized so the block
/// scratch (`OBS_BLOCK × M` deadlines ≈ 15 KiB for the paper grid) stays
/// L1-resident while each combination's deadline row is written in runs
/// of up to `OBS_BLOCK` nearby slots instead of one isolated slot per
/// heartbeat.
const OBS_BLOCK: usize = 64;

/// One heartbeat arrival, addressed to a source, for the batch API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatObs {
    /// The monitored source the heartbeat came from.
    pub source: u32,
    /// The heartbeat sequence number.
    pub seq: u64,
    /// Arrival time at the monitor.
    pub arrival: SimTime,
}

/// A suspect/trust edge of one (source, combination) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceTransition {
    /// The monitored source.
    pub source: u32,
    /// Index of the combination (position in the slice the bank was built
    /// from).
    pub combo: u32,
    /// The edge.
    pub transition: FdTransition,
}

/// The N-source × M-combination struct-of-arrays detector engine.
///
/// ```
/// use fd_core::source_bank::{HeartbeatObs, SourceBank};
/// use fd_sim::{SimDuration, SimTime};
///
/// let eta = SimDuration::from_secs(1);
/// let mut bank = SourceBank::paper_grid(eta, 100);
/// assert_eq!(bank.sources(), 100);
/// assert_eq!(bank.len(), 30);
///
/// // One batch delivers heartbeat m_0 from every source.
/// let batch: Vec<HeartbeatObs> = (0..100)
///     .map(|s| HeartbeatObs {
///         source: s,
///         seq: 0,
///         arrival: SimTime::from_millis(200),
///     })
///     .collect();
/// assert_eq!(bank.observe_all(&batch), 100);
///
/// // Nothing arrives for a long time: every pair starts suspecting.
/// let fired = bank.check_all_at(SimTime::from_secs(60)).len();
/// assert_eq!(fired, 100 * 30);
/// ```
#[derive(Debug, Clone)]
pub struct SourceBank {
    eta: SimDuration,
    combos: Vec<Combination>,
    /// `pred_of_combo[i]` = distinct-predictor index for combination `i`.
    pred_of_combo: Vec<usize>,
    n_sources: usize,
    /// Number of distinct predictors per source (5 for the paper grid).
    n_pred: usize,
    /// Words per combination in the `suspecting` bitmap.
    words: usize,
    /// Source-major: `predictors[source * n_pred + p]`.
    predictors: Vec<PredictorState>,
    /// Source-major: the φ/k-independent error cores per distinct
    /// predictor.
    error_cores: Vec<ErrorCores>,
    /// One shared Welford core per source (serves every `SM_CI(γ)`).
    ci: Vec<CiCore>,
    /// Source-major: cached post-observation forecast,
    /// `predictions[source * n_pred + p]`. Initialized to the fresh
    /// predictor's forecast so the first error term matches the bank.
    predictions: Vec<f64>,
    /// Combo-major: `deadlines[combo * n_sources + source]`, microseconds,
    /// [`NO_DEADLINE`] when unarmed. One contiguous array per combination.
    deadlines: Vec<u64>,
    /// Combo-major bitmap: bit `source` of combination `combo` lives at
    /// word `combo * words + source / 64`.
    suspecting: Vec<u64>,
    /// Per source: highest fresh sequence seen ([`SEQ_NONE`] = none).
    highest_seq: Vec<u64>,
    /// Per source: lower bound on the earliest pending deadline among
    /// non-suspecting combinations (the amortized freshest-deadline
    /// cache). `u64::MAX` when nothing is pending.
    min_deadline: Vec<u64>,
    heartbeats: u64,
    stale_heartbeats: u64,
    transitions: Vec<SourceTransition>,
    /// Block scratch for [`observe_all`](Self::observe_all): deadline per
    /// (block slot, combo), `blk_dl[i * M + idx]`.
    blk_dl: Vec<u64>,
    /// Block scratch: whether block slot `i` carried a fresh heartbeat.
    blk_fresh: Vec<bool>,
    /// Block scratch: `EndSuspect` edges as (block slot, combo) pairs.
    blk_edges: Vec<(u32, u32)>,
}

impl SourceBank {
    /// Builds a bank over `n_sources` sources, each running the given
    /// combinations with heartbeat period `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero or `n_sources` exceeds `u32` range.
    pub fn new(combos: &[Combination], eta: SimDuration, n_sources: usize) -> Self {
        assert!(!eta.is_zero(), "heartbeat period must be positive");
        assert!(
            u32::try_from(n_sources).is_ok(),
            "source count must fit in u32"
        );
        // Dedup distinct predictors exactly like DetectorBank::new, so
        // combination indices map to the same shared state.
        let mut kinds: Vec<PredictorKind> = Vec::new();
        let mut pred_of_combo = Vec::with_capacity(combos.len());
        for combo in combos {
            let p_idx = match kinds.iter().position(|k| *k == combo.predictor) {
                Some(i) => i,
                None => {
                    kinds.push(combo.predictor);
                    kinds.len() - 1
                }
            };
            pred_of_combo.push(p_idx);
        }
        let n_pred = kinds.len();
        let mut core_template = vec![ErrorCores::default(); n_pred];
        for (combo, &p_idx) in combos.iter().zip(&pred_of_combo) {
            match combo.margin {
                MarginKind::Ci { .. } => {}
                MarginKind::Jac { .. } => {
                    core_template[p_idx]
                        .jac
                        .get_or_insert_with(|| JacCore::new(0.25));
                }
                MarginKind::Rto { .. } => {
                    core_template[p_idx].rto.get_or_insert_with(RtoCore::new);
                }
            }
        }
        // One freshly built predictor per kind seeds both the replicated
        // state and the initial forecast cache (a fresh predictor's
        // forecast is kind-dependent but source-independent).
        let predictor_template: Vec<PredictorState> = kinds
            .iter()
            .map(|&k| PredictorState::from_kind(k))
            .collect();
        let prediction_template: Vec<f64> =
            predictor_template.iter().map(|p| p.predict()).collect();

        let mut predictors = Vec::with_capacity(n_sources * n_pred);
        let mut error_cores = Vec::with_capacity(n_sources * n_pred);
        let mut predictions = Vec::with_capacity(n_sources * n_pred);
        for _ in 0..n_sources {
            predictors.extend(predictor_template.iter().cloned());
            error_cores.extend(core_template.iter().cloned());
            predictions.extend_from_slice(&prediction_template);
        }
        let words = n_sources.div_ceil(64);
        Self {
            eta,
            pred_of_combo,
            n_sources,
            n_pred,
            words,
            predictors,
            error_cores,
            ci: vec![CiCore::new(); n_sources],
            predictions,
            deadlines: vec![NO_DEADLINE; combos.len() * n_sources],
            suspecting: vec![0u64; combos.len() * words],
            highest_seq: vec![SEQ_NONE; n_sources],
            min_deadline: vec![u64::MAX; n_sources],
            heartbeats: 0,
            stale_heartbeats: 0,
            transitions: Vec::new(),
            blk_dl: vec![0; OBS_BLOCK * combos.len()],
            blk_fresh: vec![false; OBS_BLOCK],
            blk_edges: Vec::new(),
            combos: combos.to_vec(),
        }
    }

    /// Builds the bank over the paper's full 30-combination grid.
    pub fn paper_grid(eta: SimDuration, n_sources: usize) -> Self {
        Self::new(&crate::combinations::all_combinations(), eta, n_sources)
    }

    /// Number of combinations per source.
    pub fn len(&self) -> usize {
        self.combos.len()
    }

    /// `true` if the bank has no combinations.
    pub fn is_empty(&self) -> bool {
        self.combos.is_empty()
    }

    /// Number of monitored sources.
    pub fn sources(&self) -> usize {
        self.n_sources
    }

    /// The heartbeat period η (shared by all sources).
    pub fn eta(&self) -> SimDuration {
        self.eta
    }

    /// The combinations, in index order.
    pub fn combos(&self) -> &[Combination] {
        &self.combos
    }

    /// Number of distinct predictor state machines per source.
    pub fn distinct_predictor_count(&self) -> usize {
        self.n_pred
    }

    /// Heartbeats observed so far (fresh + stale), across all sources.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Heartbeats that arrived out of order (did not advance freshness).
    pub fn stale_heartbeats(&self) -> u64 {
        self.stale_heartbeats
    }

    /// The next freshness point `τ_{k+1}` of `(source, combo)`.
    pub fn next_deadline(&self, source: u32, combo: usize) -> Option<SimTime> {
        let us = self.deadlines[combo * self.n_sources + source as usize];
        (us != NO_DEADLINE).then(|| SimTime::from_micros(us))
    }

    /// `true` while combination `combo` suspects `source`.
    pub fn is_suspecting(&self, source: u32, combo: usize) -> bool {
        let s = source as usize;
        self.suspecting[combo * self.words + s / 64] & (1u64 << (s % 64)) != 0
    }

    /// Words per combination row of the suspicion bitmap
    /// (`ceil(sources / 64)`).
    pub fn words_per_combo(&self) -> usize {
        self.words
    }

    /// The raw combo-major suspicion bitmap: `len() × words_per_combo()`
    /// words, where bit `s % 64` of word
    /// `combo * words_per_combo() + s / 64` is set while combination
    /// `combo` suspects source `s`.
    ///
    /// This is the snapshot-export surface of the serving plane: a
    /// publisher copies these words into a `SuspectView` buffer without
    /// touching any per-combo detector state.
    pub fn suspect_words(&self) -> &[u64] {
        &self.suspecting
    }

    /// The earliest pending deadline of `source` over its non-suspecting
    /// combinations — the instant its next check can possibly fire
    /// (`None` when nothing is pending).
    pub fn next_wakeup(&self, source: u32) -> Option<SimTime> {
        let us = self.min_deadline[source as usize];
        (us != u64::MAX).then(|| SimTime::from_micros(us))
    }

    /// The current forecast feeding `(source, combo)`, in milliseconds.
    pub fn predicted_delay_ms(&self, source: u32, combo: usize) -> f64 {
        self.predictions[source as usize * self.n_pred + self.pred_of_combo[combo]]
    }

    /// The current safety margin of `(source, combo)`, in milliseconds.
    pub fn margin_ms(&self, source: u32, combo: usize) -> f64 {
        let s = source as usize;
        let p_idx = self.pred_of_combo[combo];
        match self.combos[combo].margin {
            MarginKind::Ci { gamma } => self.ci[s].margin(gamma),
            MarginKind::Jac { phi } => self.error_cores[s * self.n_pred + p_idx]
                .jac
                .expect("JacCore allocated for Jac combo")
                .margin(phi),
            MarginKind::Rto { k } => self.error_cores[s * self.n_pred + p_idx]
                .rto
                .expect("RtoCore allocated for Rto combo")
                .margin(k),
        }
    }

    /// The current time-out component `δ = pred + sm` of `(source, combo)`.
    pub fn current_timeout_ms(&self, source: u32, combo: usize) -> f64 {
        self.predicted_delay_ms(source, combo) + self.margin_ms(source, combo)
    }

    /// The transitions produced by the most recent observe/check call.
    ///
    /// Ordered by `(source slot in the call, combination index)`: a batch
    /// yields transitions in batch order, [`check_all_at`] in ascending
    /// `(source, combo)` order.
    ///
    /// [`check_all_at`]: Self::check_all_at
    pub fn transitions(&self) -> &[SourceTransition] {
        &self.transitions
    }

    /// Handles one heartbeat from `source`, exactly like
    /// [`DetectorBank::observe_heartbeat`] on that source's private bank.
    ///
    /// Returns `true` if the heartbeat was fresh. `EndSuspect` edges land
    /// in [`transitions`](Self::transitions).
    ///
    /// [`DetectorBank::observe_heartbeat`]:
    ///     crate::bank::DetectorBank::observe_heartbeat
    pub fn observe_heartbeat(&mut self, source: u32, seq: u64, arrival: SimTime) -> bool {
        self.transitions.clear();
        self.observe_inner(source, seq, arrival)
    }

    /// Consumes a whole batch of heartbeats in arrival order — the
    /// linear-sweep cycle path. Returns the number of fresh heartbeats.
    ///
    /// Equivalent to calling [`observe_heartbeat`] per element, except
    /// that [`transitions`](Self::transitions) accumulates the edges of
    /// the whole batch (in batch order).
    ///
    /// [`observe_heartbeat`]: Self::observe_heartbeat
    pub fn observe_all(&mut self, batch: &[HeartbeatObs]) -> usize {
        self.transitions.clear();
        let mut fresh = 0usize;
        for block in batch.chunks(OBS_BLOCK) {
            fresh += self.observe_block(block);
        }
        fresh
    }

    /// One cache-blocked slice of the batch. Phase A walks the block
    /// source-major — predictor stripes, margin cores and the resulting
    /// deadlines, captured into the L1-resident block scratch. Phase B
    /// walks it combo-major, so each combination's contiguous deadline
    /// row and suspicion words are written in one run per block instead
    /// of one strided slot per heartbeat. The per-pair arithmetic is the
    /// same operations in the same order as [`observe_inner`], so the
    /// resulting state is bit-identical to the per-heartbeat path.
    fn observe_block(&mut self, block: &[HeartbeatObs]) -> usize {
        let m = self.combos.len();
        let mut fresh_count = 0usize;
        for (i, obs) in block.iter().enumerate() {
            let s = obs.source as usize;
            assert!(s < self.n_sources, "source {} out of range", obs.source);
            self.heartbeats += 1;

            let sigma = SimTime::ZERO + self.eta * obs.seq;
            let delay_ms = obs
                .arrival
                .checked_duration_since(sigma)
                .map_or(0.0, |d| d.as_millis_f64());

            let base = s * self.n_pred;
            for p in 0..self.n_pred {
                let err = delay_ms - self.predictions[base + p];
                let predictor = &mut self.predictors[base + p];
                predictor.observe(delay_ms);
                let cores = &mut self.error_cores[base + p];
                if let Some(jac) = cores.jac.as_mut() {
                    jac.update(err);
                }
                if let Some(rto) = cores.rto.as_mut() {
                    rto.update(err);
                }
                self.predictions[base + p] = predictor.predict();
            }
            self.ci[s].update(delay_ms);

            let fresh = self.highest_seq[s] == SEQ_NONE || obs.seq > self.highest_seq[s];
            self.blk_fresh[i] = fresh;
            if !fresh {
                self.stale_heartbeats += 1;
                continue;
            }
            fresh_count += 1;
            self.highest_seq[s] = obs.seq;

            let sigma_next = SimTime::ZERO + self.eta * (obs.seq + 1);
            let mut min_dl = u64::MAX;
            for idx in 0..m {
                let p_idx = self.pred_of_combo[idx];
                let margin = match self.combos[idx].margin {
                    MarginKind::Ci { gamma } => self.ci[s].margin(gamma),
                    MarginKind::Jac { phi } => self.error_cores[base + p_idx]
                        .jac
                        .expect("JacCore allocated for Jac combo")
                        .margin(phi),
                    MarginKind::Rto { k } => self.error_cores[base + p_idx]
                        .rto
                        .expect("RtoCore allocated for Rto combo")
                        .margin(k),
                };
                let timeout_ms = self.predictions[base + p_idx] + margin;
                let delta = SimDuration::from_millis_f64(timeout_ms.max(0.0));
                let dl = (sigma_next + delta).as_micros();
                self.blk_dl[i * m + idx] = dl;
                min_dl = min_dl.min(dl);
            }
            // A later fresh heartbeat from the same source overwrites, as
            // in the per-heartbeat path.
            self.min_deadline[s] = min_dl;
        }

        self.blk_edges.clear();
        for idx in 0..m {
            let dl_base = idx * self.n_sources;
            let w_base = idx * self.words;
            for (i, obs) in block.iter().enumerate() {
                if !self.blk_fresh[i] {
                    continue;
                }
                let s = obs.source as usize;
                self.deadlines[dl_base + s] = self.blk_dl[i * m + idx];
                let w = w_base + s / 64;
                let bit = 1u64 << (s % 64);
                if self.suspecting[w] & bit != 0 {
                    self.suspecting[w] &= !bit;
                    self.blk_edges.push((i as u32, idx as u32));
                }
            }
        }

        // Re-establish the per-heartbeat reporting order: each batch
        // element's EndSuspect edges grouped together, in combo order.
        self.blk_edges.sort_unstable();
        for &(i, idx) in &self.blk_edges {
            self.transitions.push(SourceTransition {
                source: block[i as usize].source,
                combo: idx,
                transition: FdTransition::EndSuspect,
            });
        }
        fresh_count
    }

    fn observe_inner(&mut self, source: u32, seq: u64, arrival: SimTime) -> bool {
        let s = source as usize;
        assert!(s < self.n_sources, "source {source} out of range");
        self.heartbeats += 1;

        // Observed transmission delay, clamped exactly like the bank.
        let sigma = SimTime::ZERO + self.eta * seq;
        let delay_ms = arrival
            .checked_duration_since(sigma)
            .map_or(0.0, |d| d.as_millis_f64());

        // This source's stripe of distinct predictors: one error, one
        // observe, one error-core advance each. The error term reuses the
        // cached post-observation forecast — `predict()` is pure, so the
        // cache holds the exact value the bank would recompute.
        let base = s * self.n_pred;
        for p in 0..self.n_pred {
            let err = delay_ms - self.predictions[base + p];
            let predictor = &mut self.predictors[base + p];
            predictor.observe(delay_ms);
            let cores = &mut self.error_cores[base + p];
            if let Some(jac) = cores.jac.as_mut() {
                jac.update(err);
            }
            if let Some(rto) = cores.rto.as_mut() {
                rto.update(err);
            }
            self.predictions[base + p] = predictor.predict();
        }
        self.ci[s].update(delay_ms);

        let fresh = self.highest_seq[s] == SEQ_NONE || seq > self.highest_seq[s];
        if !fresh {
            self.stale_heartbeats += 1;
            return false;
        }
        self.highest_seq[s] = seq;

        // Fan out: M freshness points, suspicion edges, and the refreshed
        // freshest-deadline cache, one tight loop.
        let sigma_next = SimTime::ZERO + self.eta * (seq + 1);
        let mut min_dl = u64::MAX;
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        for idx in 0..self.combos.len() {
            let p_idx = self.pred_of_combo[idx];
            let margin = match self.combos[idx].margin {
                MarginKind::Ci { gamma } => self.ci[s].margin(gamma),
                MarginKind::Jac { phi } => self.error_cores[base + p_idx]
                    .jac
                    .expect("JacCore allocated for Jac combo")
                    .margin(phi),
                MarginKind::Rto { k } => self.error_cores[base + p_idx]
                    .rto
                    .expect("RtoCore allocated for Rto combo")
                    .margin(k),
            };
            let timeout_ms = self.predictions[base + p_idx] + margin;
            let delta = SimDuration::from_millis_f64(timeout_ms.max(0.0));
            let dl = (sigma_next + delta).as_micros();
            self.deadlines[idx * self.n_sources + s] = dl;
            min_dl = min_dl.min(dl);
            let w = idx * self.words + word;
            if self.suspecting[w] & bit != 0 {
                self.suspecting[w] &= !bit;
                self.transitions.push(SourceTransition {
                    source,
                    combo: idx as u32,
                    transition: FdTransition::EndSuspect,
                });
            }
        }
        self.min_deadline[s] = min_dl;
        true
    }

    /// Evaluates the freshness condition of every combination of `source`
    /// at `now` — the per-source deadline-timer path.
    ///
    /// O(1) while `now` is before the source's cached freshest deadline;
    /// scans the source's M combinations only when something can actually
    /// have expired. Returns the `StartSuspect` edges fired, in
    /// combination-index order.
    pub fn check_source_at(&mut self, source: u32, now: SimTime) -> &[SourceTransition] {
        self.transitions.clear();
        self.check_source_inner(source, now);
        &self.transitions
    }

    fn check_source_inner(&mut self, source: u32, now: SimTime) {
        let s = source as usize;
        assert!(s < self.n_sources, "source {source} out of range");
        let now_us = now.as_micros();
        if now_us < self.min_deadline[s] {
            return;
        }
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        let mut min_dl = u64::MAX;
        for idx in 0..self.combos.len() {
            let w = idx * self.words + word;
            if self.suspecting[w] & bit != 0 {
                continue;
            }
            let dl = self.deadlines[idx * self.n_sources + s];
            if dl == NO_DEADLINE {
                continue;
            }
            if now_us >= dl {
                self.suspecting[w] |= bit;
                self.transitions.push(SourceTransition {
                    source,
                    combo: idx as u32,
                    transition: FdTransition::StartSuspect,
                });
            } else {
                min_dl = min_dl.min(dl);
            }
        }
        self.min_deadline[s] = min_dl;
    }

    /// Evaluates the freshness condition of **every** (source, combo) pair
    /// at `now`: M contiguous array sweeps, the batch analog of calling
    /// [`DetectorBank::check_at`] on every source.
    ///
    /// Returns the `StartSuspect` edges fired, in ascending
    /// `(source, combo)` order — identical to checking each source's
    /// private bank in source order.
    ///
    /// [`DetectorBank::check_at`]: crate::bank::DetectorBank::check_at
    pub fn check_all_at(&mut self, now: SimTime) -> &[SourceTransition] {
        self.transitions.clear();
        let now_us = now.as_micros();
        let n = self.n_sources;
        for idx in 0..self.combos.len() {
            let deadlines = &self.deadlines[idx * n..(idx + 1) * n];
            let words = &mut self.suspecting[idx * self.words..(idx + 1) * self.words];
            for (s, &dl) in deadlines.iter().enumerate() {
                if now_us < dl || dl == NO_DEADLINE {
                    continue;
                }
                let bit = 1u64 << (s % 64);
                if words[s / 64] & bit != 0 {
                    continue;
                }
                words[s / 64] |= bit;
                self.transitions.push(SourceTransition {
                    source: s as u32,
                    combo: idx as u32,
                    transition: FdTransition::StartSuspect,
                });
            }
        }
        // Report source-major like a per-source loop over DetectorBanks
        // would, and refresh the cache of every source that fired.
        self.transitions
            .sort_unstable_by_key(|t| (t.source, t.combo));
        let mut i = 0;
        while i < self.transitions.len() {
            let s = self.transitions[i].source as usize;
            while i < self.transitions.len() && self.transitions[i].source as usize == s {
                i += 1;
            }
            self.refresh_min_deadline(s);
        }
        &self.transitions
    }

    /// Recomputes `min_deadline[s]` exactly (min pending deadline over
    /// non-suspecting combinations).
    fn refresh_min_deadline(&mut self, s: usize) {
        let word = s / 64;
        let bit = 1u64 << (s % 64);
        let mut min_dl = u64::MAX;
        for idx in 0..self.combos.len() {
            if self.suspecting[idx * self.words + word] & bit != 0 {
                continue;
            }
            let dl = self.deadlines[idx * self.n_sources + s];
            if dl != NO_DEADLINE {
                min_dl = min_dl.min(dl);
            }
        }
        self.min_deadline[s] = min_dl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::DetectorBank;
    use crate::combinations::all_combinations;

    fn eta() -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn arrival(seq: u64, delay_ms: u64) -> SimTime {
        SimTime::ZERO + eta() * seq + SimDuration::from_millis(delay_ms)
    }

    /// Deterministic per-source delay pattern with enough spread to drive
    /// suspicion edges on some sources and not others.
    fn delay_for(source: u32, seq: u64) -> u64 {
        150 + u64::from(source) * 17 + (seq * (53 + u64::from(source))) % 130
    }

    #[test]
    fn paper_grid_shape() {
        let bank = SourceBank::paper_grid(eta(), 12);
        assert_eq!(bank.len(), 30);
        assert_eq!(bank.sources(), 12);
        assert_eq!(bank.distinct_predictor_count(), 5);
        assert!(!bank.is_empty());
        assert_eq!(bank.eta(), eta());
        assert_eq!(bank.next_wakeup(3), None);
    }

    /// The core equivalence claim: a SourceBank over N sources is
    /// bit-identical to N private DetectorBanks — deadlines, margins,
    /// forecasts, suspicion flags and transition sequences — through a
    /// schedule with skips (suspicion edges), stale heartbeats and
    /// periodic full checks.
    #[test]
    fn matches_independent_detector_banks() {
        let combos = all_combinations();
        let n: u32 = 7;
        let mut source_bank = SourceBank::new(&combos, eta(), n as usize);
        let mut banks: Vec<DetectorBank> =
            (0..n).map(|_| DetectorBank::new(&combos, eta())).collect();

        for seq in 0..40u64 {
            for source in 0..n {
                // Source 2 goes silent for a stretch; source 5 replays a
                // stale heartbeat every 8th step.
                if source == 2 && (10..20).contains(&seq) {
                    continue;
                }
                let (use_seq, at) = if source == 5 && seq % 8 == 7 && seq > 0 {
                    (seq - 1, arrival(seq, delay_for(source, seq)))
                } else {
                    (seq, arrival(seq, delay_for(source, seq)))
                };
                // Check-then-observe, like the monitor's event loop.
                let a = banks[source as usize].check_at(at).to_vec();
                let b = source_bank.check_source_at(source, at).to_vec();
                assert_eq!(a.len(), b.len(), "check count s{source} q{seq}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.combo as u32, y.combo);
                    assert_eq!(x.transition, y.transition);
                    assert_eq!(y.source, source);
                }
                let fresh_a = banks[source as usize].observe_heartbeat(use_seq, at);
                let ends_a: Vec<usize> = banks[source as usize]
                    .transitions()
                    .iter()
                    .map(|t| t.combo)
                    .collect();
                let fresh_b = source_bank.observe_heartbeat(source, use_seq, at);
                let ends_b: Vec<usize> = source_bank
                    .transitions()
                    .iter()
                    .map(|t| t.combo as usize)
                    .collect();
                assert_eq!(fresh_a, fresh_b, "freshness s{source} q{seq}");
                assert_eq!(ends_a, ends_b, "EndSuspect s{source} q{seq}");
            }
            for source in 0..n {
                let bank = &banks[source as usize];
                for idx in 0..combos.len() {
                    assert_eq!(
                        bank.next_deadline(idx),
                        source_bank.next_deadline(source, idx),
                        "deadline s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.margin_ms(idx).to_bits(),
                        source_bank.margin_ms(source, idx).to_bits(),
                        "margin s{source} q{seq} c{idx}"
                    );
                    assert_eq!(
                        bank.predicted_delay_ms(idx).to_bits(),
                        source_bank.predicted_delay_ms(source, idx).to_bits(),
                    );
                    assert_eq!(bank.is_suspecting(idx), source_bank.is_suspecting(source, idx));
                }
            }
        }
        let total: u64 = banks.iter().map(|b| b.heartbeats()).sum();
        assert_eq!(source_bank.heartbeats(), total);
        let stale: u64 = banks.iter().map(|b| b.stale_heartbeats()).sum();
        assert_eq!(source_bank.stale_heartbeats(), stale);
    }

    /// `observe_all` is the same machine as per-heartbeat calls: identical
    /// state, with the batch's transitions concatenated in batch order.
    #[test]
    fn batch_observe_equals_looped_observe() {
        let n = 9usize;
        let mut batched = SourceBank::paper_grid(eta(), n);
        let mut looped = SourceBank::paper_grid(eta(), n);

        for seq in 0..25u64 {
            let batch: Vec<HeartbeatObs> = (0..n as u32)
                .map(|source| HeartbeatObs {
                    source,
                    seq,
                    arrival: arrival(seq, delay_for(source, seq)),
                })
                .collect();
            let fresh = batched.observe_all(&batch);
            let mut loop_fresh = 0;
            let mut loop_edges = Vec::new();
            for obs in &batch {
                if looped.observe_heartbeat(obs.source, obs.seq, obs.arrival) {
                    loop_fresh += 1;
                }
                loop_edges.extend_from_slice(looped.transitions());
            }
            assert_eq!(fresh, loop_fresh);
            assert_eq!(batched.transitions(), &loop_edges[..]);
        }
        for source in 0..n as u32 {
            for idx in 0..30 {
                assert_eq!(
                    batched.next_deadline(source, idx),
                    looped.next_deadline(source, idx)
                );
                assert_eq!(
                    batched.margin_ms(source, idx).to_bits(),
                    looped.margin_ms(source, idx).to_bits()
                );
            }
        }
    }

    /// `check_all_at` fires the same edges as per-source checks, reported
    /// source-major.
    #[test]
    fn sweep_check_matches_per_source_checks() {
        let n = 6usize;
        let mut swept = SourceBank::paper_grid(eta(), n);
        let mut stepped = SourceBank::paper_grid(eta(), n);
        for source in 0..n as u32 {
            // Sources 0..3 heartbeat once; the rest never do.
            if source < 3 {
                swept.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
                stepped.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
            }
        }
        let late = SimTime::from_secs(90);
        let fired = swept.check_all_at(late).to_vec();
        let mut expected = Vec::new();
        for source in 0..n as u32 {
            expected.extend_from_slice(stepped.check_source_at(source, late));
        }
        assert_eq!(fired, expected);
        // Only the three heartbeating sources had armed deadlines.
        assert_eq!(fired.len(), 3 * 30);
        assert!((0..3u32).all(|s| swept.is_suspecting(s, 0)));
        assert!((3..6u32).all(|s| !swept.is_suspecting(s, 0)));
        // Idempotent while suspecting.
        assert!(swept.check_all_at(SimTime::from_secs(91)).is_empty());
    }

    /// The freshest-deadline cache answers early checks in O(1) without
    /// touching per-combo state, and `next_wakeup` exposes the earliest
    /// instant a check can fire.
    #[test]
    fn min_deadline_cache_gates_checks() {
        let mut bank = SourceBank::paper_grid(eta(), 3);
        bank.observe_heartbeat(1, 0, arrival(0, 200));
        let wakeup = bank.next_wakeup(1).expect("armed after heartbeat");
        assert!(bank
            .check_source_at(1, wakeup - SimDuration::from_micros(1))
            .is_empty());
        // At the wakeup instant at least one combination fires.
        assert!(!bank.check_source_at(1, wakeup).is_empty());
        // Sources without heartbeats never fire.
        assert!(bank.check_source_at(0, SimTime::from_secs(900)).is_empty());
    }

    /// The exported bitmap words agree bit-for-bit with `is_suspecting`.
    #[test]
    fn suspect_words_mirror_is_suspecting() {
        let n = 70usize; // spans two words per combo
        let mut bank = SourceBank::paper_grid(eta(), n);
        assert_eq!(bank.words_per_combo(), 2);
        assert_eq!(bank.suspect_words().len(), 30 * 2);
        for source in 0..n as u32 {
            if source % 3 != 0 {
                bank.observe_heartbeat(source, 0, arrival(0, delay_for(source, 0)));
            }
        }
        bank.check_all_at(SimTime::from_secs(120));
        let words = bank.suspect_words().to_vec();
        for combo in 0..30 {
            for source in 0..n as u32 {
                let s = source as usize;
                let bit = words[combo * 2 + s / 64] & (1u64 << (s % 64)) != 0;
                assert_eq!(bit, bank.is_suspecting(source, combo), "s{source} c{combo}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "heartbeat period must be positive")]
    fn zero_eta_rejected() {
        let _ = SourceBank::new(&all_combinations(), SimDuration::ZERO, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let mut bank = SourceBank::paper_grid(eta(), 2);
        bank.observe_heartbeat(2, 0, SimTime::from_millis(100));
    }
}
