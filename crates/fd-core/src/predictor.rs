//! The delay predictors of Section 3.1.
//!
//! Every predictor consumes the list `obs = [obs_1 … obs_n]` of observed
//! one-way heartbeat delays (in milliseconds) and forecasts the next one.
//! The paper's five choices:
//!
//! | predictor  | forecast `pred_{k+1}` |
//! |------------|------------------------|
//! | `LAST`     | `obs_n` |
//! | `MEAN`     | mean of all observations |
//! | `WINMEAN(N)` | mean of the last `N` observations (= MEAN while `n < N`) |
//! | `LPF(β)`   | `(1−β)·pred_k + β·obs_n` (exponential smoothing) |
//! | `ARIMA(p,d,q)` | one-step Box–Jenkins forecast, refit every `N_Arima` |
//!
//! All per-observation updates are `O(1)` in the length of the observation
//! list (the paper's final-remarks complexity claim); ARIMA's periodic refit
//! is amortised.

use std::collections::VecDeque;

use fd_arima::{ArimaSpec, OnlineArima};

/// A one-step forecaster of heartbeat transmission delays (milliseconds).
///
/// Implementations return 0.0 from [`Predictor::predict`] before the first
/// observation (the cold-start time-out is then just the safety margin).
pub trait Predictor: Send {
    /// Consumes the delay of a newly received heartbeat.
    fn observe(&mut self, delay_ms: f64);

    /// Consumes the delay of a newly received heartbeat together with the
    /// sequence gap that preceded it: `gap` is the number of expected
    /// heartbeats that never arrived between the previously freshest
    /// heartbeat and this one (0 for in-order and stale deliveries).
    ///
    /// Lifecycle-aware predictors (φ-accrual) override this to detect
    /// flapping; every other predictor ignores the gap.
    fn observe_gap(&mut self, delay_ms: f64, gap: u64) {
        let _ = gap;
        self.observe(delay_ms);
    }

    /// Forecasts the delay of the next heartbeat.
    fn predict(&self) -> f64;

    /// The predictor's label, e.g. `"WINMEAN(10)"`.
    fn name(&self) -> String;

    /// Number of observations consumed so far.
    fn observations(&self) -> u64;
}

impl<T: Predictor + ?Sized> Predictor for Box<T> {
    fn observe(&mut self, delay_ms: f64) {
        (**self).observe(delay_ms)
    }
    fn observe_gap(&mut self, delay_ms: f64, gap: u64) {
        (**self).observe_gap(delay_ms, gap)
    }
    fn predict(&self) -> f64 {
        (**self).predict()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn observations(&self) -> u64 {
        (**self).observations()
    }
}

/// Ceiling on a sanitized delay observation, in milliseconds (~66 minutes —
/// comfortably above the `SourceBank` deadline horizon, so no in-pipeline
/// delay ever hits it; only hostile direct feeds do).
pub(crate) const MAX_DELAY_MS: f64 = 4.0e6;

/// Clamps a delay observation into `[0, MAX_DELAY_MS]`; NaN and ±∞ map
/// to 0.0. The new-family predictors (φ-accrual, μ+Kσ, ML) sanitize every
/// input through this, so their internal state stays finite under hostile
/// floats; the paper's five predictors are left bit-for-bit unchanged.
pub(crate) fn sanitize_delay(delay_ms: f64) -> f64 {
    if delay_ms.is_finite() {
        delay_ms.clamp(0.0, MAX_DELAY_MS)
    } else {
        0.0
    }
}

/// `LAST`: the forecast is the most recent observation.
///
/// ```
/// use fd_core::{Last, Predictor};
/// let mut p = Last::new();
/// p.observe(197.0);
/// p.observe(203.5);
/// assert_eq!(p.predict(), 203.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Last {
    last: f64,
    n: u64,
}

impl Last {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw state `(last, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, u64) {
        (self.last, self.n)
    }

    /// Rebuilds the predictor from [`Last::raw_parts`] output.
    pub fn from_raw_parts(last: f64, n: u64) -> Self {
        Self { last, n }
    }
}

impl Predictor for Last {
    fn observe(&mut self, delay_ms: f64) {
        self.last = delay_ms;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.last
        }
    }
    fn name(&self) -> String {
        "LAST".to_owned()
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `MEAN`: the forecast is the running mean of all observations.
///
/// ```
/// use fd_core::{Mean, Predictor};
/// let mut p = Mean::new();
/// for obs in [190.0, 200.0, 210.0] {
///     p.observe(obs);
/// }
/// assert_eq!(p.predict(), 200.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Mean {
    mean: f64,
    n: u64,
}

impl Mean {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw state `(mean, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, u64) {
        (self.mean, self.n)
    }

    /// Rebuilds the predictor from [`Mean::raw_parts`] output.
    pub fn from_raw_parts(mean: f64, n: u64) -> Self {
        Self { mean, n }
    }
}

impl Predictor for Mean {
    fn observe(&mut self, delay_ms: f64) {
        self.n += 1;
        self.mean += (delay_ms - self.mean) / self.n as f64;
    }
    fn predict(&self) -> f64 {
        self.mean
    }
    fn name(&self) -> String {
        "MEAN".to_owned()
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `WINMEAN(N)`: the forecast is the mean of the last `N` observations;
/// identical to `MEAN` while fewer than `N` observations exist.
///
/// ```
/// use fd_core::{Predictor, WinMean};
/// let mut p = WinMean::new(2);
/// for obs in [100.0, 201.0, 203.0] {
///     p.observe(obs);
/// }
/// assert_eq!(p.predict(), 202.0); // the first observation fell out
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WinMean {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    n: u64,
}

impl WinMean {
    /// Creates the predictor with window size `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            n: 0,
        }
    }

    /// The configured window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The raw state `(window oldest-first, capacity, sum, n)` for
    /// checkpoint/restore.
    pub fn raw_parts(&self) -> (Vec<f64>, usize, f64, u64) {
        (
            self.window.iter().copied().collect(),
            self.capacity,
            self.sum,
            self.n,
        )
    }

    /// Rebuilds the predictor from [`WinMean::raw_parts`] output.
    ///
    /// Returns `None` for state unreachable by [`Predictor::observe`]
    /// (zero capacity or an overfull window).
    pub fn from_raw_parts(window: Vec<f64>, capacity: usize, sum: f64, n: u64) -> Option<Self> {
        (capacity > 0 && window.len() <= capacity).then_some(Self {
            window: window.into(),
            capacity,
            sum,
            n,
        })
    }
}

impl Predictor for WinMean {
    fn observe(&mut self, delay_ms: f64) {
        if self.window.len() == self.capacity {
            self.sum -= self.window.pop_front().expect("non-empty window");
        }
        self.window.push_back(delay_ms);
        self.sum += delay_ms;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }
    fn name(&self) -> String {
        format!("WINMEAN({})", self.capacity)
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `LPF(β)`: exponential smoothing
/// `pred_{k+1} = pred_k + β·(obs_n − pred_k)`.
///
/// The first observation initialises the filter (`pred_1 = obs_1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lpf {
    beta: f64,
    pred: f64,
    n: u64,
}

impl Lpf {
    /// Creates the filter with smoothing factor `beta` (paper uses 1/8).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta <= 1`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta out of (0, 1]: {beta}");
        Self {
            beta,
            pred: 0.0,
            n: 0,
        }
    }

    /// The smoothing factor.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The raw state `(beta, pred, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, f64, u64) {
        (self.beta, self.pred, self.n)
    }

    /// Rebuilds the filter from [`Lpf::raw_parts`] output.
    ///
    /// Returns `None` if `beta` is outside `(0, 1]`.
    pub fn from_raw_parts(beta: f64, pred: f64, n: u64) -> Option<Self> {
        (beta > 0.0 && beta <= 1.0).then_some(Self { beta, pred, n })
    }
}

impl Predictor for Lpf {
    fn observe(&mut self, delay_ms: f64) {
        if self.n == 0 {
            self.pred = delay_ms;
        } else {
            self.pred += self.beta * (delay_ms - self.pred);
        }
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        self.pred
    }
    fn name(&self) -> String {
        format!("LPF({})", self.beta)
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `ARIMA(p,d,q)`: one-step Box–Jenkins forecast, re-estimated every
/// `refit_every` observations (the paper's `N_Arima = 1000`).
///
/// Falls back to `LAST` behaviour until the first successful fit.
#[derive(Debug, Clone)]
pub struct ArimaPredictor {
    inner: OnlineArima,
}

impl ArimaPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `refit_every` is zero.
    pub fn new(spec: ArimaSpec, refit_every: usize) -> Self {
        Self {
            inner: OnlineArima::new(spec, refit_every),
        }
    }

    /// The paper's configuration: `ARIMA(2,1,1)` refit every 1000
    /// observations (Table 2).
    pub fn paper_default() -> Self {
        Self::new(ArimaSpec::new(2, 1, 1), 1000)
    }

    /// The underlying online forecaster.
    pub fn inner(&self) -> &OnlineArima {
        &self.inner
    }

    /// Captures the full streaming state for checkpoint/restore.
    pub fn snapshot(&self) -> fd_arima::ArimaSnapshot {
        self.inner.snapshot()
    }

    /// Rebuilds the predictor from a snapshot, or `None` if the snapshot
    /// is internally inconsistent.
    pub fn from_snapshot(s: fd_arima::ArimaSnapshot) -> Option<Self> {
        Some(Self {
            inner: OnlineArima::from_snapshot(s)?,
        })
    }
}

impl Predictor for ArimaPredictor {
    fn observe(&mut self, delay_ms: f64) {
        self.inner.observe(delay_ms);
    }
    fn predict(&self) -> f64 {
        // Delays are non-negative; a (rare) negative forecast on the level
        // scale is clamped.
        self.inner.predict_next().max(0.0)
    }
    fn name(&self) -> String {
        let s = self.inner.spec();
        format!("ARIMA({},{},{})", s.p, s.d, s.q)
    }
    fn observations(&self) -> u64 {
        self.inner.observed() as u64
    }
}

/// Flap trigger: a sequence gap of at least this many missing heartbeats
/// counts as a down/up transition of the source (losses are i.i.d. and
/// rarely run this long; crash windows always do).
pub const PHI_FLAP_GAP_MIN: u64 = 3;

/// Mean-uptime scale (in heartbeats) that maps flap history onto the
/// Weibull shape parameter `k`: sources whose mean uptime is well below
/// the scale look flappy (`k → 0.5`, heavy tail, long re-admission);
/// sources well above it look stable (`k → 2.0`, light tail, short
/// re-admission).
pub const PHI_WEIBULL_SCALE: f64 = 8.0;

/// Re-admission quantile: the start phase lasts until the Weibull survival
/// of another flap drops below this.
const PHI_READMIT_Q: f64 = 0.1;

/// Weibull scale parameter of the re-admission gate, in heartbeats.
const PHI_START_LAMBDA: f64 = 4.0;

/// `PHI(N,φ*)`: φ-accrual timeout over a window of the last `N` delays,
/// with a **two-phase stable/start lifecycle** for flapping sources.
///
/// The accrual model is the exponential-tail form: suspicion level
/// `φ(t) = −log10 P(delay > t)` under `delay ~ Exp(1/μ)` scaled by the
/// window's dispersion, which closes to the timeout
///
/// ```text
/// t_φ = μ + φ*·ln(10)·σ
/// ```
///
/// where `μ`, `σ` are the sample mean/standard deviation of the window.
/// **Defined degenerate behavior** (the NaN/∞ audit): a window of one
/// sample or of identical samples has `σ = 0`, so `t_φ = μ` exactly —
/// never NaN; negative variance from float cancellation is clamped to 0.
///
/// The lifecycle (SNIPPETS.md snippet 3, made executable): a sequence gap
/// of ≥ [`PHI_FLAP_GAP_MIN`] heartbeats is a *flap*. On a flap the window
/// is **cold-restarted** (the pre-crash delay distribution is stale) and
/// the predictor enters a *start phase* whose length is Weibull-gated on
/// the source's flap history — flappier sources (short mean uptimes) serve
/// longer start phases. During the start phase the dispersion is floored
/// at `μ` (a CV ≥ 1 prior), so the freshly re-admitted source is not
/// suspected on the first post-recovery jitter; once `start_left` drains,
/// the stable phase trusts the window's own `σ` again.
///
/// With `two_phase = false` the lifecycle is disabled entirely (the
/// stable-phase-only variant the flapping chaos test compares against).
#[derive(Debug, Clone, PartialEq)]
pub struct PhiAccrual {
    ring: Vec<f64>,
    cap: usize,
    pos: usize,
    len: usize,
    sum: f64,
    sumsq: f64,
    threshold: f64,
    two_phase: bool,
    start_left: u32,
    flaps: u64,
    mean_up: f64,
    up_len: u64,
    n: u64,
}

impl PhiAccrual {
    /// Creates the predictor with window size `window` and suspicion
    /// threshold `threshold` (φ*); `two_phase` enables the flap lifecycle.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `threshold` is not finite-positive.
    pub fn new(window: usize, threshold: f64, two_phase: bool) -> Self {
        assert!(window > 0, "phi window must be positive");
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "phi threshold out of range: {threshold}"
        );
        Self {
            ring: vec![0.0; window],
            cap: window,
            pos: 0,
            len: 0,
            sum: 0.0,
            sumsq: 0.0,
            threshold,
            two_phase,
            start_left: 0,
            flaps: 0,
            mean_up: 0.0,
            up_len: 0,
            n: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.cap
    }

    /// The suspicion threshold φ*.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the two-phase flap lifecycle is enabled.
    pub fn two_phase(&self) -> bool {
        self.two_phase
    }

    /// Remaining start-phase observations (0 in the stable phase).
    pub fn start_left(&self) -> u32 {
        self.start_left
    }

    /// Number of flaps (gap-triggered cold restarts) seen so far.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Start-phase length for the *next* flap, Weibull-gated on the flap
    /// history: `⌈λ·(−ln q)^(1/k)⌉` with shape
    /// `k = clamp(mean_uptime / scale, 0.5, 2.0)`. A source with no flap
    /// history yet is treated as maximally flappy (`k = 0.5`).
    fn start_len(&self) -> u32 {
        let k = (self.mean_up / PHI_WEIBULL_SCALE).clamp(0.5, 2.0);
        let beats = PHI_START_LAMBDA * (-(PHI_READMIT_Q.ln())).powf(1.0 / k);
        beats.ceil() as u32
    }

    /// The full state, for checkpoint/restore:
    /// `(ring, pos, len, sum, sumsq, start_left, flaps, mean_up, up_len, n)`.
    /// Configuration (`window`, `threshold`, `two_phase`) travels
    /// separately as part of the predictor kind.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (Vec<f64>, u32, u32, f64, f64, u32, u64, f64, u64, u64) {
        (
            self.ring.clone(),
            self.pos as u32,
            self.len as u32,
            self.sum,
            self.sumsq,
            self.start_left,
            self.flaps,
            self.mean_up,
            self.up_len,
            self.n,
        )
    }

    /// Rebuilds the predictor from [`PhiAccrual::raw_parts`] output plus
    /// its configuration, or `None` for state unreachable by observation.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        window: usize,
        threshold: f64,
        two_phase: bool,
        ring: Vec<f64>,
        pos: u32,
        len: u32,
        sum: f64,
        sumsq: f64,
        start_left: u32,
        flaps: u64,
        mean_up: f64,
        up_len: u64,
        n: u64,
    ) -> Option<Self> {
        if window == 0
            || !(threshold.is_finite() && threshold > 0.0)
            || ring.len() != window
            || pos as usize >= window
            || len as usize > window
        {
            return None;
        }
        Some(Self {
            ring,
            cap: window,
            pos: pos as usize,
            len: len as usize,
            sum,
            sumsq,
            threshold,
            two_phase,
            start_left,
            flaps,
            mean_up,
            up_len,
            n,
        })
    }
}

impl Predictor for PhiAccrual {
    fn observe(&mut self, delay_ms: f64) {
        self.observe_gap(delay_ms, 0);
    }
    fn observe_gap(&mut self, delay_ms: f64, gap: u64) {
        let d = sanitize_delay(delay_ms);
        if self.two_phase && gap >= PHI_FLAP_GAP_MIN && self.n > 0 {
            // Flap: fold the finished uptime into the history, cold-restart
            // the window (the pre-crash distribution is stale) and serve a
            // Weibull-gated start phase.
            self.flaps += 1;
            self.mean_up += (self.up_len as f64 - self.mean_up) / self.flaps as f64;
            self.up_len = 0;
            self.len = 0;
            self.pos = 0;
            self.sum = 0.0;
            self.sumsq = 0.0;
            self.start_left = self.start_len();
        }
        if self.len == self.cap {
            let old = self.ring[self.pos];
            self.sum -= old;
            self.sumsq -= old * old;
        } else {
            self.len += 1;
        }
        self.ring[self.pos] = d;
        self.sum += d;
        self.sumsq += d * d;
        self.pos = (self.pos + 1) % self.cap;
        if self.start_left > 0 {
            self.start_left -= 1;
        }
        self.up_len += 1;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mu = self.sum / self.len as f64;
        let sigma = if self.len < 2 {
            0.0
        } else {
            let var = (self.sumsq - self.sum * self.sum / self.len as f64) / (self.len - 1) as f64;
            var.max(0.0).sqrt()
        };
        // Start phase: dispersion floored at μ (CV ≥ 1 prior), so a window
        // cold-restarted after a flap does not collapse to t_φ ≈ μ.
        let spread = if self.start_left > 0 {
            sigma.max(mu)
        } else {
            sigma
        };
        mu + self.threshold * std::f64::consts::LN_10 * spread
    }
    fn name(&self) -> String {
        if self.two_phase {
            format!("PHI({},{})", self.cap, self.threshold)
        } else {
            format!("PHI-S({},{})", self.cap, self.threshold)
        }
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `ADWIN(N,K)`: adaptive μ+Kσ timeout over a ring of the last `N` delays
/// (SNIPPETS.md snippets 1–2): forecast `μ + K·σ` of the window.
///
/// **Defined degenerate behavior** (the NaN/∞ audit): with a single sample
/// the forecast is that sample (`σ` undefined ⇒ treated as 0); an empty
/// window forecasts 0.0 like every other predictor; negative variance from
/// float cancellation clamps to 0. Inputs are sanitized through
/// [`sanitize_delay`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveWindow {
    ring: Vec<f64>,
    cap: usize,
    k: f64,
    sum: f64,
    sumsq: f64,
    n: u64,
}

impl AdaptiveWindow {
    /// Creates the predictor with window size `window` and deviation
    /// multiplier `k`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `k` is not finite-nonnegative.
    pub fn new(window: usize, k: f64) -> Self {
        assert!(window > 0, "adaptive window must be positive");
        assert!(k.is_finite() && k >= 0.0, "adaptive K out of range: {k}");
        Self {
            ring: vec![0.0; window],
            cap: window,
            k,
            sum: 0.0,
            sumsq: 0.0,
            n: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.cap
    }

    /// The deviation multiplier K.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The full state `(ring, sum, sumsq, n)` for checkpoint/restore;
    /// configuration travels as part of the predictor kind.
    pub fn raw_parts(&self) -> (Vec<f64>, f64, f64, u64) {
        (self.ring.clone(), self.sum, self.sumsq, self.n)
    }

    /// Rebuilds the predictor from [`AdaptiveWindow::raw_parts`] output
    /// plus its configuration, or `None` for unreachable state.
    pub fn from_raw_parts(
        window: usize,
        k: f64,
        ring: Vec<f64>,
        sum: f64,
        sumsq: f64,
        n: u64,
    ) -> Option<Self> {
        if window == 0 || !(k.is_finite() && k >= 0.0) || ring.len() != window {
            return None;
        }
        Some(Self {
            ring,
            cap: window,
            k,
            sum,
            sumsq,
            n,
        })
    }
}

impl Predictor for AdaptiveWindow {
    fn observe(&mut self, delay_ms: f64) {
        let d = sanitize_delay(delay_ms);
        let idx = (self.n % self.cap as u64) as usize;
        if self.n >= self.cap as u64 {
            let old = self.ring[idx];
            self.sum -= old;
            self.sumsq -= old * old;
        }
        self.ring[idx] = d;
        self.sum += d;
        self.sumsq += d * d;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        let len = self.n.min(self.cap as u64) as usize;
        if len == 0 {
            return 0.0;
        }
        let mu = self.sum / len as f64;
        if len < 2 {
            return mu; // single sample: σ undefined, documented as 0
        }
        let var = (self.sumsq - self.sum * self.sum / len as f64) / (len - 1) as f64;
        mu + self.k * var.max(0.0).sqrt()
    }
    fn name(&self) -> String {
        format!("ADWIN({},{})", self.cap, self.k)
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// Weight magnitude ceiling of the online model: a single hostile update
/// cannot launch the weights to ±∞.
const ML_W_CLAMP: f64 = 1.0e4;

/// Forecast ceiling of the online model, matching the sanitized input
/// ceiling [`MAX_DELAY_MS`].
pub(crate) const ML_PRED_CLAMP: f64 = MAX_DELAY_MS;

/// Regularizer of the normalized update denominator.
const ML_EPS: f64 = 1.0e-6;

/// Predicts the next delay from the model weights and the lag ring.
/// `hist[(n-1-j) % lags]` is the j-th most recent delay. Shared verbatim by
/// the scalar predictor and the `SourceBank` column arenas, so the two
/// paths are bit-identical by construction.
pub(crate) fn ml_raw_predict(w: &[f64], hist: &[f64], lags: usize, n: u64) -> f64 {
    let mut y = w[lags]; // bias term
    for (j, wj) in w.iter().enumerate().take(lags) {
        let idx = ((n - 1 - j as u64) % lags as u64) as usize;
        y += wj * hist[idx];
    }
    y
}

/// One normalized-LMS update step followed by the ring push; the shared
/// core of [`MlPredictor::observe`] and the `SourceBank` ML column.
pub(crate) fn ml_observe_core(w: &mut [f64], hist: &mut [f64], lags: usize, n: u64, d: f64) {
    if n >= lags as u64 {
        let yhat = ml_raw_predict(w, hist, lags, n);
        let err = d - yhat;
        let mut norm = 1.0 + ML_EPS;
        for j in 0..lags {
            let idx = ((n - 1 - j as u64) % lags as u64) as usize;
            norm += hist[idx] * hist[idx];
        }
        let g = (w[lags + 1] * err) / norm;
        for (j, wj) in w.iter_mut().enumerate().take(lags) {
            let idx = ((n - 1 - j as u64) % lags as u64) as usize;
            *wj += g * hist[idx];
        }
        w[lags] += g;
        for wj in w.iter_mut().take(lags + 1) {
            // Total under hostile floats: clamp magnitudes, reset NaN.
            *wj = if wj.is_finite() {
                wj.clamp(-ML_W_CLAMP, ML_W_CLAMP)
            } else {
                0.0
            };
        }
    }
    hist[(n % lags as u64) as usize] = d;
}

/// `ML(p,r)`: a tiny online-trained model — normalized LMS over the last
/// `p` delays plus a bias, learning rate `r` (the Li & Marin direction,
/// with no new dependencies).
///
/// Until `p` delays exist the forecast falls back to `LAST`; afterwards it
/// is the clamped linear model output. **Defined degenerate behavior**
/// (the NaN/∞ audit): inputs are sanitized through [`sanitize_delay`],
/// weights are magnitude-clamped per update and any non-finite weight is
/// reset to 0, so the model state and forecast stay finite under hostile
/// float sequences.
///
/// The weight vector layout is `[w_0 … w_{p-1}, bias, rate]` — the rate
/// rides in the arena so the column path shares one buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct MlPredictor {
    lags: usize,
    w: Vec<f64>,
    hist: Vec<f64>,
    n: u64,
}

impl MlPredictor {
    /// Creates the model with `lags` autoregressive inputs and the given
    /// learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lags` is zero or `rate` is not in `(0, 2]`.
    pub fn new(lags: usize, rate: f64) -> Self {
        assert!(lags > 0, "ml lags must be positive");
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 2.0,
            "ml rate out of (0, 2]: {rate}"
        );
        let mut w = vec![0.0; lags + 2];
        w[lags + 1] = rate;
        Self {
            lags,
            w,
            hist: vec![0.0; lags],
            n: 0,
        }
    }

    /// The number of autoregressive inputs.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// The learning rate.
    pub fn rate(&self) -> f64 {
        self.w[self.lags + 1]
    }

    /// The full state `(weights incl. bias and rate, lag ring, n)` for
    /// checkpoint/restore.
    pub fn raw_parts(&self) -> (Vec<f64>, Vec<f64>, u64) {
        (self.w.clone(), self.hist.clone(), self.n)
    }

    /// Rebuilds the model from [`MlPredictor::raw_parts`] output plus its
    /// configuration, or `None` for unreachable state.
    pub fn from_raw_parts(
        lags: usize,
        rate: f64,
        w: Vec<f64>,
        hist: Vec<f64>,
        n: u64,
    ) -> Option<Self> {
        if lags == 0
            || !(rate.is_finite() && rate > 0.0 && rate <= 2.0)
            || w.len() != lags + 2
            || hist.len() != lags
            || w[lags + 1] != rate
        {
            return None;
        }
        Some(Self { lags, w, hist, n })
    }
}

impl Predictor for MlPredictor {
    fn observe(&mut self, delay_ms: f64) {
        let d = sanitize_delay(delay_ms);
        ml_observe_core(&mut self.w, &mut self.hist, self.lags, self.n, d);
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.n < self.lags as u64 {
            // LAST fallback while the lag ring fills.
            return self.hist[((self.n - 1) % self.lags as u64) as usize];
        }
        ml_raw_predict(&self.w, &self.hist, self.lags, self.n).clamp(0.0, ML_PRED_CLAMP)
    }
    fn name(&self) -> String {
        format!("ML({},{})", self.lags, self.rate())
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// Runs a predictor over a delay series, returning the one-step forecasts:
/// `out[t]` is the prediction of `series[t]` made before observing it.
///
/// This is the exact procedure of the paper's accuracy experiment: the
/// prediction error sequence is `series[t] − out[t]` and its mean square is
/// the `msqerr` of Table 3.
pub fn one_step_predictions(predictor: &mut dyn Predictor, series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    for &x in series {
        out.push(predictor.predict());
        predictor.observe(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_tracks_latest() {
        let mut p = Last::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(5.0);
        p.observe(7.0);
        assert_eq!(p.predict(), 7.0);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.name(), "LAST");
    }

    #[test]
    fn mean_is_running_mean() {
        let mut p = Mean::new();
        for x in [2.0, 4.0, 6.0] {
            p.observe(x);
        }
        assert!((p.predict() - 4.0).abs() < 1e-12);
        assert_eq!(p.name(), "MEAN");
    }

    #[test]
    fn winmean_equals_mean_until_window_fills() {
        let mut w = WinMean::new(3);
        let mut m = Mean::new();
        for x in [1.0, 2.0] {
            w.observe(x);
            m.observe(x);
        }
        assert_eq!(w.predict(), m.predict());
        // Window full: only the last 3 count.
        for x in [3.0, 10.0] {
            w.observe(x);
        }
        assert!((w.predict() - 5.0).abs() < 1e-12); // (2 + 3 + 10) / 3
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.name(), "WINMEAN(3)");
    }

    #[test]
    fn winmean_sliding_window_is_exact() {
        let mut w = WinMean::new(2);
        for x in [10.0, 20.0, 30.0, 40.0] {
            w.observe(x);
        }
        assert!((w.predict() - 35.0).abs() < 1e-12);
        assert_eq!(w.observations(), 4);
    }

    #[test]
    fn lpf_recurrence() {
        let mut p = Lpf::new(0.125);
        p.observe(100.0); // initialises to the first observation
        assert_eq!(p.predict(), 100.0);
        p.observe(108.0);
        assert!((p.predict() - 101.0).abs() < 1e-12); // 100 + (108-100)/8
        assert_eq!(p.name(), "LPF(0.125)");
        assert_eq!(p.beta(), 0.125);
    }

    #[test]
    fn lpf_beta_one_is_last() {
        let mut lpf = Lpf::new(1.0);
        let mut last = Last::new();
        for x in [3.0, 9.0, 1.0, 4.5] {
            lpf.observe(x);
            last.observe(x);
            assert_eq!(lpf.predict(), last.predict());
        }
    }

    #[test]
    #[should_panic(expected = "beta out of")]
    fn lpf_rejects_zero_beta() {
        let _ = Lpf::new(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn winmean_rejects_zero_window() {
        let _ = WinMean::new(0);
    }

    #[test]
    fn arima_predictor_cold_start_is_last() {
        let mut p = ArimaPredictor::paper_default();
        p.observe(200.0);
        assert_eq!(p.predict(), 200.0);
        assert_eq!(p.name(), "ARIMA(2,1,1)");
    }

    #[test]
    fn arima_predictor_never_negative() {
        let mut p = ArimaPredictor::new(ArimaSpec::new(1, 1, 0), 50);
        // Steeply decreasing series would extrapolate below zero.
        for i in 0..300 {
            p.observe(300.0 - i as f64);
        }
        assert!(p.predict() >= 0.0);
    }

    #[test]
    fn one_step_predictions_align() {
        let mut p = Last::new();
        let series = [1.0, 2.0, 3.0];
        let preds = one_step_predictions(&mut p, &series);
        assert_eq!(preds, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn phi_zero_variance_window_predicts_mu_exactly() {
        let mut p = PhiAccrual::new(8, 1.0, true);
        assert_eq!(p.predict(), 0.0);
        p.observe(200.0);
        // One sample: σ treated as 0, t_φ = μ — defined, not NaN.
        assert_eq!(p.predict(), 200.0);
        for _ in 0..20 {
            p.observe(200.0);
        }
        // Identical samples: σ = 0, still exactly μ.
        assert_eq!(p.predict(), 200.0);
        assert_eq!(p.name(), "PHI(8,1)");
    }

    #[test]
    fn phi_timeout_grows_with_dispersion_and_threshold() {
        let feed = |thr: f64| {
            let mut p = PhiAccrual::new(8, thr, true);
            for x in [100.0, 300.0, 100.0, 300.0, 100.0, 300.0] {
                p.observe(x);
            }
            p.predict()
        };
        let lo = feed(1.0);
        let hi = feed(2.0);
        assert!(lo > 200.0, "dispersion must push t_φ above μ: {lo}");
        assert!(hi > lo, "higher φ* must mean a longer timeout");
    }

    #[test]
    fn phi_flap_cold_restarts_window_and_serves_start_phase() {
        let mut p = PhiAccrual::new(16, 1.0, true);
        for _ in 0..16 {
            p.observe(100.0);
        }
        assert_eq!(p.flaps(), 0);
        assert_eq!(p.start_left(), 0);
        // The source comes back after a 10-heartbeat silence: flap.
        p.observe_gap(150.0, 10);
        assert_eq!(p.flaps(), 1);
        assert!(p.start_left() > 0, "start phase must be armed");
        // Window was cold-restarted: forecast reflects only the new sample,
        // with the start-phase σ-floor on top (σ := μ while starting).
        let mu = 150.0;
        let floored = mu + 1.0 * std::f64::consts::LN_10 * mu;
        assert!((p.predict() - floored).abs() < 1e-9, "got {}", p.predict());
        // The stable-only variant never flaps.
        let mut s = PhiAccrual::new(16, 1.0, false);
        for _ in 0..16 {
            s.observe(100.0);
        }
        s.observe_gap(150.0, 10);
        assert_eq!(s.flaps(), 0);
        assert_eq!(s.name(), "PHI-S(16,1)");
    }

    #[test]
    fn phi_weibull_gate_serves_flappy_sources_longer() {
        // A chronically flapping source (short uptimes) must be gated
        // longer than a source with long stable uptimes.
        let start_after = |up: u64| {
            let mut p = PhiAccrual::new(16, 1.0, true);
            // Two full up/down cycles establish the uptime history.
            for _ in 0..2 {
                for _ in 0..up {
                    p.observe(100.0);
                }
                p.observe_gap(100.0, 10);
            }
            p.start_left()
        };
        let flappy = start_after(2);
        let stable = start_after(64);
        assert!(
            flappy > stable,
            "flappy gate {flappy} must exceed stable gate {stable}"
        );
    }

    #[test]
    fn adaptive_window_mu_plus_k_sigma() {
        let mut p = AdaptiveWindow::new(4, 2.0);
        assert_eq!(p.predict(), 0.0);
        p.observe(100.0);
        // Single sample: documented behavior is μ (σ treated as 0).
        assert_eq!(p.predict(), 100.0);
        p.observe(200.0);
        // μ = 150, sample σ = √((100-150)² + (200-150)²) / √1 = 70.71…
        let sigma = 5000.0f64.sqrt();
        assert!((p.predict() - (150.0 + 2.0 * sigma)).abs() < 1e-9);
        // Eviction: push two more, then two that displace the first pair.
        for x in [200.0, 100.0, 200.0, 100.0] {
            p.observe(x);
        }
        assert!((p.predict() - (150.0 + 2.0 * (10000.0f64 / 3.0).sqrt())).abs() < 1e-9);
        assert_eq!(p.name(), "ADWIN(4,2)");
        assert_eq!(p.observations(), 6);
    }

    #[test]
    fn ml_last_fallback_then_learns_constant_series() {
        let mut p = MlPredictor::new(4, 0.5);
        assert_eq!(p.predict(), 0.0);
        p.observe(120.0);
        assert_eq!(p.predict(), 120.0, "LAST fallback while the ring fills");
        for _ in 0..400 {
            p.observe(100.0);
        }
        let err = (p.predict() - 100.0).abs();
        assert!(err < 5.0, "NLMS must converge on a constant series: {err}");
        assert_eq!(p.name(), "ML(4,0.5)");
    }

    #[test]
    fn new_predictors_survive_hostile_floats() {
        let hostile = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            -f64::MAX,
            f64::MIN_POSITIVE,
            -0.0,
            1.0e308,
            -1.0e308,
            4.9e-324,
        ];
        let mut preds: Vec<Box<dyn Predictor>> = vec![
            Box::new(PhiAccrual::new(4, 1.0, true)),
            Box::new(PhiAccrual::new(4, 1.0, false)),
            Box::new(AdaptiveWindow::new(4, 2.0)),
            Box::new(MlPredictor::new(3, 0.5)),
        ];
        for p in &mut preds {
            for (i, &x) in hostile.iter().cycle().take(64).enumerate() {
                p.observe_gap(x, (i % 7) as u64);
                let y = p.predict();
                assert!(y.is_finite(), "{} poisoned: {y}", p.name());
                assert!(y >= 0.0, "{} forecast negative: {y}", p.name());
            }
        }
    }

    #[test]
    fn new_predictor_raw_parts_round_trip() {
        let mut phi = PhiAccrual::new(6, 1.5, true);
        let mut adw = AdaptiveWindow::new(5, 1.0);
        let mut ml = MlPredictor::new(3, 0.25);
        for i in 0..23u64 {
            let d = 100.0 + (i * 37 % 90) as f64;
            let gap = if i == 11 { 5 } else { 0 };
            phi.observe_gap(d, gap);
            adw.observe_gap(d, gap);
            ml.observe_gap(d, gap);
        }
        let (ring, pos, len, sum, sumsq, sl, fl, mu, ul, n) = phi.raw_parts();
        let phi2 =
            PhiAccrual::from_raw_parts(6, 1.5, true, ring, pos, len, sum, sumsq, sl, fl, mu, ul, n)
                .expect("phi state is reachable");
        assert_eq!(phi, phi2);
        let (ring, sum, sumsq, n) = adw.raw_parts();
        let adw2 = AdaptiveWindow::from_raw_parts(5, 1.0, ring, sum, sumsq, n)
            .expect("adw state is reachable");
        assert_eq!(adw, adw2);
        let (w, hist, n) = ml.raw_parts();
        let ml2 = MlPredictor::from_raw_parts(3, 0.25, w, hist, n).expect("ml state is reachable");
        assert_eq!(ml, ml2);
        // Shape violations are rejected, not accepted silently.
        assert!(PhiAccrual::from_raw_parts(
            6,
            1.5,
            true,
            vec![0.0; 5],
            0,
            0,
            0.0,
            0.0,
            0,
            0,
            0.0,
            0,
            0
        )
        .is_none());
        assert!(AdaptiveWindow::from_raw_parts(5, 1.0, vec![0.0; 4], 0.0, 0.0, 0).is_none());
        assert!(MlPredictor::from_raw_parts(3, 0.25, vec![0.0; 2], vec![0.0; 3], 0).is_none());
    }

    #[test]
    fn mean_beats_last_on_iid_noise() {
        use fd_sim::DetRng;
        let mut rng = DetRng::seed_from(55);
        let series: Vec<f64> = (0..5_000).map(|_| rng.normal(200.0, 5.0)).collect();
        let mut mean = Mean::new();
        let mut last = Last::new();
        let pm = one_step_predictions(&mut mean, &series);
        let pl = one_step_predictions(&mut last, &series);
        let err = |p: &[f64]| -> f64 {
            series[10..]
                .iter()
                .zip(&p[10..])
                .map(|(o, f)| (o - f) * (o - f))
                .sum()
        };
        // For i.i.d. noise LAST has twice the msqerr of MEAN.
        assert!(err(&pm) < 0.7 * err(&pl));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// WINMEAN stays within [min, max] of its window.
        #[test]
        fn winmean_bounded(xs in proptest::collection::vec(0.0f64..1e4, 1..100), cap in 1usize..20) {
            let mut p = WinMean::new(cap);
            for &x in &xs {
                p.observe(x);
            }
            let start = xs.len().saturating_sub(cap);
            let win = &xs[start..];
            let lo = win.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = win.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.predict() >= lo - 1e-9 && p.predict() <= hi + 1e-9);
        }

        /// LPF stays within [min, max] of the whole history.
        #[test]
        fn lpf_bounded(xs in proptest::collection::vec(0.0f64..1e4, 1..100), beta in 0.01f64..1.0) {
            let mut p = Lpf::new(beta);
            for &x in &xs {
                p.observe(x);
            }
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.predict() >= lo - 1e-9 && p.predict() <= hi + 1e-9);
        }

        /// MEAN is permutation invariant.
        #[test]
        fn mean_permutation_invariant(mut xs in proptest::collection::vec(0.0f64..1e4, 1..50)) {
            let mut a = Mean::new();
            for &x in &xs {
                a.observe(x);
            }
            xs.reverse();
            let mut b = Mean::new();
            for &x in &xs {
                b.observe(x);
            }
            prop_assert!((a.predict() - b.predict()).abs() < 1e-6);
        }

        /// one_step_predictions has the causal alignment: out[t] does not
        /// depend on series[t..].
        #[test]
        fn predictions_are_causal(xs in proptest::collection::vec(0.0f64..1e3, 2..40)) {
            let mut full = WinMean::new(5);
            let preds_full = one_step_predictions(&mut full, &xs);
            let cut = xs.len() / 2;
            let mut prefix = WinMean::new(5);
            let preds_prefix = one_step_predictions(&mut prefix, &xs[..cut]);
            for t in 0..cut {
                prop_assert_eq!(preds_full[t], preds_prefix[t]);
            }
        }
    }
}
