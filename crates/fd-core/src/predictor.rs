//! The delay predictors of Section 3.1.
//!
//! Every predictor consumes the list `obs = [obs_1 … obs_n]` of observed
//! one-way heartbeat delays (in milliseconds) and forecasts the next one.
//! The paper's five choices:
//!
//! | predictor  | forecast `pred_{k+1}` |
//! |------------|------------------------|
//! | `LAST`     | `obs_n` |
//! | `MEAN`     | mean of all observations |
//! | `WINMEAN(N)` | mean of the last `N` observations (= MEAN while `n < N`) |
//! | `LPF(β)`   | `(1−β)·pred_k + β·obs_n` (exponential smoothing) |
//! | `ARIMA(p,d,q)` | one-step Box–Jenkins forecast, refit every `N_Arima` |
//!
//! All per-observation updates are `O(1)` in the length of the observation
//! list (the paper's final-remarks complexity claim); ARIMA's periodic refit
//! is amortised.

use std::collections::VecDeque;

use fd_arima::{ArimaSpec, OnlineArima};

/// A one-step forecaster of heartbeat transmission delays (milliseconds).
///
/// Implementations return 0.0 from [`Predictor::predict`] before the first
/// observation (the cold-start time-out is then just the safety margin).
pub trait Predictor: Send {
    /// Consumes the delay of a newly received heartbeat.
    fn observe(&mut self, delay_ms: f64);

    /// Forecasts the delay of the next heartbeat.
    fn predict(&self) -> f64;

    /// The predictor's label, e.g. `"WINMEAN(10)"`.
    fn name(&self) -> String;

    /// Number of observations consumed so far.
    fn observations(&self) -> u64;
}

impl<T: Predictor + ?Sized> Predictor for Box<T> {
    fn observe(&mut self, delay_ms: f64) {
        (**self).observe(delay_ms)
    }
    fn predict(&self) -> f64 {
        (**self).predict()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn observations(&self) -> u64 {
        (**self).observations()
    }
}

/// `LAST`: the forecast is the most recent observation.
///
/// ```
/// use fd_core::{Last, Predictor};
/// let mut p = Last::new();
/// p.observe(197.0);
/// p.observe(203.5);
/// assert_eq!(p.predict(), 203.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Last {
    last: f64,
    n: u64,
}

impl Last {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw state `(last, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, u64) {
        (self.last, self.n)
    }

    /// Rebuilds the predictor from [`Last::raw_parts`] output.
    pub fn from_raw_parts(last: f64, n: u64) -> Self {
        Self { last, n }
    }
}

impl Predictor for Last {
    fn observe(&mut self, delay_ms: f64) {
        self.last = delay_ms;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.last
        }
    }
    fn name(&self) -> String {
        "LAST".to_owned()
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `MEAN`: the forecast is the running mean of all observations.
///
/// ```
/// use fd_core::{Mean, Predictor};
/// let mut p = Mean::new();
/// for obs in [190.0, 200.0, 210.0] {
///     p.observe(obs);
/// }
/// assert_eq!(p.predict(), 200.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Mean {
    mean: f64,
    n: u64,
}

impl Mean {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw state `(mean, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, u64) {
        (self.mean, self.n)
    }

    /// Rebuilds the predictor from [`Mean::raw_parts`] output.
    pub fn from_raw_parts(mean: f64, n: u64) -> Self {
        Self { mean, n }
    }
}

impl Predictor for Mean {
    fn observe(&mut self, delay_ms: f64) {
        self.n += 1;
        self.mean += (delay_ms - self.mean) / self.n as f64;
    }
    fn predict(&self) -> f64 {
        self.mean
    }
    fn name(&self) -> String {
        "MEAN".to_owned()
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `WINMEAN(N)`: the forecast is the mean of the last `N` observations;
/// identical to `MEAN` while fewer than `N` observations exist.
///
/// ```
/// use fd_core::{Predictor, WinMean};
/// let mut p = WinMean::new(2);
/// for obs in [100.0, 201.0, 203.0] {
///     p.observe(obs);
/// }
/// assert_eq!(p.predict(), 202.0); // the first observation fell out
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WinMean {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    n: u64,
}

impl WinMean {
    /// Creates the predictor with window size `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            n: 0,
        }
    }

    /// The configured window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The raw state `(window oldest-first, capacity, sum, n)` for
    /// checkpoint/restore.
    pub fn raw_parts(&self) -> (Vec<f64>, usize, f64, u64) {
        (
            self.window.iter().copied().collect(),
            self.capacity,
            self.sum,
            self.n,
        )
    }

    /// Rebuilds the predictor from [`WinMean::raw_parts`] output.
    ///
    /// Returns `None` for state unreachable by [`Predictor::observe`]
    /// (zero capacity or an overfull window).
    pub fn from_raw_parts(window: Vec<f64>, capacity: usize, sum: f64, n: u64) -> Option<Self> {
        (capacity > 0 && window.len() <= capacity).then_some(Self {
            window: window.into(),
            capacity,
            sum,
            n,
        })
    }
}

impl Predictor for WinMean {
    fn observe(&mut self, delay_ms: f64) {
        if self.window.len() == self.capacity {
            self.sum -= self.window.pop_front().expect("non-empty window");
        }
        self.window.push_back(delay_ms);
        self.sum += delay_ms;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.sum / self.window.len() as f64
        }
    }
    fn name(&self) -> String {
        format!("WINMEAN({})", self.capacity)
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `LPF(β)`: exponential smoothing
/// `pred_{k+1} = pred_k + β·(obs_n − pred_k)`.
///
/// The first observation initialises the filter (`pred_1 = obs_1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lpf {
    beta: f64,
    pred: f64,
    n: u64,
}

impl Lpf {
    /// Creates the filter with smoothing factor `beta` (paper uses 1/8).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta <= 1`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta out of (0, 1]: {beta}");
        Self {
            beta,
            pred: 0.0,
            n: 0,
        }
    }

    /// The smoothing factor.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The raw state `(beta, pred, n)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, f64, u64) {
        (self.beta, self.pred, self.n)
    }

    /// Rebuilds the filter from [`Lpf::raw_parts`] output.
    ///
    /// Returns `None` if `beta` is outside `(0, 1]`.
    pub fn from_raw_parts(beta: f64, pred: f64, n: u64) -> Option<Self> {
        (beta > 0.0 && beta <= 1.0).then_some(Self { beta, pred, n })
    }
}

impl Predictor for Lpf {
    fn observe(&mut self, delay_ms: f64) {
        if self.n == 0 {
            self.pred = delay_ms;
        } else {
            self.pred += self.beta * (delay_ms - self.pred);
        }
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        self.pred
    }
    fn name(&self) -> String {
        format!("LPF({})", self.beta)
    }
    fn observations(&self) -> u64 {
        self.n
    }
}

/// `ARIMA(p,d,q)`: one-step Box–Jenkins forecast, re-estimated every
/// `refit_every` observations (the paper's `N_Arima = 1000`).
///
/// Falls back to `LAST` behaviour until the first successful fit.
#[derive(Debug, Clone)]
pub struct ArimaPredictor {
    inner: OnlineArima,
}

impl ArimaPredictor {
    /// Creates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if `refit_every` is zero.
    pub fn new(spec: ArimaSpec, refit_every: usize) -> Self {
        Self {
            inner: OnlineArima::new(spec, refit_every),
        }
    }

    /// The paper's configuration: `ARIMA(2,1,1)` refit every 1000
    /// observations (Table 2).
    pub fn paper_default() -> Self {
        Self::new(ArimaSpec::new(2, 1, 1), 1000)
    }

    /// The underlying online forecaster.
    pub fn inner(&self) -> &OnlineArima {
        &self.inner
    }

    /// Captures the full streaming state for checkpoint/restore.
    pub fn snapshot(&self) -> fd_arima::ArimaSnapshot {
        self.inner.snapshot()
    }

    /// Rebuilds the predictor from a snapshot, or `None` if the snapshot
    /// is internally inconsistent.
    pub fn from_snapshot(s: fd_arima::ArimaSnapshot) -> Option<Self> {
        Some(Self {
            inner: OnlineArima::from_snapshot(s)?,
        })
    }
}

impl Predictor for ArimaPredictor {
    fn observe(&mut self, delay_ms: f64) {
        self.inner.observe(delay_ms);
    }
    fn predict(&self) -> f64 {
        // Delays are non-negative; a (rare) negative forecast on the level
        // scale is clamped.
        self.inner.predict_next().max(0.0)
    }
    fn name(&self) -> String {
        let s = self.inner.spec();
        format!("ARIMA({},{},{})", s.p, s.d, s.q)
    }
    fn observations(&self) -> u64 {
        self.inner.observed() as u64
    }
}

/// Runs a predictor over a delay series, returning the one-step forecasts:
/// `out[t]` is the prediction of `series[t]` made before observing it.
///
/// This is the exact procedure of the paper's accuracy experiment: the
/// prediction error sequence is `series[t] − out[t]` and its mean square is
/// the `msqerr` of Table 3.
pub fn one_step_predictions(predictor: &mut dyn Predictor, series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    for &x in series {
        out.push(predictor.predict());
        predictor.observe(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_tracks_latest() {
        let mut p = Last::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(5.0);
        p.observe(7.0);
        assert_eq!(p.predict(), 7.0);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.name(), "LAST");
    }

    #[test]
    fn mean_is_running_mean() {
        let mut p = Mean::new();
        for x in [2.0, 4.0, 6.0] {
            p.observe(x);
        }
        assert!((p.predict() - 4.0).abs() < 1e-12);
        assert_eq!(p.name(), "MEAN");
    }

    #[test]
    fn winmean_equals_mean_until_window_fills() {
        let mut w = WinMean::new(3);
        let mut m = Mean::new();
        for x in [1.0, 2.0] {
            w.observe(x);
            m.observe(x);
        }
        assert_eq!(w.predict(), m.predict());
        // Window full: only the last 3 count.
        for x in [3.0, 10.0] {
            w.observe(x);
        }
        assert!((w.predict() - 5.0).abs() < 1e-12); // (2 + 3 + 10) / 3
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.name(), "WINMEAN(3)");
    }

    #[test]
    fn winmean_sliding_window_is_exact() {
        let mut w = WinMean::new(2);
        for x in [10.0, 20.0, 30.0, 40.0] {
            w.observe(x);
        }
        assert!((w.predict() - 35.0).abs() < 1e-12);
        assert_eq!(w.observations(), 4);
    }

    #[test]
    fn lpf_recurrence() {
        let mut p = Lpf::new(0.125);
        p.observe(100.0); // initialises to the first observation
        assert_eq!(p.predict(), 100.0);
        p.observe(108.0);
        assert!((p.predict() - 101.0).abs() < 1e-12); // 100 + (108-100)/8
        assert_eq!(p.name(), "LPF(0.125)");
        assert_eq!(p.beta(), 0.125);
    }

    #[test]
    fn lpf_beta_one_is_last() {
        let mut lpf = Lpf::new(1.0);
        let mut last = Last::new();
        for x in [3.0, 9.0, 1.0, 4.5] {
            lpf.observe(x);
            last.observe(x);
            assert_eq!(lpf.predict(), last.predict());
        }
    }

    #[test]
    #[should_panic(expected = "beta out of")]
    fn lpf_rejects_zero_beta() {
        let _ = Lpf::new(0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn winmean_rejects_zero_window() {
        let _ = WinMean::new(0);
    }

    #[test]
    fn arima_predictor_cold_start_is_last() {
        let mut p = ArimaPredictor::paper_default();
        p.observe(200.0);
        assert_eq!(p.predict(), 200.0);
        assert_eq!(p.name(), "ARIMA(2,1,1)");
    }

    #[test]
    fn arima_predictor_never_negative() {
        let mut p = ArimaPredictor::new(ArimaSpec::new(1, 1, 0), 50);
        // Steeply decreasing series would extrapolate below zero.
        for i in 0..300 {
            p.observe(300.0 - i as f64);
        }
        assert!(p.predict() >= 0.0);
    }

    #[test]
    fn one_step_predictions_align() {
        let mut p = Last::new();
        let series = [1.0, 2.0, 3.0];
        let preds = one_step_predictions(&mut p, &series);
        assert_eq!(preds, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn mean_beats_last_on_iid_noise() {
        use fd_sim::DetRng;
        let mut rng = DetRng::seed_from(55);
        let series: Vec<f64> = (0..5_000).map(|_| rng.normal(200.0, 5.0)).collect();
        let mut mean = Mean::new();
        let mut last = Last::new();
        let pm = one_step_predictions(&mut mean, &series);
        let pl = one_step_predictions(&mut last, &series);
        let err = |p: &[f64]| -> f64 {
            series[10..]
                .iter()
                .zip(&p[10..])
                .map(|(o, f)| (o - f) * (o - f))
                .sum()
        };
        // For i.i.d. noise LAST has twice the msqerr of MEAN.
        assert!(err(&pm) < 0.7 * err(&pl));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// WINMEAN stays within [min, max] of its window.
        #[test]
        fn winmean_bounded(xs in proptest::collection::vec(0.0f64..1e4, 1..100), cap in 1usize..20) {
            let mut p = WinMean::new(cap);
            for &x in &xs {
                p.observe(x);
            }
            let start = xs.len().saturating_sub(cap);
            let win = &xs[start..];
            let lo = win.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = win.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.predict() >= lo - 1e-9 && p.predict() <= hi + 1e-9);
        }

        /// LPF stays within [min, max] of the whole history.
        #[test]
        fn lpf_bounded(xs in proptest::collection::vec(0.0f64..1e4, 1..100), beta in 0.01f64..1.0) {
            let mut p = Lpf::new(beta);
            for &x in &xs {
                p.observe(x);
            }
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p.predict() >= lo - 1e-9 && p.predict() <= hi + 1e-9);
        }

        /// MEAN is permutation invariant.
        #[test]
        fn mean_permutation_invariant(mut xs in proptest::collection::vec(0.0f64..1e4, 1..50)) {
            let mut a = Mean::new();
            for &x in &xs {
                a.observe(x);
            }
            xs.reverse();
            let mut b = Mean::new();
            for &x in &xs {
                b.observe(x);
            }
            prop_assert!((a.predict() - b.predict()).abs() < 1e-6);
        }

        /// one_step_predictions has the causal alignment: out[t] does not
        /// depend on series[t..].
        #[test]
        fn predictions_are_causal(xs in proptest::collection::vec(0.0f64..1e3, 2..40)) {
            let mut full = WinMean::new(5);
            let preds_full = one_step_predictions(&mut full, &xs);
            let cut = xs.len() / 2;
            let mut prefix = WinMean::new(5);
            let preds_prefix = one_step_predictions(&mut prefix, &xs[..cut]);
            for t in 0..cut {
                prop_assert_eq!(preds_full[t], preds_prefix[t]);
            }
        }
    }
}
